"""Figure 7: end-to-end serving on the four skewed search datasets.

Paper: Asteria sustains >85 % hit rates (exact-match <20 %), up to 3.6×
throughput over exact-match and up to 4× lower latency, across Zilliz-GPT,
HotpotQA, Musique, and 2Wiki at every useful cache ratio.
"""

from benchmarks.conftest import row
from repro.experiments import fig7_skewed
from repro.workloads.datasets import DATASET_NAMES


def test_fig7_skewed(run_experiment):
    result = run_experiment(fig7_skewed.run, n_tasks=1000)
    for dataset in DATASET_NAMES:
        vanilla = row(result, dataset=dataset, cache_ratio=0.4, system="vanilla")
        exact = row(result, dataset=dataset, cache_ratio=0.4, system="exact")
        asteria = row(result, dataset=dataset, cache_ratio=0.4, system="asteria")
        # Hit-rate bands.
        assert asteria["hit_rate"] > 0.8, dataset
        assert exact["hit_rate"] < 0.2, dataset
        # Throughput ordering and scale.
        assert (
            asteria["throughput_rps"]
            > exact["throughput_rps"]
            >= 0.8 * vanilla["throughput_rps"]
        ), dataset
        assert asteria["throughput_rps"] > 2.0 * exact["throughput_rps"], dataset
        # Latency improvement.
        assert asteria["mean_latency_s"] < 0.6 * vanilla["mean_latency_s"], dataset
    # Hit rate grows (weakly) with cache ratio until saturation.
    for dataset in DATASET_NAMES:
        small = row(result, dataset=dataset, cache_ratio=0.1, system="asteria")
        large = row(result, dataset=dataset, cache_ratio=0.8, system="asteria")
        assert large["hit_rate"] >= small["hit_rate"] - 0.02, dataset
