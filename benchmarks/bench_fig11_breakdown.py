"""Figure 11: per-request end-to-end latency breakdown at low concurrency.

Paper: vanilla 1.08 s = 0.6 s inference + 0.48 s retrieval; Asteria 0.61 s
with 0.02 s cache retrieval + 0.03 s judger validation in place of the
remote call.
"""

from benchmarks.conftest import row
from repro.experiments import fig11_breakdown


def test_fig11_breakdown(run_experiment):
    result = run_experiment(fig11_breakdown.run, n_requests=400)
    vanilla = row(result, system="vanilla")
    asteria = row(result, system="asteria")
    assert abs(vanilla["total_s"] - 1.08) < 0.12
    assert abs(vanilla["inference_s"] - 0.6) < 0.05
    assert abs(vanilla["retrieval_s"] - 0.45) < 0.08
    assert asteria["total_s"] < 0.75
    assert abs(asteria["cache_check_s"] - 0.02) < 0.005
    assert abs(asteria["judger_s"] - 0.03) < 0.01
    assert asteria["inference_s"] == vanilla["inference_s"]  # same agent cost
