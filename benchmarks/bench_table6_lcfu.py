"""Table 6: LCFU vs LRU vs LFU under cost-heterogeneous retrieval.

Paper: LFU wins raw hit rate (0.89 vs LCFU 0.86) but LCFU wins throughput
(+9 %) by retaining expensive-to-refetch items.
"""

from benchmarks.conftest import row
from repro.experiments import table6_lcfu


def test_table6_lcfu(run_experiment):
    result = run_experiment(table6_lcfu.run, n_tasks=800)
    lru = row(result, policy="lru")
    lfu = row(result, policy="lfu")
    lcfu = row(result, policy="lcfu")
    # LRU is the weakest under popularity skew.
    assert lru["throughput_rps"] <= min(
        lfu["throughput_rps"], lcfu["throughput_rps"]
    )
    # LCFU's intentional trade: competitive-or-lower hit rate, better
    # system throughput and lower refetch spend.
    assert lcfu["throughput_rps"] >= lfu["throughput_rps"]
    assert lcfu["api_cost_usd"] <= lfu["api_cost_usd"]
