#!/usr/bin/env python
"""Measure multi-process shard-worker scaling and record it in the artefact.

The GIL question the proc tier exists to answer: when the judge stage is
honestly CPU-bound (``judge_spin`` burns real GIL-holding CPU per judged
candidate), thread workers plateau near 1x while shard *processes* scale
with cores. This runner drives the same pinned closed-loop workload through

* the proc engine at 1 / 2 / 4 workers (one shard process each), and
* the thread-pool engine at 1 and 4 workers (the plateau baseline),

then merges a ``proc`` section into the existing ``BENCH_concurrency.json``
(leaving the thread-scaling benchmarks already recorded there untouched).
``benchmarks/check_bench.py`` gates the section's shape everywhere and the
>=3x speedup value only on hosts with >= 4 cores — a single-core CI box
cannot honestly demonstrate parallel speedup, and the artefact records
whatever the host truly measured.

Usage::

    PYTHONPATH=src python benchmarks/run_proc.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
OUTPUT = REPO_ROOT / "BENCH_concurrency.json"

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.factory import (  # noqa: E402
    build_concurrent_engine,
    build_proc_engine,
    build_remote,
)
from repro.serving.aio import run_closed_loop  # noqa: E402

#: GIL-holding CPU seconds burned per judged candidate. Large enough that
#: judging dominates wire/framing overhead (~0.1-0.2 ms per request), small
#: enough that the full sweep stays under a minute on one core.
JUDGE_SPIN = 0.002
N_QUERIES = 240
POPULATION = 32
ZIPF_S = 1.2
TIME_STEP = 0.01
CONCURRENCY = 16
ROUNDS = 2
PROC_WORKERS = (1, 2, 4)
THREAD_WORKERS = (1, 4)


def workload(n: int = N_QUERIES) -> list[Query]:
    rng = np.random.default_rng(7)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=n), POPULATION)
    return [
        Query(f"judged fact number {rank} of the corpus", fact_id=f"F{rank}")
        for rank in ranks
    ]


def measure_proc(workers: int, queries: list[Query]) -> float:
    """Best-of-rounds closed-loop throughput through the proc engine."""

    async def one_round() -> float:
        engine = build_proc_engine(
            build_remote(seed=7), seed=7, workers=workers, judge_spin=JUDGE_SPIN
        )
        async with engine:
            t0 = time.perf_counter()
            await run_closed_loop(
                engine, queries, concurrency=CONCURRENCY, time_step=TIME_STEP
            )
            wall = time.perf_counter() - t0
        return len(queries) / wall

    return max(asyncio.run(one_round()) for _ in range(ROUNDS))


def measure_thread(workers: int, queries: list[Query]) -> float:
    """Best-of-rounds closed-loop throughput through the thread pool."""
    best = 0.0
    for _ in range(ROUNDS):
        engine = build_concurrent_engine(
            build_remote(seed=7),
            seed=7,
            shards=4,
            workers=workers,
            judge_spin=JUDGE_SPIN,
        )
        with engine:
            t0 = time.perf_counter()
            engine.run_closed_loop(queries, time_step=TIME_STEP)
            wall = time.perf_counter() - t0
        best = max(best, len(queries) / wall)
    return best


def main(argv: list[str]) -> int:
    global N_QUERIES, ROUNDS
    if "--quick" in argv:
        N_QUERIES, ROUNDS = 80, 1
    queries = workload(N_QUERIES)

    proc_rps: dict[str, float] = {}
    for workers in PROC_WORKERS:
        proc_rps[str(workers)] = measure_proc(workers, queries)
        print(f"proc workers={workers}: {proc_rps[str(workers)]:.1f} req/s")
    thread_rps: dict[str, float] = {}
    for workers in THREAD_WORKERS:
        thread_rps[str(workers)] = measure_thread(workers, queries)
        print(f"thread workers={workers}: {thread_rps[str(workers)]:.1f} req/s")

    base = proc_rps["1"]
    speedups = {
        f"speedup_{w}w": round(proc_rps[str(w)] / base, 3) for w in PROC_WORKERS
    }
    thread_base = thread_rps[str(THREAD_WORKERS[0])]
    plateau_workers = THREAD_WORKERS[-1]
    section = {
        "judge_spin": JUDGE_SPIN,
        "requests": N_QUERIES,
        "concurrency": CONCURRENCY,
        "cpu_count": os.cpu_count(),
        "throughput_rps": {k: round(v, 2) for k, v in proc_rps.items()},
        "speedups": speedups,
        "thread_plateau": {
            "workers": plateau_workers,
            "throughput_rps": round(thread_rps[str(plateau_workers)], 2),
            "speedup_vs_1w": round(
                thread_rps[str(plateau_workers)] / thread_base, 3
            ),
        },
    }

    # Merge into the existing artefact so the thread-scaling benchmarks and
    # machine/commit info recorded by run_concurrency.py survive.
    data = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    data["proc"] = section
    OUTPUT.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"\nwrote proc section of {OUTPUT}")
    for workers in PROC_WORKERS:
        ratio = speedups[f"speedup_{workers}w"]
        print(
            f"  proc workers={workers}: {proc_rps[str(workers)]:.1f} req/s "
            f"({ratio:.2f}x vs 1 worker)"
        )
    print(
        f"  thread plateau at {plateau_workers} workers: "
        f"{section['thread_plateau']['speedup_vs_1w']:.2f}x vs 1 thread"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
