"""Figure 9: SWE-bench coding workload vs cache ratio.

Paper: ~45 % hit rate and ~20 % throughput gain over both baselines; caching
works because issues share core repository files.
"""

from benchmarks.conftest import row
from repro.experiments import fig9_swebench


def test_fig9_swebench(run_experiment):
    result = run_experiment(fig9_swebench.run, n_issues=300)
    vanilla = row(result, cache_ratio=0.4, system="vanilla")
    exact = row(result, cache_ratio=0.4, system="exact")
    asteria = row(result, cache_ratio=0.4, system="asteria")
    # The coding domain's moderate-hit-rate regime.
    assert 0.3 < asteria["hit_rate"] < 0.8
    assert exact["hit_rate"] < 0.1
    # A real but modest throughput edge (paper: ~20%).
    gain = asteria["throughput_rps"] / vanilla["throughput_rps"]
    assert 1.05 < gain < 1.6
    assert asteria["throughput_rps"] > exact["throughput_rps"]
