#!/usr/bin/env python
"""Durability + replication benchmark; records ``BENCH_store.json``.

Two experiments over the ``repro.store`` subsystem:

* **cold vs warm restart** — one engine fills a ``--persist`` directory
  (snapshot + journal), stops gracefully, and a second engine warm-starts
  from the same directory. Both runs (and a cold control over the same
  trace) record a windowed hit-rate curve; the headline is the
  first-window hit rate, where a warm cache is the whole point: the
  restarted engine starts at roughly the steady-state hit rate while the
  cold control starts near zero.
* **replication sync-interval sweep** — a pair of regions with
  asymmetric simulated WAN latency serve offset zipf traces while a
  :class:`~repro.store.replication.ReplicationDriver` exchanges diffs at
  each swept interval. Each arm records the agreement-over-time curve,
  the worst staleness observed mid-run, and whether the pair reached full
  agreement after the final drain (it must, at every interval — longer
  intervals may only cost *staleness*, never convergence).

All clocks are simulated, so the artefact is deterministic modulo the
seeds and safe to gate in CI (``check_bench.py`` checks the curve shapes,
the warm >= cold first-window invariant, and convergence at every swept
interval).

Usage::

    python benchmarks/run_store.py [--quick]
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.core.config import AsteriaConfig  # noqa: E402
from repro.factory import build_asteria_engine, build_remote  # noqa: E402
from repro.store.replication import ReplicaNode, ReplicationDriver  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_store.json"

SEED = 0
N_QUERIES = 2000
POPULATION = 128
ZIPF_S = 1.3
TIME_STEP = 0.01
WINDOW = 100
CAPACITY = 192
FSYNC_EVERY = 8

REPL_QUERIES = 600
REPL_POPULATION = 48
REPL_OFFSET = 17
REPL_LATENCY_AB = 0.08
REPL_LATENCY_BA = 0.12
SYNC_INTERVALS = (0.1, 0.25, 0.5, 1.0)
REPL_SAMPLES = 12


def trace(n, population, seed=SEED, offset=0):
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=n), population)
    return [
        Query(
            f"stored fact number {(int(rank) + offset) % population} of the corpus",
            fact_id=f"F{(int(rank) + offset) % population}",
        )
        for rank in ranks
    ]


def build_engine(persist_dir=None):
    return build_asteria_engine(
        build_remote(seed=SEED),
        config=AsteriaConfig(capacity_items=CAPACITY),
        seed=SEED,
        persist_dir=persist_dir,
        fsync_every=FSYNC_EVERY,
    )


def hit_curve(engine, queries) -> list[float]:
    """Windowed hit-rate curve (a hit = no remote fetch was needed)."""
    curve = []
    hits = 0
    for i, query in enumerate(queries):
        response = engine.handle(query, now=i * TIME_STEP)
        if response.fetch is None:
            hits += 1
        if (i + 1) % WINDOW == 0:
            curve.append(round(hits / WINDOW, 4))
            hits = 0
    return curve


def run_cold_warm() -> dict:
    queries = trace(N_QUERIES, POPULATION)
    with tempfile.TemporaryDirectory(prefix="bench_store_") as persist_dir:
        # Fill run: populate the store, then stop gracefully (checkpoint).
        fill = build_engine(persist_dir)
        fill_curve = hit_curve(fill, queries)
        fill.cache.persistent_store.close(checkpoint=True)

        # Warm restart over the same popularity distribution.
        warm = build_engine(persist_dir)
        report = warm.cache.restore_report
        warm_curve = hit_curve(warm, queries)
        warm.cache.persistent_store.close(checkpoint=True)

    # Cold control: an identical engine with no store to restore.
    cold_curve = hit_curve(build_engine(), queries)

    return {
        "window": WINDOW,
        "fill_curve": fill_curve,
        "cold_curve": cold_curve,
        "warm_curve": warm_curve,
        "first_window": {
            "cold": cold_curve[0],
            "warm": warm_curve[0],
        },
        "steady_state": {
            "cold": round(
                sum(cold_curve[len(cold_curve) // 2:])
                / max(1, len(cold_curve) - len(cold_curve) // 2),
                4,
            ),
            "warm": round(
                sum(warm_curve[len(warm_curve) // 2:])
                / max(1, len(warm_curve) - len(warm_curve) // 2),
                4,
            ),
        },
        "restore": report.as_dict(),
    }


def run_replication_arm(sync_interval: float) -> dict:
    engine_a = build_engine()
    engine_b = build_engine()
    node_a = ReplicaNode("A", engine_a.cache)
    node_b = ReplicaNode("B", engine_b.cache)
    driver = ReplicationDriver(
        node_a,
        node_b,
        sync_interval=sync_interval,
        latency_ab=REPL_LATENCY_AB,
        latency_ba=REPL_LATENCY_BA,
    )
    queries_a = trace(REPL_QUERIES, REPL_POPULATION, seed=SEED)
    queries_b = trace(REPL_QUERIES, REPL_POPULATION, seed=SEED + 1,
                      offset=REPL_OFFSET)
    sample_every = max(1, REPL_QUERIES // REPL_SAMPLES)
    samples = []
    max_staleness = 0.0
    for i in range(REPL_QUERIES):
        now = i * TIME_STEP
        engine_a.handle(queries_a[i], now=now)
        engine_b.handle(queries_b[i], now=now)
        driver.tick(now)
        if (i + 1) % sample_every == 0:
            sample = driver.agreement()
            max_staleness = max(max_staleness, sample.max_staleness)
            samples.append(
                {
                    "t": round(sample.t, 3),
                    "agreement": round(sample.agreement, 4),
                    "stale_keys": sample.stale_keys,
                    "max_staleness": round(sample.max_staleness, 3),
                }
            )
    driver.drain(REPL_QUERIES * TIME_STEP)
    final = driver.agreement()
    return {
        "sync_interval": sync_interval,
        "latency_ab": REPL_LATENCY_AB,
        "latency_ba": REPL_LATENCY_BA,
        "samples": samples,
        "mid_run_max_staleness": round(max_staleness, 3),
        "final_agreement": round(final.agreement, 4),
        "final_union_keys": final.union_keys,
        "converged": final.agreement == 1.0,
        "frames": driver.link_ab.frames_sent + driver.link_ba.frames_sent,
        "bytes": driver.link_ab.bytes_sent + driver.link_ba.bytes_sent,
        "node_a": node_a.stats(),
        "node_b": node_b.stats(),
    }


def main(argv: list[str]) -> int:
    global N_QUERIES, REPL_QUERIES
    quick = "--quick" in argv
    if quick:
        N_QUERIES = 600
        REPL_QUERIES = 200

    cold_warm = run_cold_warm()
    print(
        f"cold/warm: first-window hit rate {cold_warm['first_window']['cold']:.3f}"
        f" -> {cold_warm['first_window']['warm']:.3f} "
        f"(restored {cold_warm['restore']['restored_items']} items, "
        f"snapshot={cold_warm['restore']['snapshot_restored']}, "
        f"journal={cold_warm['restore']['journal_applied']})"
    )

    replication = []
    for interval in SYNC_INTERVALS:
        arm = run_replication_arm(interval)
        replication.append(arm)
        print(
            f"replication sync={interval:>5.2f}s: "
            f"final agreement {arm['final_agreement']:.3f}, "
            f"mid-run staleness <= {arm['mid_run_max_staleness']:.2f}s, "
            f"{arm['frames']} frames / {arm['bytes']} bytes"
        )

    headline = {
        "cold_first_window_hit_rate": cold_warm["first_window"]["cold"],
        "warm_first_window_hit_rate": cold_warm["first_window"]["warm"],
        "warm_start_recovers_steady_state": (
            cold_warm["first_window"]["warm"]
            >= cold_warm["steady_state"]["cold"] * 0.9
        ),
        "restored_items": cold_warm["restore"]["restored_items"],
        "all_intervals_converged": all(arm["converged"] for arm in replication),
        "staleness_by_sync_interval": {
            str(arm["sync_interval"]): arm["mid_run_max_staleness"]
            for arm in replication
        },
    }
    data = {
        "config": {
            "n_queries": N_QUERIES,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "window": WINDOW,
            "capacity_items": CAPACITY,
            "fsync_every": FSYNC_EVERY,
            "seed": SEED,
            "replication": {
                "n_queries": REPL_QUERIES,
                "population": REPL_POPULATION,
                "offset": REPL_OFFSET,
                "sync_intervals": list(SYNC_INTERVALS),
                "latency_ab": REPL_LATENCY_AB,
                "latency_ba": REPL_LATENCY_BA,
            },
        },
        "results": {
            "cold_warm": cold_warm,
            "replication": replication,
        },
        "headline": headline,
    }
    # Quick runs must not clobber the committed artefact with smoke-grade
    # numbers (check_bench.py gates on the real file's headline).
    out_path = OUTPUT.with_suffix(".quick.json") if quick else OUTPUT
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    print(f"  headline: {headline}")
    ok = (
        headline["warm_first_window_hit_rate"]
        >= headline["cold_first_window_hit_rate"]
        and headline["all_intervals_converged"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
