"""Shared helpers for the benchmark runner scripts."""

from __future__ import annotations


def cap_samples(data: dict, keep: int = 20) -> dict:
    """Trim each benchmark's raw per-round sample list to ``keep`` entries.

    pytest-benchmark stores every timing sample under ``stats.data``; at
    thousands of rounds per benchmark that dominates the JSON artefact
    (tens of thousands of lines) without adding information — the summary
    statistics (mean/stddev/median/iqr/...) are already computed over the
    full sample set and are left untouched. Mutates and returns ``data``.
    """
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        samples = stats.get("data")
        if isinstance(samples, list) and len(samples) > keep:
            stats["data"] = samples[:keep]
    data["sample_cap"] = keep
    return data
