"""Shared helpers for the benchmark runner scripts."""

from __future__ import annotations

#: ``machine_info.cpu`` keys worth keeping in a committed artefact. The rest
#: of what cpuinfo collects — notably the 100+-entry ``flags`` list — is
#: noise that dwarfs the numbers the file exists to record.
_CPU_KEEP = ("arch", "bits", "count", "brand_raw", "hz_advertised_friendly")


def slim_machine_info(data: dict) -> dict:
    """Strip pytest-benchmark's ``machine_info`` down to the useful core.

    Keeps the host identity fields (arch / brand / core count / advertised
    clock) needed to interpret the timings and drops everything else from
    the ``cpu`` block, in particular the full CPU ``flags`` list. Mutates
    and returns ``data``; a no-op when no machine_info is present.
    """
    info = data.get("machine_info")
    if not isinstance(info, dict):
        return data
    cpu = info.get("cpu")
    if isinstance(cpu, dict):
        info["cpu"] = {key: cpu[key] for key in _CPU_KEEP if key in cpu}
    return data


def cap_samples(data: dict, keep: int = 20) -> dict:
    """Trim each benchmark's raw per-round sample list to ``keep`` entries.

    pytest-benchmark stores every timing sample under ``stats.data``; at
    thousands of rounds per benchmark that dominates the JSON artefact
    (tens of thousands of lines) without adding information — the summary
    statistics (mean/stddev/median/iqr/...) are already computed over the
    full sample set and are left untouched. Mutates and returns ``data``.
    """
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        samples = stats.get("data")
        if isinstance(samples, list) and len(samples) > keep:
            stats["data"] = samples[:keep]
    data["sample_cap"] = keep
    return data
