"""Table 5: operational cost across deployment configurations.

Paper: vanilla $82.5 @ 0.87 req/s, Asteria w/o sharing $158.5 @ 4.74,
co-located Asteria $76.64 @ 4.89 — about 6× more throughput per dollar.
"""

from benchmarks.conftest import row
from repro.experiments import table5_cost


def test_table5_cost(run_experiment):
    result = run_experiment(table5_cost.run, n_tasks=400)
    vanilla = row(result, configuration="vanilla")
    wo_sharing = row(result, configuration="asteria_wo_sharing")
    asteria = row(result, configuration="asteria")
    # Absolute dollar lines land near the paper's.
    assert abs(vanilla["total_cost_usd"] - 82.5) < 5.0
    assert abs(wo_sharing["total_cost_usd"] - 158.5) < 10.0
    assert abs(asteria["total_cost_usd"] - 76.64) < 5.0
    # API fees collapse by >80% under caching.
    assert asteria["api_cost_usd"] < 0.2 * vanilla["api_cost_usd"]
    # Co-location keeps nearly all of the two-GPU throughput.
    assert asteria["throughput_rps"] > 0.9 * wo_sharing["throughput_rps"]
    # The headline: much better throughput per dollar.
    assert asteria["thpt_per_dollar"] > 3.0 * vanilla["thpt_per_dollar"]
    assert asteria["thpt_per_dollar"] > wo_sharing["thpt_per_dollar"]
