"""Extension bench: sensitivity to the semantic judger's error rate.

§5 claims the judger is pluggable and "sufficient for practical use" at
small-LLM quality. This sweep shows the envelope: degradation is graceful —
a judger 10x worse than the calibrated stand-in costs hit rate (false
negatives) long before it meaningfully corrupts answers (false positives),
because τ_lsm and the similarity filter bound the damage.
"""

from benchmarks.conftest import row
from repro.experiments import judger_quality


def test_judger_quality(run_experiment):
    result = run_experiment(judger_quality.run, n_tasks=400)
    perfect = row(result, flip_rate=0.0)
    calibrated = row(result, flip_rate=0.02)
    degraded = row(result, flip_rate=0.2)
    # The calibrated stand-in is nearly indistinguishable from perfect.
    assert calibrated["hit_rate"] > perfect["hit_rate"] - 0.05
    assert calibrated["knowledge_accuracy"] > 0.99
    # Degradation is monotone and graceful.
    rates = [r["hit_rate"] for r in result.rows]
    assert rates == sorted(rates, reverse=True)
    assert degraded["hit_rate"] > 0.5
    assert degraded["knowledge_accuracy"] > 0.9
    # Errors cost remote calls (missed hits refetch).
    assert degraded["api_calls"] > perfect["api_calls"]
