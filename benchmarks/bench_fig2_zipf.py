"""Figure 2: Zipfian distribution of search interest across time windows.

Paper: the top five topics dominate both 24-hour and 7-day windows.
"""

from benchmarks.conftest import row
from repro.experiments import fig2_zipf


def test_fig2_zipf(run_experiment):
    result = run_experiment(fig2_zipf.run)
    for window in ("24h", "7d"):
        total = row(result, window=window, topic_rank="top5_total")
        assert total["share"] > 0.15
        assert -1.4 < total["fitted_slope"] < -0.6
        first = row(result, window=window, topic_rank=1)
        fifth = row(result, window=window, topic_rank=5)
        assert first["volume"] > 2 * fifth["volume"]
