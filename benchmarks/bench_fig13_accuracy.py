"""Figure 13: generation quality (Exact Match) with and without the judger.

Paper: Asteria matches the non-cached baseline everywhere, while the
ANN-only ablation drops (e.g. StrategyQA 0.69 vs 0.79) — vector similarity
serves related-but-wrong knowledge.
"""

from benchmarks.conftest import row
from repro.experiments import fig13_accuracy


def test_fig13_accuracy(run_experiment):
    result = run_experiment(fig13_accuracy.run, n_tasks=400)
    for dataset in ("zilliz_gpt", "hotpotqa", "musique", "two_wiki", "strategyqa"):
        vanilla = row(result, dataset=dataset, system="vanilla")
        asteria = row(result, dataset=dataset, system="asteria")
        ann_only = row(result, dataset=dataset, system="ann_only")
        assert abs(asteria["em_score"] - vanilla["em_score"]) < 0.02, dataset
        # ANN-only always loses something; low-ambiguity Zilliz loses least.
        assert ann_only["em_score"] < vanilla["em_score"], dataset
    for dataset in ("hotpotqa", "musique", "two_wiki", "strategyqa"):
        vanilla = row(result, dataset=dataset, system="vanilla")
        ann_only = row(result, dataset=dataset, system="ann_only")
        assert ann_only["em_score"] < vanilla["em_score"] - 0.015, dataset
    # The paper's quoted StrategyQA pair: 0.79 baseline, ~0.69 ANN-only.
    strategy_vanilla = row(result, dataset="strategyqa", system="vanilla")
    strategy_ann = row(result, dataset="strategyqa", system="ann_only")
    assert strategy_vanilla["em_score"] == 0.79
    assert 0.6 < strategy_ann["em_score"] < 0.75
