"""Concurrency benchmarks: closed-loop throughput vs worker count.

The wall-clock companion to the simulator's Fig. 10 study: a Zipf-skewed
workload served by the real-thread stack (sharded cache + single-flight +
worker pool), measured at several worker counts on one fixed configuration.

``io_pause_scale`` turns each simulated remote fetch latency into a real
GIL-releasing sleep, so misses block a worker the way a network round-trip
would — that blocked time is what extra workers overlap. Hits stay pure
compute. Throughput therefore scales with workers until the miss tail is
fully hidden, then flattens against the compute (GIL) floor.

Run via ``python benchmarks/run_concurrency.py`` to record
``BENCH_concurrency.json`` at the repo root.
"""

import numpy as np
import pytest

from repro.core import Query
from repro.factory import build_concurrent_engine, build_remote

#: Requests per closed-loop round (kept in sync with run_concurrency.py).
N_QUERIES = 800
#: Distinct facts in the Zipf population.
POPULATION = 256
#: Zipf skew (1.3 mirrors the stress CLI default).
ZIPF_S = 1.3
#: Real seconds slept per simulated remote-latency second.
IO_PAUSE_SCALE = 0.02
#: Worker counts swept (4-vs-1 is the tracked speedup).
WORKER_COUNTS = (1, 2, 4, 8)
#: Cache shards (fixed so only the worker axis varies).
SHARDS = 4


def _workload() -> list[Query]:
    rng = np.random.default_rng(0)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_closed_loop_throughput(benchmark, workload, workers):
    """One cold-start closed-loop run of the full workload per round."""

    def setup():
        engine = build_concurrent_engine(
            build_remote(seed=0),
            seed=0,
            shards=SHARDS,
            workers=workers,
            io_pause_scale=IO_PAUSE_SCALE,
        )
        return (engine,), {}

    def run(engine):
        report = engine.run_closed_loop(workload, time_step=0.01)
        engine.close()
        return report

    report = benchmark.pedantic(run, setup=setup, rounds=3, warmup_rounds=0)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["requests"] = report.requests
    benchmark.extra_info["hit_rate"] = round(report.hit_rate, 4)
    benchmark.extra_info["coalesced_misses"] = report.coalesced_misses
    benchmark.extra_info["remote_calls"] = report.remote_calls
    assert report.requests == N_QUERIES
