"""Extension bench: fleet scaling with a shared semantic L2.

The cross-region story at fleet scale — one node's remote fetch should warm
every node. Shared-L2 hit rates must stay flat with node count while
isolated nodes degrade.
"""

from benchmarks.conftest import row
from repro.experiments import tiered_fleet


def test_tiered_fleet(run_experiment):
    result = run_experiment(tiered_fleet.run)
    for nodes in (2, 4, 8):
        shared = row(result, nodes=nodes, l2="shared")
        isolated = row(result, nodes=nodes, l2="isolated")
        assert shared["fleet_hit_rate"] > isolated["fleet_hit_rate"]
        assert shared["remote_calls"] < isolated["remote_calls"]
    # Sharing keeps the fleet flat as it scales.
    shared_1 = row(result, nodes=1, l2="shared")
    shared_8 = row(result, nodes=8, l2="shared")
    assert shared_8["fleet_hit_rate"] > shared_1["fleet_hit_rate"] - 0.05
    # Isolated nodes pay a real dilution penalty by 8 nodes.
    isolated_8 = row(result, nodes=8, l2="isolated")
    assert shared_8["fleet_hit_rate"] > isolated_8["fleet_hit_rate"] + 0.1
