#!/usr/bin/env python
"""Sanity-check the committed ``BENCH_*.json`` artefacts (CI gate).

Checks, for every ``BENCH_*.json`` at the repo root:

* the file parses as JSON;
* files with registered schemas contain their required top-level keys;
* no array anywhere in the document exceeds ``MAX_ARRAY`` entries — the
  benchmark runners cap raw sample lists so artefacts stay reviewable
  (~1k lines per array at most), and this catches a runner regressing to
  dumping every sample again;
* ``machine_info.cpu`` carries no ``flags`` list (the runners slim it to a
  handful of identity fields; the full flag dump was ~200 entries of noise
  per artefact);
* per-file value gates on the fast-path numbers: the arena-batched lookup
  speedup, zero full index rebuilds under incremental admission, a
  non-empty int8 recall curve, sampled-tracing overhead under 1%
  (both the micro measurement and the obs headline), the proc-tier
  scaling section (shape always; the >=3x 4-worker speedup only on hosts
  with >= 4 cores, where the claim is physically testable), and the
  store artefact (warm restart no colder than a cold start, non-empty
  hit-rate curves, and full replication convergence at every swept sync
  interval), and the span-driven stage breakdown (every engine accounts
  for the request/embed/ann_search/judge stages; a workers=1 proc engine
  grafts exactly the stage spans the sequential engine records).

Pure stdlib; run as ``python benchmarks/check_bench.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Required top-level keys per artefact. Files not listed here still get the
#: parse and array-cap checks.
REQUIRED_KEYS = {
    "BENCH_micro.json": (
        "machine_info",
        "benchmarks",
        "speedups",
        "sample_cap",
        "arena",
    ),
    "BENCH_concurrency.json": (
        "machine_info",
        "benchmarks",
        "throughput_rps",
        "speedups",
        "sample_cap",
        "proc",
    ),
    "BENCH_async.json": ("config", "results", "headline"),
    "BENCH_chaos.json": ("config", "results", "proc_worker_kill", "headline"),
    "BENCH_obs.json": ("config", "results", "headline"),
    "BENCH_store.json": ("config", "results", "headline"),
    "BENCH_breakdown.json": ("config", "results", "parity", "headline"),
}

MAX_ARRAY = 1024

#: Minimum arena-batched speedup over the per-vector scalar path (the PR's
#: headline acceptance bar).
MIN_BATCHED_SPEEDUP = 2.0
#: Sampled tracing must stay under this overhead (percent).
MAX_SAMPLED_OVERHEAD_PCT = 1.0
#: Minimum proc-tier judge-stage speedup at 4 workers vs 1 — enforced only
#: on hosts with at least this many cores, because a smaller box cannot
#: demonstrate parallel speedup no matter how good the code is. The shape
#: of the ``proc`` section is checked everywhere.
MIN_PROC_SPEEDUP_4W = 3.0
MIN_CORES_FOR_PROC_GATE = 4
#: A supervised worker SIGKILL may cost at most this slice of the run.
MIN_KILL_SERVED_FRACTION = 0.9


def _dig(data, *keys):
    """Walk nested dicts; None as soon as a key is missing."""
    node = data
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def gate_micro(data) -> list[str]:
    """Value gates on the ``arena`` fast-path section of BENCH_micro."""
    errors = []
    speedup = _dig(data, "arena", "throughput", "batched_speedup_vs_scalar")
    if not isinstance(speedup, (int, float)) or speedup < MIN_BATCHED_SPEEDUP:
        errors.append(
            f"arena.throughput.batched_speedup_vs_scalar is {speedup!r}; "
            f"the batched arena path must be >= {MIN_BATCHED_SPEEDUP}x scalar"
        )
    rebuilds = _dig(data, "arena", "incremental_rebuilds")
    for kind in ("flat", "ivf", "hnsw", "pq"):
        count = rebuilds.get(kind) if isinstance(rebuilds, dict) else None
        if count != 0:
            errors.append(
                f"arena.incremental_rebuilds.{kind} is {count!r}; incremental "
                f"admission must trigger zero full rebuilds"
            )
    curve = _dig(data, "arena", "int8", "recall_curve")
    if not isinstance(curve, list) or not curve:
        errors.append("arena.int8.recall_curve is missing or empty")
    overhead = _dig(data, "arena", "sampled_tracing", "overhead_pct")
    if not isinstance(overhead, (int, float)) or overhead >= MAX_SAMPLED_OVERHEAD_PCT:
        errors.append(
            f"arena.sampled_tracing.overhead_pct is {overhead!r}; must be "
            f"< {MAX_SAMPLED_OVERHEAD_PCT}"
        )
    return errors


def gate_obs(data) -> list[str]:
    errors = []
    sampled = _dig(data, "headline", "max_sampled_overhead_pct")
    if not isinstance(sampled, (int, float)) or sampled >= MAX_SAMPLED_OVERHEAD_PCT:
        errors.append(
            f"headline.max_sampled_overhead_pct is {sampled!r}; must be "
            f"< {MAX_SAMPLED_OVERHEAD_PCT}"
        )
    if _dig(data, "headline", "within_budget") is not True:
        errors.append("headline.within_budget is not true")
    return errors


#: Engines and stages the span-driven breakdown artefact must account for.
BREAKDOWN_ENGINES = ("sync", "thread", "async", "proc")
BREAKDOWN_STAGES = ("request", "embed", "ann_search", "judge")


def gate_breakdown(data) -> list[str]:
    """Shape + parity gates on the span-driven stage breakdown artefact."""
    errors = []
    for engine in BREAKDOWN_ENGINES:
        for stage in BREAKDOWN_STAGES:
            count = _dig(data, "results", engine, "stages", stage, "count")
            if not isinstance(count, int) or count <= 0:
                errors.append(
                    f"results.{engine}.stages.{stage}.count is {count!r}; every "
                    f"engine's trace must account for the {stage} stage"
                )
    if _dig(data, "parity", "counts_match") is not True:
        errors.append(
            "parity.counts_match is not true; a workers=1 proc engine must "
            "graft exactly the stage spans the sequential engine records"
        )
    if _dig(data, "parity", "judge_ratio_ok") is not True:
        ratio = _dig(data, "parity", "judge_total_ratio")
        errors.append(
            f"parity.judge_ratio_ok is not true (judge_total_ratio="
            f"{ratio!r}); the worker-side judge wall must agree with the "
            f"sequential engine's within the tolerance band"
        )
    if _dig(data, "headline", "all_core_stages_present") is not True:
        errors.append("headline.all_core_stages_present is not true")
    return errors


def gate_concurrency(data) -> list[str]:
    """Shape + (hardware-permitting) value gates on the ``proc`` section."""
    errors = []
    rps = _dig(data, "proc", "throughput_rps")
    for workers in ("1", "2", "4"):
        value = rps.get(workers) if isinstance(rps, dict) else None
        if not isinstance(value, (int, float)) or value <= 0:
            errors.append(
                f"proc.throughput_rps[{workers!r}] is {value!r}; the proc "
                f"runner must record 1/2/4-worker throughput"
            )
    spin = _dig(data, "proc", "judge_spin")
    if not isinstance(spin, (int, float)) or spin <= 0:
        errors.append(
            f"proc.judge_spin is {spin!r}; the scaling run must be "
            f"judge-stage CPU-bound (spin > 0)"
        )
    plateau = _dig(data, "proc", "thread_plateau", "speedup_vs_1w")
    if not isinstance(plateau, (int, float)):
        errors.append(
            f"proc.thread_plateau.speedup_vs_1w is {plateau!r}; the runner "
            f"must record the thread-pool baseline"
        )
    speedup = _dig(data, "proc", "speedups", "speedup_4w")
    if not isinstance(speedup, (int, float)):
        errors.append(f"proc.speedups.speedup_4w is {speedup!r}; must be a number")
        return errors
    cores = _dig(data, "machine_info", "cpu", "count")
    if isinstance(cores, int) and cores >= MIN_CORES_FOR_PROC_GATE:
        if speedup < MIN_PROC_SPEEDUP_4W:
            errors.append(
                f"proc.speedups.speedup_4w is {speedup!r} on a {cores}-core "
                f"host; 4 shard processes must reach >= "
                f"{MIN_PROC_SPEEDUP_4W}x the 1-worker throughput"
            )
    return errors


def gate_store(data) -> list[str]:
    """Shape + value gates on the durability/replication artefact."""
    errors = []
    for curve in ("cold_curve", "warm_curve"):
        values = _dig(data, "results", "cold_warm", curve)
        if not isinstance(values, list) or not values:
            errors.append(f"results.cold_warm.{curve} is missing or empty")
    cold = _dig(data, "headline", "cold_first_window_hit_rate")
    warm = _dig(data, "headline", "warm_first_window_hit_rate")
    if not isinstance(cold, (int, float)) or not isinstance(warm, (int, float)):
        errors.append(
            f"headline first-window hit rates are {cold!r}/{warm!r}; "
            f"must be numbers"
        )
    elif warm < cold:
        errors.append(
            f"warm first-window hit rate {warm} < cold {cold}; a warm "
            f"restart must not start colder than a cold start"
        )
    restored = _dig(data, "headline", "restored_items")
    if not isinstance(restored, int) or restored <= 0:
        errors.append(
            f"headline.restored_items is {restored!r}; the warm restart "
            f"must recover a non-empty cache"
        )
    arms = _dig(data, "results", "replication")
    if not isinstance(arms, list) or not arms:
        errors.append("results.replication is missing or empty")
        return errors
    for arm in arms:
        interval = _dig(arm, "sync_interval")
        if _dig(arm, "converged") is not True:
            errors.append(
                f"replication arm sync_interval={interval!r} did not reach "
                f"full agreement; longer intervals may cost staleness, "
                f"never convergence"
            )
        samples = _dig(arm, "samples")
        if not isinstance(samples, list) or not samples:
            errors.append(
                f"replication arm sync_interval={interval!r} has no "
                f"agreement-over-time samples"
            )
    if _dig(data, "headline", "all_intervals_converged") is not True:
        errors.append("headline.all_intervals_converged is not true")
    return errors


def gate_chaos(data) -> list[str]:
    """Value gates on the ``proc_worker_kill`` self-healing section."""
    errors = []
    supervised = _dig(data, "proc_worker_kill", "supervised")
    served = _dig(supervised, "served_fraction") if supervised else None
    if not isinstance(served, (int, float)) or served < MIN_KILL_SERVED_FRACTION:
        errors.append(
            f"proc_worker_kill.supervised.served_fraction is {served!r}; a "
            f"supervised worker kill must keep >= {MIN_KILL_SERVED_FRACTION} "
            f"of requests served"
        )
    kills = _dig(supervised, "worker_kills") if supervised else None
    if not isinstance(kills, int) or kills < 1:
        errors.append(
            f"proc_worker_kill.supervised.worker_kills is {kills!r}; the "
            f"chaos run must actually kill a worker"
        )
    restarts = _dig(supervised, "worker_restarts") if supervised else None
    if not isinstance(restarts, int) or restarts < 1:
        errors.append(
            f"proc_worker_kill.supervised.worker_restarts is {restarts!r}; "
            f"the supervisor must respawn the killed worker"
        )
    if _dig(data, "headline", "worker_error_escaped") is not False:
        errors.append(
            "headline.worker_error_escaped is not false; a WorkerError "
            "escaped serve() during the supervised kill"
        )
    if _dig(data, "proc_worker_kill", "unsupervised", "engine_failed") is not True:
        errors.append(
            "proc_worker_kill.unsupervised.engine_failed is not true; "
            "the unsupervised arm no longer demonstrates the failure the "
            "supervisor exists to absorb"
        )
    warm = _dig(data, "proc_worker_kill", "warm_recovery", "warm_hits")
    cold = _dig(data, "proc_worker_kill", "warm_recovery", "cold_hits")
    if not isinstance(warm, int) or warm <= 0:
        errors.append(
            f"proc_worker_kill.warm_recovery.warm_hits is {warm!r}; a "
            f"persisted shard must come back answering hits"
        )
    elif isinstance(cold, int) and warm <= cold:
        errors.append(
            f"warm recovery hits {warm} <= cold {cold}; the journal restore "
            f"must lift hit rate over a cold respawn"
        )
    return errors


#: Per-file value gates, run after the schema checks pass.
VALUE_GATES = {
    "BENCH_micro.json": gate_micro,
    "BENCH_obs.json": gate_obs,
    "BENCH_concurrency.json": gate_concurrency,
    "BENCH_store.json": gate_store,
    "BENCH_chaos.json": gate_chaos,
    "BENCH_breakdown.json": gate_breakdown,
}


def oversized_arrays(node, path="$"):
    """Yield (path, length) for every list longer than MAX_ARRAY."""
    if isinstance(node, list):
        if len(node) > MAX_ARRAY:
            yield path, len(node)
        for i, item in enumerate(node):
            yield from oversized_arrays(item, f"{path}[{i}]")
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from oversized_arrays(value, f"{path}.{key}")


def check(path: pathlib.Path) -> list[str]:
    errors = []
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        return [f"{path.name}: does not parse: {exc}"]
    required = REQUIRED_KEYS.get(path.name, ())
    missing = [key for key in required if key not in data]
    if missing:
        errors.append(f"{path.name}: missing top-level keys {missing}")
    for where, length in oversized_arrays(data):
        errors.append(
            f"{path.name}: array at {where} has {length} entries "
            f"(cap is {MAX_ARRAY}; cap samples in the runner)"
        )
    cpu = _dig(data, "machine_info", "cpu")
    if isinstance(cpu, dict) and "flags" in cpu:
        errors.append(
            f"{path.name}: machine_info.cpu.flags present; runners must slim "
            f"cpu info (bench_util.slim_machine_info)"
        )
    if not missing:
        gate = VALUE_GATES.get(path.name)
        if gate is not None:
            errors.extend(f"{path.name}: {msg}" for msg in gate(data))
    return errors


def main() -> int:
    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json artefacts found", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        errors = check(path)
        if errors:
            failures.extend(errors)
        else:
            keys = REQUIRED_KEYS.get(path.name)
            note = f"required keys {list(keys)}" if keys else "generic checks"
            print(f"ok: {path.name} ({note})")
    for error in failures:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
