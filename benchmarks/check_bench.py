#!/usr/bin/env python
"""Sanity-check the committed ``BENCH_*.json`` artefacts (CI gate).

Checks, for every ``BENCH_*.json`` at the repo root:

* the file parses as JSON;
* files with registered schemas contain their required top-level keys;
* no array anywhere in the document exceeds ``MAX_ARRAY`` entries — the
  benchmark runners cap raw sample lists so artefacts stay reviewable
  (~1k lines per array at most), and this catches a runner regressing to
  dumping every sample again.

Pure stdlib; run as ``python benchmarks/check_bench.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Required top-level keys per artefact. Files not listed here still get the
#: parse and array-cap checks.
REQUIRED_KEYS = {
    "BENCH_micro.json": ("machine_info", "benchmarks", "speedups", "sample_cap"),
    "BENCH_concurrency.json": (
        "machine_info",
        "benchmarks",
        "throughput_rps",
        "speedups",
        "sample_cap",
    ),
    "BENCH_async.json": ("config", "results", "headline"),
    "BENCH_chaos.json": ("config", "results", "headline"),
    "BENCH_obs.json": ("config", "results", "headline"),
}

MAX_ARRAY = 1024


def oversized_arrays(node, path="$"):
    """Yield (path, length) for every list longer than MAX_ARRAY."""
    if isinstance(node, list):
        if len(node) > MAX_ARRAY:
            yield path, len(node)
        for i, item in enumerate(node):
            yield from oversized_arrays(item, f"{path}[{i}]")
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from oversized_arrays(value, f"{path}.{key}")


def check(path: pathlib.Path) -> list[str]:
    errors = []
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        return [f"{path.name}: does not parse: {exc}"]
    required = REQUIRED_KEYS.get(path.name, ())
    missing = [key for key in required if key not in data]
    if missing:
        errors.append(f"{path.name}: missing top-level keys {missing}")
    for where, length in oversized_arrays(data):
        errors.append(
            f"{path.name}: array at {where} has {length} entries "
            f"(cap is {MAX_ARRAY}; cap samples in the runner)"
        )
    return errors


def main() -> int:
    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json artefacts found", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        errors = check(path)
        if errors:
            failures.extend(errors)
        else:
            keys = REQUIRED_KEYS.get(path.name)
            note = f"required keys {list(keys)}" if keys else "generic checks"
            print(f"ok: {path.name} ({note})")
    for error in failures:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
