#!/usr/bin/env python
"""Sanity-check the committed ``BENCH_*.json`` artefacts (CI gate).

Checks, for every ``BENCH_*.json`` at the repo root:

* the file parses as JSON;
* files with registered schemas contain their required top-level keys;
* no array anywhere in the document exceeds ``MAX_ARRAY`` entries — the
  benchmark runners cap raw sample lists so artefacts stay reviewable
  (~1k lines per array at most), and this catches a runner regressing to
  dumping every sample again;
* ``machine_info.cpu`` carries no ``flags`` list (the runners slim it to a
  handful of identity fields; the full flag dump was ~200 entries of noise
  per artefact);
* per-file value gates on the fast-path numbers: the arena-batched lookup
  speedup, zero full index rebuilds under incremental admission, a
  non-empty int8 recall curve, and sampled-tracing overhead under 1%
  (both the micro measurement and the obs headline).

Pure stdlib; run as ``python benchmarks/check_bench.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Required top-level keys per artefact. Files not listed here still get the
#: parse and array-cap checks.
REQUIRED_KEYS = {
    "BENCH_micro.json": (
        "machine_info",
        "benchmarks",
        "speedups",
        "sample_cap",
        "arena",
    ),
    "BENCH_concurrency.json": (
        "machine_info",
        "benchmarks",
        "throughput_rps",
        "speedups",
        "sample_cap",
    ),
    "BENCH_async.json": ("config", "results", "headline"),
    "BENCH_chaos.json": ("config", "results", "headline"),
    "BENCH_obs.json": ("config", "results", "headline"),
}

MAX_ARRAY = 1024

#: Minimum arena-batched speedup over the per-vector scalar path (the PR's
#: headline acceptance bar).
MIN_BATCHED_SPEEDUP = 2.0
#: Sampled tracing must stay under this overhead (percent).
MAX_SAMPLED_OVERHEAD_PCT = 1.0


def _dig(data, *keys):
    """Walk nested dicts; None as soon as a key is missing."""
    node = data
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def gate_micro(data) -> list[str]:
    """Value gates on the ``arena`` fast-path section of BENCH_micro."""
    errors = []
    speedup = _dig(data, "arena", "throughput", "batched_speedup_vs_scalar")
    if not isinstance(speedup, (int, float)) or speedup < MIN_BATCHED_SPEEDUP:
        errors.append(
            f"arena.throughput.batched_speedup_vs_scalar is {speedup!r}; "
            f"the batched arena path must be >= {MIN_BATCHED_SPEEDUP}x scalar"
        )
    rebuilds = _dig(data, "arena", "incremental_rebuilds")
    for kind in ("flat", "ivf", "hnsw", "pq"):
        count = rebuilds.get(kind) if isinstance(rebuilds, dict) else None
        if count != 0:
            errors.append(
                f"arena.incremental_rebuilds.{kind} is {count!r}; incremental "
                f"admission must trigger zero full rebuilds"
            )
    curve = _dig(data, "arena", "int8", "recall_curve")
    if not isinstance(curve, list) or not curve:
        errors.append("arena.int8.recall_curve is missing or empty")
    overhead = _dig(data, "arena", "sampled_tracing", "overhead_pct")
    if not isinstance(overhead, (int, float)) or overhead >= MAX_SAMPLED_OVERHEAD_PCT:
        errors.append(
            f"arena.sampled_tracing.overhead_pct is {overhead!r}; must be "
            f"< {MAX_SAMPLED_OVERHEAD_PCT}"
        )
    return errors


def gate_obs(data) -> list[str]:
    errors = []
    sampled = _dig(data, "headline", "max_sampled_overhead_pct")
    if not isinstance(sampled, (int, float)) or sampled >= MAX_SAMPLED_OVERHEAD_PCT:
        errors.append(
            f"headline.max_sampled_overhead_pct is {sampled!r}; must be "
            f"< {MAX_SAMPLED_OVERHEAD_PCT}"
        )
    if _dig(data, "headline", "within_budget") is not True:
        errors.append("headline.within_budget is not true")
    return errors


#: Per-file value gates, run after the schema checks pass.
VALUE_GATES = {
    "BENCH_micro.json": gate_micro,
    "BENCH_obs.json": gate_obs,
}


def oversized_arrays(node, path="$"):
    """Yield (path, length) for every list longer than MAX_ARRAY."""
    if isinstance(node, list):
        if len(node) > MAX_ARRAY:
            yield path, len(node)
        for i, item in enumerate(node):
            yield from oversized_arrays(item, f"{path}[{i}]")
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from oversized_arrays(value, f"{path}.{key}")


def check(path: pathlib.Path) -> list[str]:
    errors = []
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        return [f"{path.name}: does not parse: {exc}"]
    required = REQUIRED_KEYS.get(path.name, ())
    missing = [key for key in required if key not in data]
    if missing:
        errors.append(f"{path.name}: missing top-level keys {missing}")
    for where, length in oversized_arrays(data):
        errors.append(
            f"{path.name}: array at {where} has {length} entries "
            f"(cap is {MAX_ARRAY}; cap samples in the runner)"
        )
    cpu = _dig(data, "machine_info", "cpu")
    if isinstance(cpu, dict) and "flags" in cpu:
        errors.append(
            f"{path.name}: machine_info.cpu.flags present; runners must slim "
            f"cpu info (bench_util.slim_machine_info)"
        )
    if not missing:
        gate = VALUE_GATES.get(path.name)
        if gate is not None:
            errors.extend(f"{path.name}: {msg}" for msg in gate(data))
    return errors


def main() -> int:
    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json artefacts found", file=sys.stderr)
        return 1
    failures = []
    for path in files:
        errors = check(path)
        if errors:
            failures.extend(errors)
        else:
            keys = REQUIRED_KEYS.get(path.name)
            note = f"required keys {list(keys)}" if keys else "generic checks"
            print(f"ok: {path.name} ({note})")
    for error in failures:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
