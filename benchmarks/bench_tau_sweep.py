"""§4.2 ablation: the τ_sim / τ_lsm trade-off surfaces.

The design-choice data behind Sine's operating point: permissive τ_sim
keeps recall, strict τ_lsm keeps precision, and Algorithm 1 navigates the
curve automatically.
"""

from benchmarks.conftest import row
from repro.experiments import tau_sweep


def test_tau_sweep(run_experiment):
    result = run_experiment(tau_sweep.run, n_queries=800)
    # Raising tau_sim to absurd strictness destroys the hit rate.
    loose = row(result, tau_sim=0.7, tau_lsm=0.9)
    strict = row(result, tau_sim=0.99, tau_lsm=0.9)
    assert strict["hit_rate"] < 0.6 * loose["hit_rate"]
    # Dropping tau_lsm to near zero trades precision for hits.
    reckless = row(result, tau_sim=0.7, tau_lsm=0.02)
    assert reckless["hit_rate"] >= loose["hit_rate"]
    assert reckless["hit_precision"] <= loose["hit_precision"]
    # The operating point keeps precision at 1.0 on this workload.
    assert loose["hit_precision"] > 0.995
