"""Figure 1c: Search-R1 latency breakdown on the uncached agent.

Paper: external retrieval is 40-50 % of execution time, GPU ~50 % idle.
"""

from benchmarks.conftest import row
from repro.experiments import fig1c_breakdown


def test_fig1c_breakdown(run_experiment):
    result = run_experiment(fig1c_breakdown.run, n_tasks=200)
    retrieval = row(result, component="external_retrieval")
    inference = row(result, component="llm_inference")
    assert 0.30 < retrieval["fraction"] < 0.55
    assert 0.45 < inference["fraction"] < 0.70
