"""Figure 8: trend-driven (bursty) workload vs cache ratio.

Paper: up to 3.8× throughput over vanilla with ~95 % hit rates; LCFU's
staticity-aware eviction absorbs each trend wave.
"""

from benchmarks.conftest import row
from repro.experiments import fig8_trend


def test_fig8_trend(run_experiment):
    result = run_experiment(fig8_trend.run, duration=600.0)
    for ratio in (0.2, 0.6):
        vanilla = row(result, cache_ratio=ratio, system="vanilla")
        exact = row(result, cache_ratio=ratio, system="exact")
        asteria = row(result, cache_ratio=ratio, system="asteria")
        assert asteria["hit_rate"] > 0.85
        assert exact["hit_rate"] < 0.25
        # Vanilla's completions trickle out at the rate limit long after the
        # trace ends, inflating its nominal completions/second; the gap is
        # still well above 1.5x and the latency collapse is the real story.
        assert asteria["throughput_rps"] > 1.5 * vanilla["throughput_rps"]
        # Bursts overwhelm the rate-limited baselines' latencies.
        assert asteria["p99_latency_s"] < 0.1 * vanilla["p99_latency_s"]
