#!/usr/bin/env python
"""Run the concurrency benchmarks and record the results at the repo root.

Executes ``bench_concurrency.py`` under pytest-benchmark with
``--benchmark-json``, derives closed-loop throughput (requests per wall
second) for each worker count plus the worker-scaling speedups the project
tracks PR-over-PR, caps the stored raw samples, and writes
``BENCH_concurrency.json``.

Usage::

    python benchmarks/run_concurrency.py [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from bench_util import cap_samples, slim_machine_info

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_concurrency.json"


def main(argv: list[str]) -> int:
    env_path = str(REPO_ROOT / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_concurrency.py"),
            f"--benchmark-json={OUTPUT}",
            "-q",
            *argv,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": env_path},
    )
    if result.returncode != 0:
        return result.returncode

    data = json.loads(OUTPUT.read_text())
    throughput: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        info = bench.get("extra_info", {})
        workers = info.get("workers")
        requests = info.get("requests")
        if workers is None or not requests:
            continue
        throughput[str(workers)] = requests / bench["stats"]["mean"]
    speedups = {}
    base = throughput.get("1")
    if base:
        for workers, rps in sorted(throughput.items(), key=lambda kv: int(kv[0])):
            speedups[f"speedup_{workers}w"] = rps / base
    data["throughput_rps"] = {k: round(v, 2) for k, v in throughput.items()}
    data["speedups"] = {k: round(v, 3) for k, v in speedups.items()}
    slim_machine_info(data)
    cap_samples(data)
    OUTPUT.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"\nwrote {OUTPUT}")
    for workers, rps in sorted(throughput.items(), key=lambda kv: int(kv[0])):
        ratio = speedups.get(f"speedup_{workers}w", 1.0)
        print(f"  workers={workers}: {rps:.1f} req/s ({ratio:.2f}x vs 1 worker)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
