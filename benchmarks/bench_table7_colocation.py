"""Table 7: co-location efficiency — MPS 80/20 vs a dedicated judger GPU.

Paper: the co-located configuration retains 94 % of dedicated throughput
(2.72 vs 2.89 req/s) at +9.5 % p99 latency, on half the GPUs.
"""

from benchmarks.conftest import row
from repro.experiments import table7_colocation


def test_table7_colocation(run_experiment):
    result = run_experiment(table7_colocation.run, n_tasks=600)
    dedicated = row(result, configuration="Dedicated-2GPU")
    colocated = row(result, configuration="Co-located (MPS 80/20)")
    assert dedicated["gpus"] == 2 and colocated["gpus"] == 1
    # ~94% retention and a positive (but bounded) p99 penalty.
    assert 0.88 < colocated["throughput_retention"] < 0.99
    assert 0.0 < colocated["p99_inflation"] < 0.25
    # Caching effectiveness identical across placements.
    assert abs(colocated["hit_rate"] - dedicated["hit_rate"]) < 0.02
