"""Shared helpers for the benchmark harness.

Each benchmark runs one paper experiment at full scale exactly once
(``rounds=1``: these are macro-experiments on a virtual clock, not
micro-benchmarks), prints the same rows/series the paper's table or figure
reports, and asserts the qualitative shape.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark one experiment runner and print its table."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            result.print_table()
        return result

    return runner


def row(result, **criteria):
    """First row matching the criteria; fails loudly otherwise."""
    rows = result.filter(**criteria)
    assert rows, f"no rows matching {criteria} in {result.name}"
    return rows[0]
