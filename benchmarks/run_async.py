#!/usr/bin/env python
"""Async vs thread-pool serving benchmark; records ``BENCH_async.json``.

Runs the same Zipf-skewed workload through both real serving stacks —
the thread-pool :class:`ConcurrentEngine` (closed loop, ``workers=K``) and
the asyncio :class:`AsyncAsteriaEngine` (closed loop, ``concurrency=K``) —
across matched outstanding-request counts and ``io_pause_scale`` settings,
then drives the async engine open-loop at fixed arrival rates to exercise
backpressure and deadlines. Every engine starts cold; each configuration
runs ``ROUNDS`` times and the best round is kept.

Usage::

    python benchmarks/run_async.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.factory import (  # noqa: E402
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.serving.aio import run_closed_loop, run_open_loop  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_async.json"

N_QUERIES = 600
POPULATION = 256
ZIPF_S = 1.3
TIME_STEP = 0.01
SEED = 0
ROUNDS = 2
IO_SCALES = (0.0, 0.02)
THREAD_WORKERS = (1, 2, 4, 8)
ASYNC_CONCURRENCY = (1, 4, 16, 64)
OPEN_LOOP_RUNS = (
    # (rate req/s, deadline s, max_inflight) — the second run drives the
    # engine past its depth so overload/deadline outcomes actually occur.
    (500.0, None, 256),
    (4000.0, 0.02, 24),
)


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def run_threads(queries, io_scale: float, workers: int) -> dict:
    best = None
    for _ in range(ROUNDS):
        engine = build_concurrent_engine(
            build_remote(seed=SEED),
            seed=SEED,
            shards=4,
            workers=workers,
            io_pause_scale=io_scale,
        )
        with engine:
            report = engine.run_closed_loop(queries, time_step=TIME_STEP)
        if best is None or report.throughput_rps > best.throughput_rps:
            best = report
    row = best.summary()
    row.update(engine="threads", mode="closed", io_pause_scale=io_scale)
    return row


def run_async_closed(queries, io_scale: float, concurrency: int, **engine_kw) -> dict:
    best = None
    for _ in range(ROUNDS):
        engine = build_async_engine(
            build_remote(seed=SEED),
            seed=SEED,
            shards=4,
            io_pause_scale=io_scale,
            max_inflight=max(256, concurrency),
            **engine_kw,
        )
        report = asyncio.run(
            run_closed_loop(engine, queries, concurrency, time_step=TIME_STEP)
        )
        if best is None or report.throughput_rps > best.throughput_rps:
            best = report
    row = best.summary()
    row.update(engine="async", io_pause_scale=io_scale, **engine_kw)
    return row


def run_async_open(queries, io_scale, rate, deadline, max_inflight) -> dict:
    engine = build_async_engine(
        build_remote(seed=SEED),
        seed=SEED,
        shards=4,
        io_pause_scale=io_scale,
        max_inflight=max_inflight,
        default_deadline=deadline,
    )
    report = asyncio.run(run_open_loop(engine, queries, rate, time_step=TIME_STEP))
    row = report.summary()
    row.update(
        engine="async",
        io_pause_scale=io_scale,
        deadline=deadline,
        max_inflight=max_inflight,
        peak_inflight_fetches=engine.remote.max_inflight,
    )
    return row


def main(argv: list[str]) -> int:
    global ROUNDS, THREAD_WORKERS, ASYNC_CONCURRENCY
    if "--quick" in argv:
        ROUNDS = 1
        THREAD_WORKERS = (1, 4)
        ASYNC_CONCURRENCY = (1, 64)
    queries = workload()
    results: list[dict] = []
    for io_scale in IO_SCALES:
        for workers in THREAD_WORKERS:
            row = run_threads(queries, io_scale, workers)
            results.append(row)
            print(
                f"threads  io={io_scale:<5} K={workers:<3} "
                f"{row['throughput_rps']:>8.1f} req/s"
            )
        for concurrency in ASYNC_CONCURRENCY:
            row = run_async_closed(queries, io_scale, concurrency)
            results.append(row)
            print(
                f"async    io={io_scale:<5} K={concurrency:<3} "
                f"{row['throughput_rps']:>8.1f} req/s"
            )
    # One hedged configuration: cut the latency tail of cold misses.
    hedged = run_async_closed(
        queries, 0.02, 16, hedge_percentile=90.0, hedge_min_samples=10
    )
    results.append(hedged)
    print(
        f"async    io=0.02  K=16  {hedged['throughput_rps']:>8.1f} req/s "
        f"(hedged={hedged['hedged_fetches']})"
    )
    for rate, deadline, max_inflight in OPEN_LOOP_RUNS:
        row = run_async_open(queries, 0.02, rate, deadline, max_inflight)
        results.append(row)
        print(
            f"async    io=0.02  open rate={rate:<6.0f} "
            f"{row['throughput_rps']:>8.1f} req/s "
            f"(overloaded={row['overloaded']} "
            f"deadline_exceeded={row['deadline_exceeded']})"
        )

    def rps(engine, io_scale, key, value):
        for row in results:
            if (
                row["engine"] == engine
                and row["io_pause_scale"] == io_scale
                and row.get(key) == value
                and row["mode"] == "closed"
                and "hedge_percentile" not in row
            ):
                return row["throughput_rps"]
        return None

    threads_4 = rps("threads", 0.02, "workers", 4)
    async_1 = rps("async", 0.02, "concurrency", 1)
    async_64 = rps("async", 0.02, "concurrency", 64)
    headline = {
        "io_bound_scale": 0.02,
        "threads_4_workers_rps": threads_4,
        "async_concurrency_1_rps": async_1,
        "async_concurrency_64_rps": async_64,
        "async_64_vs_threads_4": (
            round(async_64 / threads_4, 3) if threads_4 and async_64 else None
        ),
    }
    data = {
        "config": {
            "n_queries": N_QUERIES,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "seed": SEED,
            "rounds": ROUNDS,
            "io_pause_scales": list(IO_SCALES),
            "thread_workers": list(THREAD_WORKERS),
            "async_concurrency": list(ASYNC_CONCURRENCY),
            "open_loop_runs": [list(run) for run in OPEN_LOOP_RUNS],
        },
        "results": results,
        "headline": headline,
    }
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(f"  headline: {headline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
