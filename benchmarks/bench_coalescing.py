"""Extension bench: miss coalescing under a flash crowd.

At the instant a fresh topic bursts (Figure 3), concurrent misses without
coalescing each pay a remote fetch for an answer already in flight —
exactly when rate-limit quota is scarcest. In-flight sharing collapses the
herd to roughly one fetch per distinct fact.
"""

from benchmarks.conftest import row
from repro.experiments import coalescing_study


def test_coalescing_flash_crowd(run_experiment):
    result = run_experiment(coalescing_study.run, n_clients=120, n_facts=4)
    off = row(result, coalescing="off")
    on = row(result, coalescing="on")
    # The herd collapses to about one fetch per fact.
    assert on["api_calls"] <= 2 * 4
    assert on["api_calls"] < 0.25 * off["api_calls"]
    assert on["coalesced"] > 0
    # Followers are no slower for waiting; the fleet is faster overall.
    assert on["mean_latency_s"] <= off["mean_latency_s"] * 1.05
    assert on["api_cost_usd"] < off["api_cost_usd"]
