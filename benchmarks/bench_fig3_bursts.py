"""Figure 3: bursty, correlated query patterns around external events.

Paper: events spike their topic's interest and drag related topics along.
"""

from repro.experiments import fig3_bursts


def test_fig3_bursts(run_experiment):
    result = run_experiment(fig3_bursts.run, duration=600.0)
    assert len(result.rows) == 4
    for event_row in result.rows:
        assert event_row["burst_ratio"] > 1.5
        if "related_burst_ratio" in event_row:
            assert event_row["related_burst_ratio"] > 1.0
