"""Extension bench: admission control under a tail-heavy workload.

Admit-everything (the paper's default) lets the Zipf tail churn a tight
cache; a TinyLFU-style semantic doorkeeper halves eviction churn and still
improves the hit rate.
"""

from benchmarks.conftest import row
from repro.experiments import admission_study


def test_admission_study(run_experiment):
    result = run_experiment(admission_study.run, n_queries=2000)
    always = row(result, admission="always")
    doorkeeper = row(result, admission="doorkeeper")
    assert doorkeeper["evictions"] < 0.6 * always["evictions"]
    assert doorkeeper["hit_rate"] >= always["hit_rate"]
    assert doorkeeper["api_calls"] <= always["api_calls"]
