"""§6.7 + §5 deep dive: threshold recalibration under judger drift.

Mid-run the judger's discrimination degrades (workload drift); Algorithm 1
tightens τ_lsm to hold the precision target, and the §5 fine-tuning hook
uses the same labelled samples to repair the judger itself.
"""

from benchmarks.conftest import row
from repro.experiments.recalibration_overhead import run_drift


def test_drift_stabilisation(run_experiment):
    result = run_experiment(run_drift, phase_tasks=400)
    uncorrected = row(result, configuration="no_recalibration")
    corrected = row(result, configuration="recalibration")
    tuned = row(result, configuration="recalibration_finetune")
    assert uncorrected["phase2_hit_precision"] < 0.995
    assert corrected["phase2_hit_precision"] >= 0.999
    assert corrected["final_tau_lsm"] > 0.9
    assert corrected["recalibration_rounds"] >= 2
    assert tuned["final_neg_score_mean"] < 0.2
    assert tuned["phase2_hit_precision"] >= 0.999
