#!/usr/bin/env python
"""Run the micro-benchmarks and record the results at the repo root.

Executes ``bench_micro.py`` under pytest-benchmark with ``--benchmark-json``,
then augments the JSON with the batch-vs-scalar speedup ratios the project
tracks PR-over-PR plus the ``arena`` fast-path section (arena-batched vs
per-vector throughput, the int8 memory/recall trade-off curve, incremental
admission rebuild counts, and sampled-tracing overhead — all gated by
``check_bench.py``), caps the stored raw samples (the summary statistics
keep full precision), and writes it to ``BENCH_micro.json``.

Usage::

    python benchmarks/run_micro.py [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

from bench_util import cap_samples, slim_machine_info

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_micro.json"

#: speedup name -> (scalar benchmark, batch benchmark)
SPEEDUP_PAIRS = {
    "embed_batch_64": ("test_micro_embed_64_scalar", "test_micro_embed_batch_64"),
    "flat_search_batch_64": (
        "test_micro_flat_search_64_scalar",
        "test_micro_flat_search_batch_64",
    ),
    "handle_batch_64": ("test_micro_handle_64_scalar", "test_micro_handle_batch_64"),
}


def _fleet_engine(arena: "str | None", n: int = 64):
    from repro.core import Query
    from repro.factory import build_asteria_engine, build_remote

    engine = build_asteria_engine(build_remote(seed=1), seed=1, arena=arena)
    for index in range(n):
        engine.handle(
            Query(f"height of mountain number {index}", fact_id=f"F{index}"), 0.0
        )
    queries = [
        Query(f"ok the height of mountain number {index} please", fact_id=f"F{index}")
        for index in range(n)
    ]
    return engine, queries


def bench_arena_throughput(rounds: int = 30) -> dict:
    """Warm-fleet lookup throughput: per-vector scalar vs arena batched.

    The scalar arm is the PR 1 shape — per-element embedding arrays, one
    ``handle`` per query; the batched arm runs the same 64-query fleet
    through ``handle_batch`` over the shared float32 arena. Both are timed
    over the same rounds and reported as queries/sec (best round, the
    standard microbench convention on a jittery host).
    """
    import itertools

    scalar_engine, queries = _fleet_engine(arena=None)
    batched_engine, _ = _fleet_engine(arena="float32")
    counter = itertools.count(1)
    clock = time.perf_counter
    scalar_walls, batched_walls = [], []
    for _ in range(rounds):
        now = 1.0 + 0.01 * next(counter)
        begin = clock()
        for query in queries:
            scalar_engine.handle(query, now)
        scalar_walls.append(clock() - begin)
        now = 1.0 + 0.01 * next(counter)
        begin = clock()
        batched_engine.handle_batch(queries, now)
        batched_walls.append(clock() - begin)
    n = len(queries)
    scalar_rps = n / min(scalar_walls)
    batched_rps = n / min(batched_walls)
    return {
        "fleet_size": n,
        "rounds": rounds,
        "per_vector_scalar_rps": round(scalar_rps, 1),
        "arena_batched_rps": round(batched_rps, 1),
        "batched_speedup_vs_scalar": round(batched_rps / scalar_rps, 2),
    }


def bench_int8_recall(populations=(256, 1024, 4096), n_queries: int = 512) -> dict:
    """Memory/recall trade-off of the int8 tier against float32 ground truth.

    For each population size, the same vectors fill a float32-arena flat
    index and an int8-arena flat index; perturbed copies of stored vectors
    probe both, and recall@1 is the fraction where the int8 top hit matches
    the exact float32 top hit.
    """
    import numpy as np

    from repro.ann import FlatIndex
    from repro.core.arena import build_arena

    dim = 256
    rng = np.random.default_rng(7)
    curve = []
    memory_ratio = None
    for population in populations:
        vectors = rng.standard_normal((population, dim)).astype(np.float32)
        f32 = FlatIndex(dim, arena=build_arena("float32", dim, population))
        int8 = FlatIndex(dim, arena=build_arena("int8", dim, population))
        for key, vector in enumerate(vectors):
            f32.add(key, vector)
            int8.add(key, vector)
        picks = rng.integers(population, size=n_queries)
        noise = 0.35 * rng.standard_normal((n_queries, dim)).astype(np.float32)
        probes = vectors[picks] + noise
        exact = f32.search_batch(probes, 1)
        quant = int8.search_batch(probes, 1)
        agree = sum(
            1 for e, q in zip(exact, quant) if e and q and e[0].key == q[0].key
        )
        memory_ratio = f32.arena.memory_bytes() / int8.arena.memory_bytes()
        curve.append(
            {
                "population": population,
                "recall_at_1": round(agree / n_queries, 4),
                "int8_memory_bytes": int8.arena.memory_bytes(),
                "float32_memory_bytes": f32.arena.memory_bytes(),
            }
        )
    return {
        "n_queries": n_queries,
        "memory_ratio_float32_over_int8": round(memory_ratio, 2),
        "recall_curve": curve,
    }


def bench_incremental_rebuilds(n: int = 2000) -> dict:
    """Full-rebuild counts after an admission-only fill of each index.

    Incremental add must be an O(1)-ish slot operation everywhere: flat and
    PQ never rebuild, HNSW only compacts on tombstone pressure (absent
    here), and IVF's initial training fit is not a rebuild of a trained
    structure. All counts must be zero — check_bench gates on it.
    """
    import numpy as np

    from repro.ann import FlatIndex, HNSWIndex, IVFIndex, PQIndex

    dim = 64
    rng = np.random.default_rng(3)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    indexes = {
        "flat": FlatIndex(dim),
        "ivf": IVFIndex(dim, seed=3),
        "hnsw": HNSWIndex(dim, seed=3),
        "pq": PQIndex(dim, m=8, k=64, train_threshold=256, seed=3),
    }
    for kind, index in indexes.items():
        for key, vector in enumerate(vectors):
            index.add(key, vector)
    return {"admissions": n, **{k: idx.rebuilds for k, idx in indexes.items()}}


def _toggle_floor_pct(queries, make_tracer, chunk: int, rounds: int) -> float:
    """Tracer-attached vs detached overhead on the sequential engine, as the
    ratio of per-chunk-position floors over ``rounds`` same-engine rounds.

    Same methodology as ``run_obs_overhead.py``: one engine per round times
    every chunk twice back to back — tracer detached, then attached — in
    ABBA order alternating per chunk and per round, and the per-position
    minima over rounds are summed per arm. Host jitter is strictly
    additive, so the floors converge where a median of raw per-chunk
    ratios stays ~±1% noisy. Toggling one engine (rather than pairing twin
    builds) avoids a per-process-stable heap-layout bias of the same size.
    """
    from repro.factory import build_asteria_engine, build_remote

    clock = time.perf_counter
    per_off: list[float] | None = None
    per_on: list[float] | None = None
    for parity in range(rounds):
        engine = build_asteria_engine(build_remote(seed=0), seed=0)
        tracer = make_tracer()
        pairs = []
        for index, start in enumerate(range(0, len(queries), chunk)):
            piece = queries[start : start + chunk]
            order = (False, True) if (index + parity) % 2 == 0 else (True, False)
            walls = {}
            for arm in order:
                engine.set_tracer(tracer if arm else None)
                begin = clock()
                for i, query in enumerate(piece, start=start):
                    engine.handle(query, now=i * 0.01)
                walls[arm] = clock() - begin
            pairs.append((walls[False], walls[True]))
        if per_off is None:
            per_off = [off for off, _ in pairs]
            per_on = [on for _, on in pairs]
        else:
            for i, (off, on) in enumerate(pairs):
                per_off[i] = min(per_off[i], off)
                per_on[i] = min(per_on[i], on)
    return (sum(per_on) / sum(per_off) - 1.0) * 100


def bench_sampled_tracing(
    n_queries: int = 3000,
    chunk: int = 100,
    sample_every: int = 100,
    rounds: int = 10,
    procs: int = 3,
) -> dict:
    """Amortized 1-in-N sampled-tracing overhead on the sequential engine.

    Decomposed estimator (mirrors ``run_obs_overhead.py``): the skip path —
    what the unsampled N-1 requests pay — is measured by that harness as
    the median across ``procs`` fresh interpreter layouts, and the sampled
    Nth request's cost is the full-tracing overhead (measured here, one
    toggle arm) divided by N. A direct 1-in-N A/B cannot resolve the ~0.4%
    true effect against this host's ~±0.5pp per-process layout noise; both
    components here are individually convergent.
    """
    import statistics

    import numpy as np

    from repro.core import Query
    from repro.obs import Tracer
    from run_obs_overhead import _skip_arm_in_subprocesses

    rng = np.random.default_rng(0)
    ranks = np.minimum(rng.zipf(1.3, size=n_queries), 256)
    queries = [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]
    skip_vals = _skip_arm_in_subprocesses("sync", procs)
    skip_pct = statistics.median(skip_vals)
    full_pct = _toggle_floor_pct(
        queries, lambda: Tracer(max_spans=256_000), chunk, rounds
    )
    return {
        "sample_every": sample_every,
        "n_queries": n_queries,
        "rounds": rounds,
        "skip_path_overhead_pct": round(skip_pct, 2),
        "skip_path_by_process_pct": [round(v, 2) for v in sorted(skip_vals)],
        "full_tracing_overhead_pct": round(full_pct, 2),
        "overhead_pct": round(skip_pct + full_pct / sample_every, 2),
    }


def arena_section() -> dict:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    return {
        "throughput": bench_arena_throughput(),
        "int8": bench_int8_recall(),
        "incremental_rebuilds": bench_incremental_rebuilds(),
        "sampled_tracing": bench_sampled_tracing(),
    }


def main(argv: list[str]) -> int:
    env_path = str(REPO_ROOT / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_micro.py"),
            f"--benchmark-json={OUTPUT}",
            "-q",
            *argv,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": env_path},
    )
    if result.returncode != 0:
        return result.returncode

    data = json.loads(OUTPUT.read_text())
    means = {
        bench["name"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }
    speedups = {}
    for label, (scalar_name, batch_name) in SPEEDUP_PAIRS.items():
        scalar_mean = means.get(scalar_name)
        batch_mean = means.get(batch_name)
        if scalar_mean and batch_mean:
            speedups[label] = scalar_mean / batch_mean
    data["speedups"] = speedups
    data["arena"] = arena_section()
    slim_machine_info(data)
    cap_samples(data)
    OUTPUT.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"\nwrote {OUTPUT}")
    for label, ratio in speedups.items():
        print(f"  {label}: {ratio:.2f}x")
    arena = data["arena"]
    print(
        f"  arena batched: {arena['throughput']['arena_batched_rps']:.0f} rps "
        f"({arena['throughput']['batched_speedup_vs_scalar']:.2f}x vs per-vector scalar)"
    )
    print(
        f"  int8: {arena['int8']['memory_ratio_float32_over_int8']:.2f}x smaller, "
        f"recall@1 {arena['int8']['recall_curve'][-1]['recall_at_1']:.3f} "
        f"at {arena['int8']['recall_curve'][-1]['population']} vectors"
    )
    print(f"  incremental rebuilds: {arena['incremental_rebuilds']}")
    print(
        f"  sampled tracing (1/{arena['sampled_tracing']['sample_every']}): "
        f"{arena['sampled_tracing']['overhead_pct']:+.2f}% "
        f"(skip {arena['sampled_tracing']['skip_path_overhead_pct']:+.2f}% + "
        f"full {arena['sampled_tracing']['full_tracing_overhead_pct']:+.2f}%/"
        f"{arena['sampled_tracing']['sample_every']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
