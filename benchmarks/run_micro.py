#!/usr/bin/env python
"""Run the micro-benchmarks and record the results at the repo root.

Executes ``bench_micro.py`` under pytest-benchmark with ``--benchmark-json``,
then augments the JSON with the batch-vs-scalar speedup ratios the project
tracks PR-over-PR, caps the stored raw samples (the summary statistics keep
full precision), and writes it to ``BENCH_micro.json``.

Usage::

    python benchmarks/run_micro.py [extra pytest args...]
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from bench_util import cap_samples

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_micro.json"

#: speedup name -> (scalar benchmark, batch benchmark)
SPEEDUP_PAIRS = {
    "embed_batch_64": ("test_micro_embed_64_scalar", "test_micro_embed_batch_64"),
    "flat_search_batch_64": (
        "test_micro_flat_search_64_scalar",
        "test_micro_flat_search_batch_64",
    ),
    "handle_batch_64": ("test_micro_handle_64_scalar", "test_micro_handle_batch_64"),
}


def main(argv: list[str]) -> int:
    env_path = str(REPO_ROOT / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks" / "bench_micro.py"),
            f"--benchmark-json={OUTPUT}",
            "-q",
            *argv,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": env_path},
    )
    if result.returncode != 0:
        return result.returncode

    data = json.loads(OUTPUT.read_text())
    means = {
        bench["name"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }
    speedups = {}
    for label, (scalar_name, batch_name) in SPEEDUP_PAIRS.items():
        scalar_mean = means.get(scalar_name)
        batch_mean = means.get(batch_name)
        if scalar_mean and batch_mean:
            speedups[label] = scalar_mean / batch_mean
    data["speedups"] = speedups
    cap_samples(data)
    OUTPUT.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")

    print(f"\nwrote {OUTPUT}")
    for label, ratio in speedups.items():
        print(f"  {label}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
