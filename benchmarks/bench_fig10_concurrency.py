"""Figure 10: throughput vs request concurrency (Musique, ratio 0.4).

Paper: baselines plateau around 1 req/s (remote-bound); Asteria scales
nearly linearly to 4.89 req/s at rate 8 — 4.5× over exact, 5.7× over
vanilla.
"""

from benchmarks.conftest import row
from repro.experiments import fig10_concurrency


def test_fig10_concurrency(run_experiment):
    result = run_experiment(fig10_concurrency.run, n_tasks=1000)
    asteria_1 = row(result, concurrency=1, system="asteria")
    asteria_8 = row(result, concurrency=8, system="asteria")
    vanilla_8 = row(result, concurrency=8, system="vanilla")
    exact_8 = row(result, concurrency=8, system="exact")
    vanilla_4 = row(result, concurrency=4, system="vanilla")
    # Near-linear scaling for Asteria.
    assert asteria_8["throughput_rps"] > 5.0 * asteria_1["throughput_rps"]
    # Baselines saturate: concurrency 8 buys little over concurrency 4.
    assert vanilla_8["throughput_rps"] < 1.5 * vanilla_4["throughput_rps"]
    # Headline multipliers (paper: 5.7x / 4.5x).
    assert asteria_8["throughput_rps"] > 2.5 * vanilla_8["throughput_rps"]
    assert asteria_8["throughput_rps"] > 2.0 * exact_8["throughput_rps"]
