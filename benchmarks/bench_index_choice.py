"""Extension bench: the ANN stage's recall, measured at the hit rate.

Every true paraphrase the coarse filter fails to surface is a hit no judger
can recover. Graph (HNSW) and inverted-file (IVF) search are effectively
exact at cache scale; default-parameter product quantization compresses past
the τ_sim threshold and collapses the filter, while finer codebooks restore
it — quantisation error against a tight threshold is a cliff, not a slope.
"""

from benchmarks.conftest import row
from repro.experiments import index_study


def test_index_choice(run_experiment):
    result = run_experiment(index_study.run, n_queries=3000)
    flat = row(result, index="flat")
    hnsw = row(result, index="hnsw")
    ivf = row(result, index="ivf")
    pq = row(result, index="pq")
    pq_fine = row(result, index="pq-fine")
    # Graph/IVF keep effectively all of the exact hit rate.
    assert hnsw["hit_rate_vs_flat"] > 0.97
    assert ivf["hit_rate_vs_flat"] > 0.9
    # Default PQ falls off the cliff; fine codebooks climb back.
    assert pq["hit_rate_vs_flat"] < 0.5
    assert pq_fine["hit_rate_vs_flat"] > 0.95
    # Correctness is never the casualty — only hit rate (the judger still
    # validates whatever candidates survive).
    for entry in result.rows:
        assert entry["accuracy"] > 0.99
    assert flat["hit_rate"] > 0.7
