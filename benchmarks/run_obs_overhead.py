#!/usr/bin/env python
"""Observability overhead benchmark; records ``BENCH_obs.json``.

Measures what the unified observability layer costs on the request path, per
serving stack (sequential, thread pool, asyncio, multi-process):

* **tracing off** (the shipped default) — ``engine.tracer is None``, so the
  only instrumentation cost is one attribute load + ``is None`` branch per
  stage. This arm *is* the baseline: the off path and the uninstrumented
  path are the same code.
* **tracing on** — a live :class:`~repro.obs.Tracer` records a request root
  span plus embed/ann_search/judge/remote_fetch/admit stage spans for every
  request (no sampling).
* **tracing sampled** — a :class:`~repro.obs.SamplingTracer` traces 1-in-N
  requests (N = ``SAMPLE_EVERY``); the other N-1 pay only a counter tick
  and a shared no-op span. Metrics stay exact either way — sampling only
  thins spans. Gated at <1% overhead via a decomposed estimator: the
  *skip path* is measured directly (sampler attached, rate set so it never
  fires inside the measurement) as the median across ``SKIP_PROCS`` fresh
  interpreter processes — per-process code/heap layout moves a converged
  sub-1% reading by ~±0.5pp, so one process is one draw, not the answer —
  and the per-sampled-request cost is taken from the full-tracing arm
  divided by N. A direct 1-in-N A/B times a ~0.4% true effect against
  that same ±0.5pp noise — unresolvable — and a control run with an
  allocation-free fake root showed the residual ~+1% readings track the
  *timing structure* (sampling events perturbing GIL-switch alignment
  inside timed chunks), not per-request cost, so the sum of the two
  convergent components is the honest number.

Methodology — same-engine toggled pairs. Benchmark hosts (this one is a
single-vCPU microVM) jitter by double-digit percentages on second-long
timescales, which drowns a sub-10% effect when each arm runs as one long
block. Instead, each round builds **one** engine and times every workload
chunk twice back to back — once with the tracer detached, once attached —
alternating which arm goes first per chunk and per round (ABBA) so
warm-cache and drift effects cancel. Toggling one engine rather than
pairing two identically-built engines matters: two builds in one process
land on near-identical but *different* heap layouts, a per-process-stable
±1% bias that masquerades as tracing overhead. Each chunk yields one
(off, on) wall-time pair taken ~20 ms apart — close enough that host noise
hits both arms alike. Aggregation takes the **minimum over rounds at each
chunk position** for each arm (jitter is strictly additive, so minima
converge on the true floors) and reports the ratio of summed floors, with
the interquartile range of per-position floor ratios as the noise band.
The GIL switch interval is pinned above the chunk walls so thread-pool
preemption alignment cannot leak into the per-chunk ratios (see ``main``). All arms run ``io_pause_scale=0`` (pure
compute): real I/O would only shrink the *relative* overhead, so this is
tracing's worst case.

Usage::

    python benchmarks/run_obs_overhead.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.factory import (  # noqa: E402
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_proc_engine,
    build_remote,
)
from repro.obs import SamplingTracer, Tracer  # noqa: E402
from repro.serving.aio import run_closed_loop  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_obs.json"

N_QUERIES = 4000
POPULATION = 256
ZIPF_S = 1.3
TIME_STEP = 0.01
CHUNK = 100
SEED = 0
ROUNDS = 8
#: Rounds for one skip-arm measurement (converges fast: no sampling events
#: means no scheduling perturbation inside the timed chunks).
SAMPLED_ROUNDS = 12
#: Independent *processes* the skip arm is measured in. Within one process
#: the floors converge, but what the skip path's extra ~500ns actually
#: costs depends on per-process code/heap layout (ASLR, hash seed) — a
#: ±0.5pp systematic that no amount of in-process repetition removes. The
#: gate therefore takes the median across fresh interpreter layouts.
SKIP_PROCS = 5
THREAD_WORKERS = 4
ASYNC_CONCURRENCY = 16
PROC_WORKERS = 2
#: Closed-loop clients for the proc arm: exactly one, so each timed pass is
#: the pure request-path latency ratio (router -> worker -> router, lock
#: step). Higher concurrency on this single-core host makes the router's
#: socket scheduling *bimodal* — a pass settles into either a pipelined or
#: a ping-pong mode, a 2x wall swing for identical work — which the floor
#: estimator latches arbitrarily per arm (measured IQR at concurrency 8:
#: -28%..+143%; at 1: ±1.5pp).
PROC_CONCURRENCY = 1
#: Per-arm overrides for the sampled (skip-path) measurement: a proc round
#: spawns worker processes and pays a socket round-trip per request, so
#: each round is ~10x the other arms' wall — fewer rounds/processes keep
#: the skip arm affordable, and its near-zero effect converges fast.
ARM_SAMPLED_ROUNDS = {"proc": 6}
ARM_SKIP_PROCS = {"proc": 3}
#: Span capacity comfortably above the ~4 spans/request this workload emits.
TRACER_SPANS = 64_000
#: Sampling rate for the sampled arm (1 request in N gets a full trace).
SAMPLE_EVERY = 100


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _chunks(queries):
    for index, start in enumerate(range(0, len(queries), CHUNK)):
        yield index, start, queries[start : start + CHUNK]


def round_sync(
    queries, make_tracer=None, parity=0
) -> tuple[list[tuple[float, float]], int]:
    """One paired round on the sequential engine; returns per-chunk
    (off_wall, on_wall) pairs plus the traced span count.

    Both arms run on the *same* engine object, toggling the tracer between
    the two timings of each chunk. A twin-engine design (one engine per
    arm) looks cleaner but measures the two builds' heap/code layouts along
    with the tracer — a per-process-stable ±1% bias that dwarfs the sampled
    arm's budget. ``parity`` offsets the ABBA order per round so each arm's
    floor includes rounds where it ran second (on the chunk the first arm
    just warmed).
    """
    engine = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
    tracer = (make_tracer or _full_tracer)()
    clock = time.perf_counter
    pairs = []
    for index, start, chunk in _chunks(queries):
        order = (False, True) if (index + parity) % 2 == 0 else (True, False)
        walls = {}
        for arm in order:
            engine.set_tracer(tracer if arm else None)
            begin = clock()
            for i, query in enumerate(chunk, start=start):
                engine.handle(query, now=i * TIME_STEP)
            walls[arm] = clock() - begin
        pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


def round_thread(
    queries, make_tracer=None, parity=0
) -> tuple[list[tuple[float, float]], int]:
    engine = build_concurrent_engine(
        build_remote(seed=SEED), seed=SEED, shards=4, workers=THREAD_WORKERS
    )
    tracer = (make_tracer or _full_tracer)()
    clock = time.perf_counter
    pairs = []
    with engine:
        for index, start, chunk in _chunks(queries):
            order = (False, True) if (index + parity) % 2 == 0 else (True, False)
            walls = {}
            for arm in order:
                # Safe to toggle here: handle_concurrent has returned, so no
                # request is in flight on the pool.
                engine.set_tracer(tracer if arm else None)
                begin = clock()
                engine.handle_concurrent(chunk, now=start * TIME_STEP)
                walls[arm] = clock() - begin
            pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


async def _round_async(
    queries, make_tracer=None, parity=0
) -> tuple[list[tuple[float, float]], int]:
    engine = build_async_engine(build_remote(seed=SEED), seed=SEED, shards=4)
    tracer = (make_tracer or _full_tracer)()
    clock = time.perf_counter
    pairs = []
    for index, start, chunk in _chunks(queries):
        order = (False, True) if (index + parity) % 2 == 0 else (True, False)
        walls = {}
        for arm in order:
            engine.set_tracer(tracer if arm else None)
            begin = clock()
            await run_closed_loop(engine, chunk, ASYNC_CONCURRENCY, time_step=TIME_STEP)
            walls[arm] = clock() - begin
        pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


def round_async(queries, make_tracer=None, parity=0):
    return asyncio.run(_round_async(queries, make_tracer, parity))


async def _round_proc(
    queries, make_tracer=None, parity=0
) -> tuple[list[tuple[float, float]], int]:
    """One paired round on the multi-process engine.

    The tracer toggle exercises the *distributed* path: with the tracer
    attached the router stamps trace context into every request frame, the
    workers record embed/ann_search/judge spans, and completed span records
    ride back on the reply frames to be grafted router-side — so the "on"
    arm prices serialization and grafting, not just span bookkeeping.
    Detached, the wire is byte-identical to the untraced protocol, which is
    exactly the baseline claim being gated. Unsupervised: a heartbeat task
    pinging between timed chunks would add wall noise the floor estimator
    cannot tell from tracer cost.

    Unlike the in-process arms, the proc round **pre-warms to an all-hit
    steady state** before timing. The floor estimator assumes per-chunk
    noise is additive host jitter, but a cold proc cache violates that:
    whether a pass hits or misses depends on admission history across the
    concurrent clients, a ±3x *bimodal* wall swing that the per-position
    minima latch arbitrarily (measured IQR on cold runs: -28%..+143%).
    With every unique query admitted up front, every timed pass does
    identical hit-path work — embed, ANN search, judge on the worker, the
    full round-trip — which is both the steady-state serving path and the
    path the distributed tracer instruments.
    """
    engine = build_proc_engine(
        build_remote(seed=SEED),
        seed=SEED,
        workers=PROC_WORKERS,
        io_pause_scale=0.0,
        supervise=False,
    )
    tracer = (make_tracer or _full_tracer)()
    clock = time.perf_counter
    pairs = []
    async with engine:
        unique = list({query.fact_id: query for query in queries}.values())
        for i, query in enumerate(unique):
            await engine.serve(query, now=i * TIME_STEP)
        for index, start, chunk in _chunks(queries):
            order = (False, True) if (index + parity) % 2 == 0 else (True, False)
            walls = {}
            for arm in order:
                # Safe to toggle here: run_closed_loop drains the engine
                # before returning, so no reply (or span record) from the
                # previous arm is still in flight on the sockets.
                engine.set_tracer(tracer if arm else None)
                begin = clock()
                await run_closed_loop(
                    engine, chunk, PROC_CONCURRENCY, time_step=TIME_STEP
                )
                walls[arm] = clock() - begin
            pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


def round_proc(queries, make_tracer=None, parity=0):
    return asyncio.run(_round_proc(queries, make_tracer, parity))


ARMS = (
    ("sync", round_sync),
    ("thread", round_thread),
    ("async", round_async),
    ("proc", round_proc),
)


def _full_tracer():
    return Tracer(max_spans=TRACER_SPANS)


def _skip_tracer():
    """A sampler whose rate is set so high it records (at most) the very
    first request — every timed request runs the pure skip path: one
    ``sample()`` tick at the root and the ``live`` pre-filter at each
    stage. This isolates the cost the skipped N-1 requests pay."""
    return SamplingTracer(sample_every=10**9, max_spans=TRACER_SPANS)


def measure_arm(round_fn, queries, make_tracer=None, rounds=None) -> dict:
    """Run ``ROUNDS`` paired rounds; aggregate per-chunk-position *minima*.

    Host jitter on this class of machine is strictly additive — a chunk is
    only ever measured slower than its true cost, never faster — so the
    minimum over rounds at each chunk position converges on that
    position's floor for both arms, and the ratio of the summed floors
    estimates the true overhead. A median of raw per-chunk ratios (the
    previous aggregation) cannot resolve a sub-1% effect here: single
    ratios carry double-digit-percent noise, and 200 of them still leave
    the median ~±1%. Ratios of floors can, which is what the <1% sampled
    budget needs. The quartiles of the per-position floor ratios are
    reported as the residual noise band.
    """
    rounds = rounds or ROUNDS
    per_off: list[float] | None = None
    per_on: list[float] | None = None
    spans = 0
    round_fn(queries[: CHUNK * 2])  # warmup: imports, pools, numpy caches
    for index in range(rounds):
        pairs, span_count = round_fn(queries, make_tracer, parity=index % 2)
        if per_off is None:
            per_off = [off for off, _ in pairs]
            per_on = [on for _, on in pairs]
        else:
            for i, (off, on) in enumerate(pairs):
                if off < per_off[i]:
                    per_off[i] = off
                if on < per_on[i]:
                    per_on[i] = on
        spans = max(spans, span_count)
    ratios = sorted(on / off for off, on in zip(per_off, per_on))
    quartiles = statistics.quantiles(ratios, n=4)
    floor_off = sum(per_off)
    floor_on = sum(per_on)
    return {
        "tracing_off": {
            "wall_seconds": round(floor_off, 4),
            "throughput_rps": round(len(queries) / floor_off, 1),
            "spans": 0,
        },
        "tracing_on": {
            "wall_seconds": round(floor_on, 4),
            "throughput_rps": round(len(queries) / floor_on, 1),
            "spans": spans,
        },
        "overhead_pct": round((floor_on / floor_off - 1.0) * 100, 2),
        "overhead_p25_pct": round((quartiles[0] - 1.0) * 100, 2),
        "overhead_p75_pct": round((quartiles[2] - 1.0) * 100, 2),
        "chunk_positions": len(ratios),
        "rounds": rounds,
    }


def _skip_arm_in_subprocesses(label: str, procs: int) -> list[float]:
    """Measure the skip arm ``procs`` times, each in a fresh interpreter.

    What the skip path's extra ~500ns actually costs is a function of
    per-process code/heap layout (ASLR, hash randomization): within one
    process the chunk floors converge, but across processes the converged
    reading moves by ~±0.5pp — the same order as the effect itself. Fresh
    interpreters sample that layout distribution; the caller gates on the
    median.
    """
    import subprocess

    values = []
    for _ in range(procs):
        out = subprocess.run(
            [sys.executable, __file__, "--skip-arm", label],
            capture_output=True,
            text=True,
            check=True,
        )
        values.append(json.loads(out.stdout)["skip_path_overhead_pct"])
    return values


def _skip_arm_main(label: str) -> int:
    """Subprocess entry: measure only the skip arm for one engine and print
    the result as JSON on stdout."""
    sys.setswitchinterval(0.05)
    round_fn = dict(ARMS)[label]
    queries = workload()
    rounds = ARM_SAMPLED_ROUNDS.get(label, SAMPLED_ROUNDS)
    row = measure_arm(round_fn, queries, _skip_tracer, rounds=rounds)
    print(json.dumps({"skip_path_overhead_pct": row["overhead_pct"]}))
    return 0


def main(argv: list[str]) -> int:
    global N_QUERIES, ROUNDS, SAMPLED_ROUNDS
    if "--skip-arm" in argv:
        return _skip_arm_main(argv[argv.index("--skip-arm") + 1])
    # Pin the GIL switch interval well above the chunk walls. At the 5 ms
    # default, a ~16 ms thread-pool chunk absorbs a handful of forced
    # preemptions, and any small perturbation of task boundaries (a sampled
    # request, say) shifts *where* those switches land — a deterministic
    # ±1% per-chunk wall change that survives the floor estimator and
    # masquerades as tracer overhead. Measured directly: the thread arm's
    # sampled reading drops from ~+1.0% to ~+0.3% with this pinned.
    sys.setswitchinterval(0.05)
    quick = "--quick" in argv
    if quick:
        N_QUERIES = 1000
        ROUNDS = 2
        SAMPLED_ROUNDS = 2
    queries = workload()
    results = []
    for label, round_fn in ARMS:
        row = {"engine": label, **measure_arm(round_fn, queries)}
        if quick:
            # Smoke the skip-arm path in-process; quick mode never gates.
            skip_vals = [
                measure_arm(round_fn, queries, _skip_tracer, rounds=SAMPLED_ROUNDS)[
                    "overhead_pct"
                ]
            ]
        else:
            skip_vals = _skip_arm_in_subprocesses(
                label, ARM_SKIP_PROCS.get(label, SKIP_PROCS)
            )
        skip_pct = round(statistics.median(skip_vals), 2)
        # Amortized sampled overhead: N-1 requests pay the skip path, the
        # Nth pays (approximately) the full-tracing cost — taken from the
        # full arm above rather than re-measured, because a direct 1-in-N
        # A/B cannot resolve a ~0.4% effect against this host's ~±0.5pp
        # per-run noise (see module docstring).
        amortized = skip_pct + row["overhead_pct"] / SAMPLE_EVERY
        row["sampled"] = {
            "sample_every": SAMPLE_EVERY,
            "overhead_pct": round(amortized, 2),
            "skip_path_overhead_pct": skip_pct,
            "skip_path_by_process_pct": [round(v, 2) for v in sorted(skip_vals)],
            "full_tracing_share_pct": round(row["overhead_pct"] / SAMPLE_EVERY, 3),
            "rounds_per_process": ARM_SAMPLED_ROUNDS.get(label, SAMPLED_ROUNDS),
        }
        results.append(row)
        print(
            f"{label:<7} off={row['tracing_off']['wall_seconds']:.4f}s "
            f"on={row['tracing_on']['wall_seconds']:.4f}s "
            f"overhead={row['overhead_pct']:+.2f}% "
            f"(floor ratio, IQR {row['overhead_p25_pct']:+.2f}%"
            f"..{row['overhead_p75_pct']:+.2f}%, "
            f"{row['tracing_on']['spans']} spans) "
            f"sampled={row['sampled']['overhead_pct']:+.2f}% "
            f"(skip median {row['sampled']['skip_path_overhead_pct']:+.2f}% "
            f"of {row['sampled']['skip_path_by_process_pct']} "
            f"+ full/{SAMPLE_EVERY})"
        )
    worst = max(row["overhead_pct"] for row in results)
    worst_sampled = max(row["sampled"]["overhead_pct"] for row in results)
    headline = {
        "tracing_off_is_baseline": True,
        "methodology": (
            "same-engine tracer toggle, ABBA chunks, ratio of per-position "
            "floors; sampled = median-across-processes skip path "
            "+ full-tracing cost / N"
        ),
        "overhead_pct_by_engine": {
            row["engine"]: row["overhead_pct"] for row in results
        },
        "max_overhead_pct": worst,
        "overhead_budget_pct": 10.0,
        "within_budget": worst < 10.0,
        "sample_every": SAMPLE_EVERY,
        "sampled_overhead_pct_by_engine": {
            row["engine"]: row["sampled"]["overhead_pct"] for row in results
        },
        "max_sampled_overhead_pct": worst_sampled,
        "sampled_overhead_budget_pct": 1.0,
        "sampled_within_budget": worst_sampled < 1.0,
    }
    data = {
        "config": {
            "n_queries": N_QUERIES,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "chunk": CHUNK,
            "seed": SEED,
            "rounds": ROUNDS,
            "thread_workers": THREAD_WORKERS,
            "async_concurrency": ASYNC_CONCURRENCY,
            "proc_workers": PROC_WORKERS,
            "proc_concurrency": PROC_CONCURRENCY,
            "io_pause_scale": 0.0,
            "tracer_max_spans": TRACER_SPANS,
        },
        "results": results,
        "headline": headline,
    }
    # Quick runs must not clobber the committed artifact with smoke-grade
    # numbers (check_bench.py gates on the real file's headline).
    out_path = OUTPUT.with_suffix(".quick.json") if quick else OUTPUT
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    print(f"  headline: {headline}")
    # Quick mode is a CI smoke (structure + the pipeline runs), not a
    # measurement — 20 chunk pairs on a shared runner cannot resolve a
    # sub-10% effect, so only full runs gate on the budgets.
    ok = headline["within_budget"] and headline["sampled_within_budget"]
    return 0 if quick or ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
