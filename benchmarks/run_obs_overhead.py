#!/usr/bin/env python
"""Observability overhead benchmark; records ``BENCH_obs.json``.

Measures what the unified observability layer costs on the request path, per
serving stack (sequential, thread pool, asyncio):

* **tracing off** (the shipped default) — ``engine.tracer is None``, so the
  only instrumentation cost is one attribute load + ``is None`` branch per
  stage. This arm *is* the baseline: the off path and the uninstrumented
  path are the same code.
* **tracing on** — a live :class:`~repro.obs.Tracer` records a request root
  span plus embed/ann_search/judge/remote_fetch/admit stage spans for every
  request (no sampling).

Methodology — chunk-interleaved paired runs. Benchmark hosts (this one is a
single-vCPU microVM) jitter by double-digit percentages on second-long
timescales, which drowns a sub-10% effect when each arm runs as one long
block. Instead, each round builds one *off* engine and one *on* engine with
identical seeds and feeds both the same workload chunk by chunk: time the
chunk on one engine, then immediately on the other, alternating which arm
goes first per chunk (ABBA) so warm-cache and drift effects cancel. Each
chunk yields one on/off wall-time ratio taken ~20 ms apart — close enough
that host noise hits both arms alike — and the headline overhead is the
**median of all pooled chunk ratios** across rounds, with the interquartile
range reported as the noise band. All arms run ``io_pause_scale=0`` (pure
compute): real I/O would only shrink the *relative* overhead, so this is
tracing's worst case.

Usage::

    python benchmarks/run_obs_overhead.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.factory import (  # noqa: E402
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.obs import Tracer  # noqa: E402
from repro.serving.aio import run_closed_loop  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_obs.json"

N_QUERIES = 4000
POPULATION = 256
ZIPF_S = 1.3
TIME_STEP = 0.01
CHUNK = 100
SEED = 0
ROUNDS = 5
THREAD_WORKERS = 4
ASYNC_CONCURRENCY = 16
#: Span capacity comfortably above the ~4 spans/request this workload emits.
TRACER_SPANS = 64_000


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _chunks(queries):
    for index, start in enumerate(range(0, len(queries), CHUNK)):
        yield index, start, queries[start : start + CHUNK]


def round_sync(queries) -> tuple[list[tuple[float, float]], int]:
    """One paired round on the sequential engine; returns per-chunk
    (off_wall, on_wall) pairs plus the traced span count."""
    engines = {}
    for arm in (False, True):
        engines[arm] = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
    tracer = Tracer(max_spans=TRACER_SPANS)
    engines[True].set_tracer(tracer)
    clock = time.perf_counter
    pairs = []
    for index, start, chunk in _chunks(queries):
        order = (False, True) if index % 2 == 0 else (True, False)
        walls = {}
        for arm in order:
            engine = engines[arm]
            begin = clock()
            for i, query in enumerate(chunk, start=start):
                engine.handle(query, now=i * TIME_STEP)
            walls[arm] = clock() - begin
        pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


def round_thread(queries) -> tuple[list[tuple[float, float]], int]:
    engines = {}
    for arm in (False, True):
        engines[arm] = build_concurrent_engine(
            build_remote(seed=SEED), seed=SEED, shards=4, workers=THREAD_WORKERS
        )
    tracer = Tracer(max_spans=TRACER_SPANS)
    engines[True].set_tracer(tracer)
    clock = time.perf_counter
    pairs = []
    with engines[False], engines[True]:
        for index, start, chunk in _chunks(queries):
            order = (False, True) if index % 2 == 0 else (True, False)
            walls = {}
            for arm in order:
                engine = engines[arm]
                begin = clock()
                engine.handle_concurrent(chunk, now=start * TIME_STEP)
                walls[arm] = clock() - begin
            pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


async def _round_async(queries) -> tuple[list[tuple[float, float]], int]:
    engines = {}
    for arm in (False, True):
        engines[arm] = build_async_engine(build_remote(seed=SEED), seed=SEED, shards=4)
    tracer = Tracer(max_spans=TRACER_SPANS)
    engines[True].set_tracer(tracer)
    clock = time.perf_counter
    pairs = []
    for index, start, chunk in _chunks(queries):
        order = (False, True) if index % 2 == 0 else (True, False)
        walls = {}
        for arm in order:
            engine = engines[arm]
            begin = clock()
            await run_closed_loop(engine, chunk, ASYNC_CONCURRENCY, time_step=TIME_STEP)
            walls[arm] = clock() - begin
        pairs.append((walls[False], walls[True]))
    return pairs, len(tracer.spans())


def round_async(queries):
    return asyncio.run(_round_async(queries))


ARMS = (
    ("sync", round_sync),
    ("thread", round_thread),
    ("async", round_async),
)


def measure_arm(round_fn, queries) -> dict:
    """Run ``ROUNDS`` paired rounds; pool every chunk ratio and summarise."""
    ratios: list[float] = []
    wall_off: list[float] = []
    wall_on: list[float] = []
    spans = 0
    round_fn(queries[: CHUNK * 2])  # warmup: imports, pools, numpy caches
    for _ in range(ROUNDS):
        pairs, span_count = round_fn(queries)
        ratios.extend(on / off for off, on in pairs)
        wall_off.append(sum(off for off, _ in pairs))
        wall_on.append(sum(on for _, on in pairs))
        spans = max(spans, span_count)
    ratios.sort()
    quartiles = statistics.quantiles(ratios, n=4)
    return {
        "tracing_off": {
            "wall_seconds": round(min(wall_off), 4),
            "throughput_rps": round(len(queries) / min(wall_off), 1),
            "spans": 0,
        },
        "tracing_on": {
            "wall_seconds": round(min(wall_on), 4),
            "throughput_rps": round(len(queries) / min(wall_on), 1),
            "spans": spans,
        },
        "overhead_pct": round((statistics.median(ratios) - 1.0) * 100, 2),
        "overhead_p25_pct": round((quartiles[0] - 1.0) * 100, 2),
        "overhead_p75_pct": round((quartiles[2] - 1.0) * 100, 2),
        "chunk_pairs": len(ratios),
        "rounds": ROUNDS,
    }


def main(argv: list[str]) -> int:
    global N_QUERIES, ROUNDS
    quick = "--quick" in argv
    if quick:
        N_QUERIES = 1000
        ROUNDS = 2
    queries = workload()
    results = []
    for label, round_fn in ARMS:
        row = {"engine": label, **measure_arm(round_fn, queries)}
        results.append(row)
        print(
            f"{label:<7} off={row['tracing_off']['wall_seconds']:.4f}s "
            f"on={row['tracing_on']['wall_seconds']:.4f}s "
            f"overhead={row['overhead_pct']:+.2f}% "
            f"(pooled chunk median, IQR {row['overhead_p25_pct']:+.2f}%"
            f"..{row['overhead_p75_pct']:+.2f}%, "
            f"{row['tracing_on']['spans']} spans)"
        )
    worst = max(row["overhead_pct"] for row in results)
    headline = {
        "tracing_off_is_baseline": True,
        "methodology": "chunk-interleaved paired engines; median of pooled ratios",
        "overhead_pct_by_engine": {
            row["engine"]: row["overhead_pct"] for row in results
        },
        "max_overhead_pct": worst,
        "overhead_budget_pct": 10.0,
        "within_budget": worst < 10.0,
    }
    data = {
        "config": {
            "n_queries": N_QUERIES,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "chunk": CHUNK,
            "seed": SEED,
            "rounds": ROUNDS,
            "thread_workers": THREAD_WORKERS,
            "async_concurrency": ASYNC_CONCURRENCY,
            "io_pause_scale": 0.0,
            "tracer_max_spans": TRACER_SPANS,
        },
        "results": results,
        "headline": headline,
    }
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(f"  headline: {headline}")
    # Quick mode is a CI smoke (structure + the pipeline runs), not a
    # measurement — 20 chunk pairs on a shared runner cannot resolve a
    # sub-10% effect, so only full runs gate on the budget.
    return 0 if quick or headline["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
