"""Table 4: normalised throughput with and without the API rate limit.

Paper: Asteria is 1.5× faster than vanilla without a rate limit (latency
savings alone) and 4.16× with one — rate-limit avoidance adds ~2.8×.
"""

from benchmarks.conftest import row
from repro.experiments import table4_ratelimit


def test_table4_ratelimit(run_experiment):
    result = run_experiment(table4_ratelimit.run, n_tasks=800)
    without = row(result, rate_limit="without", system="asteria")
    with_limit = row(result, rate_limit="with", system="asteria")
    # Latency-only gain in the paper's 1.5x neighbourhood.
    assert 1.15 < without["normalized"] < 2.0
    # The limit multiplies the advantage (paper: 4.16x).
    assert with_limit["normalized"] > 2.5
    assert with_limit["normalized"] > 1.5 * without["normalized"]
