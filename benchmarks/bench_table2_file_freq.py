"""Table 2: SWE-bench file access frequencies on the sqlfluff repository.

Paper: 1.0, 0.28, 0.22, 0.14, 0.10, 0.08, 0.04, 0.04, 0.04 for the nine
head files.
"""

from repro.experiments import table2_file_freq


def test_table2_file_freq(run_experiment):
    result = run_experiment(table2_file_freq.run, n_issues=1000)
    for file_row in result.rows:
        assert abs(file_row["measured_freq"] - file_row["paper_freq"]) < 0.06
