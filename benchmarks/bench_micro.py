"""Micro-benchmarks: wall-clock performance of the hot substrates.

Unlike the experiment benches (virtual-time macro runs, rounds=1), these
measure the library's real compute cost per operation — the numbers a user
sizing a deployment of the *implementation* cares about.
"""

import numpy as np
import pytest

from repro.ann import FlatIndex, HNSWIndex
from repro.core import Query
from repro.embedding import HashingEmbedder
from repro.factory import build_asteria_engine, build_remote
from repro.judger import JudgeRequest, SimulatedJudger


@pytest.fixture(scope="module")
def unit_vectors():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((2000, 256)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


def test_micro_embed_one_query(benchmark):
    embedder = HashingEmbedder(seed=1)
    embedder.embed("warm the token vector cache once")
    benchmark(embedder.embed, "ok so what is the height of mount everest")


def test_micro_flat_search_2k(benchmark, unit_vectors):
    index = FlatIndex(256)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    query = unit_vectors[7]
    benchmark(index.search, query, 4)


def test_micro_hnsw_search_2k(benchmark, unit_vectors):
    index = HNSWIndex(256, seed=1, ef_search=32)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    query = unit_vectors[7]
    benchmark(index.search, query, 4)


def test_micro_hnsw_insert(benchmark, unit_vectors):
    index = HNSWIndex(256, seed=1)
    for key, vector in enumerate(unit_vectors[:500]):
        index.add(key, vector)
    counter = iter(range(10_000, 1_000_000))

    def insert():
        index.add(next(counter), unit_vectors[777])

    benchmark(insert)


def test_micro_judger_verdict(benchmark):
    judger = SimulatedJudger(seed=1)
    request = JudgeRequest(
        query_text="ok what is the height of everest",
        cached_query="height of mount everest",
        query_truth="F",
        cached_truth="F",
    )
    benchmark(judger.judge, request)


def test_micro_engine_hit_path(benchmark):
    """The full two-stage lookup on a warm cache (the common case)."""
    import itertools

    engine = build_asteria_engine(build_remote(), seed=1)
    engine.handle(Query("height of mount everest", fact_id="F"), 0.0)
    query = Query("ok the height of mount everest please", fact_id="F")
    counter = itertools.count(1)

    def hit():
        engine.handle(query, 1.0 + 0.01 * next(counter))

    benchmark(hit)


def test_micro_engine_miss_insert_evict_path(benchmark):
    """Miss + admission + eviction churn on a capacity-bound cache."""
    from repro.core import AsteriaConfig

    engine = build_asteria_engine(
        build_remote(), AsteriaConfig(capacity_items=64), seed=1
    )
    counter = iter(range(1_000_000))

    def miss():
        index = next(counter)
        engine.handle(
            Query(f"distinct topic number {index} kangaroo", fact_id=f"T{index}"),
            float(index),
        )

    benchmark(miss)
