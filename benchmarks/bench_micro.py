"""Micro-benchmarks: wall-clock performance of the hot substrates.

Unlike the experiment benches (virtual-time macro runs, rounds=1), these
measure the library's real compute cost per operation — the numbers a user
sizing a deployment of the *implementation* cares about.
"""

import numpy as np
import pytest

from repro.ann import FlatIndex, HNSWIndex
from repro.core import Query
from repro.embedding import HashingEmbedder
from repro.factory import build_asteria_engine, build_remote
from repro.judger import JudgeRequest, SimulatedJudger


@pytest.fixture(scope="module")
def unit_vectors():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((2000, 256)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


def test_micro_embed_one_query(benchmark):
    embedder = HashingEmbedder(seed=1)
    embedder.embed("warm the token vector cache once")
    benchmark(embedder.embed, "ok so what is the height of mount everest")


def test_micro_flat_search_2k(benchmark, unit_vectors):
    index = FlatIndex(256)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    query = unit_vectors[7]
    benchmark(index.search, query, 4)


def test_micro_hnsw_search_2k(benchmark, unit_vectors):
    index = HNSWIndex(256, seed=1, ef_search=32)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    query = unit_vectors[7]
    benchmark(index.search, query, 4)


def test_micro_hnsw_insert(benchmark, unit_vectors):
    index = HNSWIndex(256, seed=1)
    for key, vector in enumerate(unit_vectors[:500]):
        index.add(key, vector)
    counter = iter(range(10_000, 1_000_000))

    def insert():
        index.add(next(counter), unit_vectors[777])

    benchmark(insert)


def test_micro_embed_64_scalar(benchmark):
    """Baseline for the batch speedup: 64 scalar embed calls."""
    embedder = HashingEmbedder(seed=1)
    texts = [f"what is recorded fact number {i} of the knowledge base" for i in range(64)]
    embedder.embed_batch(texts)  # warm token directions + feature memo

    def scalar():
        for text in texts:
            embedder.embed(text)

    benchmark(scalar)


def test_micro_embed_batch_64(benchmark):
    embedder = HashingEmbedder(seed=1)
    texts = [f"what is recorded fact number {i} of the knowledge base" for i in range(64)]
    embedder.embed_batch(texts)
    benchmark(embedder.embed_batch, texts)


def test_micro_flat_search_64_scalar(benchmark, unit_vectors):
    """Baseline for the batch speedup: 64 scalar searches over 2k vectors."""
    index = FlatIndex(256)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    queries = unit_vectors[:64]

    def scalar():
        for query in queries:
            index.search(query, 4)

    benchmark(scalar)


def test_micro_flat_search_batch_64(benchmark, unit_vectors):
    index = FlatIndex(256)
    for key, vector in enumerate(unit_vectors):
        index.add(key, vector)
    queries = unit_vectors[:64]
    benchmark(index.search_batch, queries, 4)


def test_micro_searchhit_alloc(benchmark):
    """SearchHit is slotted; this tracks per-hit allocation cost."""
    from repro.ann.base import SearchHit

    def alloc():
        return [SearchHit(score=0.5, key=i) for i in range(256)]

    benchmark(alloc)


def test_micro_judger_verdict(benchmark):
    judger = SimulatedJudger(seed=1)
    request = JudgeRequest(
        query_text="ok what is the height of everest",
        cached_query="height of mount everest",
        query_truth="F",
        cached_truth="F",
    )
    benchmark(judger.judge, request)


def test_micro_engine_hit_path(benchmark):
    """The full two-stage lookup on a warm cache (the common case)."""
    import itertools

    engine = build_asteria_engine(build_remote(), seed=1)
    engine.handle(Query("height of mount everest", fact_id="F"), 0.0)
    query = Query("ok the height of mount everest please", fact_id="F")
    counter = itertools.count(1)

    def hit():
        engine.handle(query, 1.0 + 0.01 * next(counter))

    benchmark(hit)


def _warm_engine_with_fleet(n: int = 64):
    engine = build_asteria_engine(build_remote(), seed=1)
    for index in range(n):
        engine.handle(
            Query(f"height of mountain number {index}", fact_id=f"F{index}"), 0.0
        )
    queries = [
        Query(f"ok the height of mountain number {index} please", fact_id=f"F{index}")
        for index in range(n)
    ]
    return engine, queries


def test_micro_handle_64_scalar(benchmark):
    """Baseline for the batch speedup: a 64-agent fleet served one by one."""
    import itertools

    engine, queries = _warm_engine_with_fleet()
    counter = itertools.count(1)

    def scalar():
        now = 1.0 + 0.01 * next(counter)
        for query in queries:
            engine.handle(query, now)

    benchmark(scalar)


def test_micro_handle_batch_64(benchmark):
    """The same 64-agent fleet through the shared embed/ANN fast path."""
    import itertools

    engine, queries = _warm_engine_with_fleet()
    counter = itertools.count(1)

    benchmark(lambda: engine.handle_batch(queries, 1.0 + 0.01 * next(counter)))


def test_micro_engine_miss_insert_evict_path(benchmark):
    """Miss + admission + eviction churn on a capacity-bound cache."""
    from repro.core import AsteriaConfig

    engine = build_asteria_engine(
        build_remote(), AsteriaConfig(capacity_items=64), seed=1
    )
    counter = iter(range(1_000_000))

    def miss():
        index = next(counter)
        engine.handle(
            Query(f"distinct topic number {index} kangaroo", fact_id=f"T{index}"),
            float(index),
        )

    benchmark(miss)
