#!/usr/bin/env python
"""Chaos benchmark: availability under injected faults; ``BENCH_chaos.json``.

Drives the thread-pool and asyncio serving stacks through a Zipf-skewed
workload while a seeded :class:`~repro.network.faults.FaultInjector` fails
30 % of remote fetches (2/3 transient errors, 1/3 timeouts) and blacks out
the backend entirely for a 4-simulated-second window. Each stack runs
twice — with stale serving on (stale-while-revalidate from the
last-known-good store) and off — so the artefact shows what the
degradation path buys: the headline compares served fractions and p99
wall latency across the two modes, and asserts that no fault ever escaped
``handle()`` / ``serve()`` as an unhandled exception.

The ``proc_worker_kill`` section measures the *process*-failure mode: a
seeded SIGKILL lands on a shard worker mid-run. Supervised (the default),
the kill costs at most a degraded window — stale hits and direct remote
fetches until the respawn — and served fraction stays ≥ 0.9. Unsupervised
with fault domains off (the pre-supervision behaviour), the same kill
fails the whole engine. A third arm SIGKILLs a ``--persist``-backed worker
and counts the hits its journal-restored successor still answers, against
a cold respawn of the same workload.

Usage::

    python benchmarks/run_chaos.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import AsteriaConfig, Query  # noqa: E402
from repro.core.resilience import CircuitBreaker, ResilienceManager  # noqa: E402
from repro.factory import (  # noqa: E402
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.network import FaultInjector  # noqa: E402
from repro.serving.aio import run_closed_loop  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_chaos.json"

N_QUERIES = 1600
POPULATION = 128
ZIPF_S = 1.3
TIME_STEP = 0.01
SEED = 0
IO_SCALE = 0.001
WORKERS = 8
CONCURRENCY = 16
DEFAULT_TTL = 2.0  # short TTL so blackout-era lookups actually go stale
FAULT_RATE = 0.3  # split 2/3 transient errors + 1/3 timeouts
BLACKOUT = (6.0, 10.0)  # simulated seconds; ~25% of the run's time span


def workload(n_queries: int) -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=n_queries), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def build_chaos(stale_serve: bool):
    """One (fault_injector, resilience) pair; fresh per run for determinism."""
    injector = FaultInjector(
        error_rate=FAULT_RATE * 2.0 / 3.0,
        timeout_rate=FAULT_RATE / 3.0,
        blackouts=(BLACKOUT,),
        seed=SEED,
    )
    resilience = ResilienceManager(
        breaker=CircuitBreaker(window=16, min_samples=8, open_seconds=0.5),
        negative_ttl=0.3,
        stale_serve=stale_serve,
        seed=SEED,
    )
    return injector, resilience


def degraded_counters(metrics) -> dict:
    return {
        "stale_hits": metrics.stale_hits,
        "breaker_open_rejects": metrics.breaker_open_rejects,
        "negative_cache_hits": metrics.negative_cache_hits,
        "background_refreshes": metrics.background_refreshes,
        "fetch_failures": metrics.fetch_failures,
        "breaker_opens": None,  # filled by caller from the engine's breaker
    }


def run_threads(queries, stale_serve: bool) -> dict:
    injector, resilience = build_chaos(stale_serve)
    engine = build_concurrent_engine(
        build_remote(seed=SEED, fault_injector=injector),
        config=AsteriaConfig(default_ttl=DEFAULT_TTL),
        seed=SEED,
        shards=4,
        workers=WORKERS,
        io_pause_scale=IO_SCALE,
        resilience=resilience,
    )
    unhandled = 0
    try:
        with engine:
            report = engine.run_closed_loop(queries, time_step=TIME_STEP)
    except Exception:  # any escape from handle() is the bug we're gating on
        unhandled = 1
        raise
    row = report.summary()
    counters = degraded_counters(engine.metrics)
    counters["breaker_opens"] = resilience.breaker.opens
    row.update(
        engine="threads",
        stale_serve=stale_serve,
        unhandled_exceptions=unhandled,
        total_faults=injector.total_faults,
        p99_sim=round(engine.metrics.total_latency.percentile(99), 5),
        p99_degraded_sim=round(
            engine.metrics.degraded_latency.percentile(99), 5
        ),
        **counters,
    )
    return row


def run_async(queries, stale_serve: bool) -> dict:
    injector, resilience = build_chaos(stale_serve)
    engine = build_async_engine(
        build_remote(seed=SEED, fault_injector=injector),
        config=AsteriaConfig(default_ttl=DEFAULT_TTL),
        seed=SEED,
        shards=4,
        io_pause_scale=IO_SCALE,
        resilience=resilience,
    )
    unhandled = 0
    try:
        report = asyncio.run(
            run_closed_loop(engine, queries, CONCURRENCY, time_step=TIME_STEP)
        )
    except Exception:
        unhandled = 1
        raise
    row = report.summary()
    counters = degraded_counters(engine.metrics)
    counters["breaker_opens"] = resilience.breaker.opens
    row.update(
        engine="async",
        stale_serve=stale_serve,
        unhandled_exceptions=unhandled,
        total_faults=injector.total_faults,
        p99_sim=round(engine.metrics.total_latency.percentile(99), 5),
        p99_degraded_sim=round(
            engine.metrics.degraded_latency.percentile(99), 5
        ),
        **counters,
    )
    return row


def run_proc_worker_kill(n_queries: int) -> dict:
    """SIGKILL a shard worker mid-run, with and without supervision."""
    import os
    import signal
    import tempfile

    from repro.factory import build_proc_engine
    from repro.serving.aio import run_open_loop
    from repro.serving.proc import ProcFaultInjector

    n = max(60, n_queries // 4)
    queries = workload(n)
    kill_at = max(1, n // 3)
    rate = 200.0
    knobs = dict(
        seed=SEED,
        workers=2,
        io_pause_scale=IO_SCALE,
        supervisor_ping_interval=0.1,
        supervisor_ping_timeout=1.0,
        supervisor_backoff_base=0.02,
        supervisor_backoff_max=0.1,
        shard_open_seconds=0.25,
    )

    # -- supervised: the kill costs at most a degraded window -----------------
    faults = ProcFaultInjector(kill_shard=0, kill_at=kill_at, seed=SEED)
    engine = build_proc_engine(build_remote(seed=SEED), proc_faults=faults, **knobs)
    escaped = False

    async def drive_supervised():
        async with engine:
            report = await run_open_loop(
                engine, queries, rate=rate, time_step=TIME_STEP
            )
            # Quick runs finish before the ~1-2 s respawn does; let it land
            # so worker_restarts reflects the recovery.
            await engine.pool.supervisor.settle(timeout=30.0)
            return report

    try:
        report = asyncio.run(drive_supervised())
    except Exception:  # a WorkerError escaping serve() is the gated bug
        escaped = True
        raise
    supervised = {
        "requests": report.requests,
        "served_fraction": report.served_fraction,
        "worker_kills": faults.kills,
        "worker_restarts": engine.metrics.worker_restarts,
        "shard_down_fetches": engine.metrics.shard_down_fetches,
        "stale_hits": engine.metrics.stale_hits,
        "failed": engine.metrics.failed_requests,
        "worker_error_escaped": escaped,
    }

    # -- unsupervised + no fault domains: the same kill fails the engine ------
    faults = ProcFaultInjector(kill_shard=0, kill_at=kill_at, seed=SEED)
    bare = build_proc_engine(
        build_remote(seed=SEED),
        proc_faults=faults,
        supervise=False,
        fault_domains=False,
        **knobs,
    )

    async def drive_unsupervised():
        try:
            await run_open_loop(bare, queries, rate=rate, time_step=TIME_STEP)
            return False
        except Exception:  # noqa: BLE001 - the expected engine failure
            return True
        finally:
            try:
                await asyncio.wait_for(bare.aclose(), timeout=15.0)
            except Exception:  # noqa: BLE001 - half the pool is dead
                pass

    engine_failed = asyncio.run(drive_unsupervised())
    bare.pool.close()  # reap anything aclose could not reach

    # -- warm recovery: a persisted shard's successor answers from the journal
    def recovery_arm(persist_dir):
        arm_engine = build_proc_engine(
            build_remote(seed=SEED),
            seed=SEED,
            workers=1,
            io_pause_scale=IO_SCALE,
            persist_dir=persist_dir,
            fsync_every=1,
            supervisor_ping_interval=0.05,
            supervisor_ping_timeout=1.0,
            supervisor_backoff_base=0.01,
            supervisor_backoff_max=0.05,
            shard_open_seconds=0.1,
        )
        prime = [
            Query(f"stress fact number {i} of the universe", fact_id=f"F{i}")
            for i in range(24)
        ]

        async def drive():
            async with arm_engine:
                for i, query in enumerate(prime):
                    await arm_engine.serve(query, now=i * TIME_STEP)
                primed_hits = arm_engine.metrics.hits
                os.kill(arm_engine.pool.processes[0].pid, signal.SIGKILL)
                for _ in range(600):
                    if arm_engine.metrics.worker_restarts >= 1:
                        break
                    await asyncio.sleep(0.05)
                for i, query in enumerate(prime):
                    await arm_engine.serve(query, now=1.0 + i * TIME_STEP)
                return arm_engine.metrics.hits - primed_hits

        return asyncio.run(drive())

    with tempfile.TemporaryDirectory() as tmpdir:
        warm_hits = recovery_arm(str(pathlib.Path(tmpdir) / "chaos_store"))
    cold_hits = recovery_arm(None)

    return {
        "n_queries": n,
        "kill_at": kill_at,
        "rate": rate,
        "supervised": supervised,
        "unsupervised": {"engine_failed": engine_failed},
        "warm_recovery": {"warm_hits": warm_hits, "cold_hits": cold_hits},
    }


def main(argv: list[str]) -> int:
    n_queries = N_QUERIES // 4 if "--quick" in argv else N_QUERIES
    queries = workload(n_queries)
    results = []
    for runner, label in ((run_threads, "threads"), (run_async, "async")):
        for stale_serve in (True, False):
            row = runner(queries, stale_serve)
            results.append(row)
            print(
                f"{label:<7} stale={'on ' if stale_serve else 'off'} "
                f"served={row['served_fraction']:.4f} "
                f"stale_served={row['stale_served']:<4} "
                f"failed={row['failed']:<4} "
                f"breaker_opens={row['breaker_opens']} "
                f"p99_sim={row['p99_sim'] * 1000:.1f}ms"
            )

    proc_kill = run_proc_worker_kill(n_queries)
    supervised = proc_kill["supervised"]
    print(
        f"proc    kill@{proc_kill['kill_at']:<4} "
        f"served={supervised['served_fraction']:.4f} "
        f"restarts={supervised['worker_restarts']} "
        f"shard_down_fetches={supervised['shard_down_fetches']} "
        f"unsupervised_failed={proc_kill['unsupervised']['engine_failed']} "
        f"warm_hits={proc_kill['warm_recovery']['warm_hits']} "
        f"cold_hits={proc_kill['warm_recovery']['cold_hits']}"
    )

    def pick(engine, stale_serve):
        for row in results:
            if row["engine"] == engine and row["stale_serve"] is stale_serve:
                return row
        return None

    headline = {
        "fault_rate": FAULT_RATE,
        "blackout": list(BLACKOUT),
        "threads_stale_on_served_fraction": pick("threads", True)[
            "served_fraction"
        ],
        "threads_stale_off_served_fraction": pick("threads", False)[
            "served_fraction"
        ],
        "async_stale_on_served_fraction": pick("async", True)["served_fraction"],
        "async_stale_off_served_fraction": pick("async", False)[
            "served_fraction"
        ],
        "threads_stale_on_p99_sim": pick("threads", True)["p99_sim"],
        "threads_stale_off_p99_sim": pick("threads", False)["p99_sim"],
        "async_stale_on_p99_sim": pick("async", True)["p99_sim"],
        "async_stale_off_p99_sim": pick("async", False)["p99_sim"],
        "async_stale_on_p99_wall": pick("async", True)["p99_wall"],
        "unhandled_exceptions": sum(r["unhandled_exceptions"] for r in results),
        "proc_kill_supervised_served_fraction": supervised["served_fraction"],
        "proc_kill_worker_restarts": supervised["worker_restarts"],
        "proc_kill_unsupervised_engine_failed": proc_kill["unsupervised"][
            "engine_failed"
        ],
        "proc_warm_recovery_hits": proc_kill["warm_recovery"]["warm_hits"],
        "proc_cold_recovery_hits": proc_kill["warm_recovery"]["cold_hits"],
        "worker_error_escaped": supervised["worker_error_escaped"],
    }
    data = {
        "config": {
            "n_queries": n_queries,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "seed": SEED,
            "io_pause_scale": IO_SCALE,
            "workers": WORKERS,
            "concurrency": CONCURRENCY,
            "default_ttl": DEFAULT_TTL,
            "fault_rate": FAULT_RATE,
            "blackout": list(BLACKOUT),
            "breaker": {
                "window": 16,
                "min_samples": 8,
                "open_seconds": 0.5,
            },
            "negative_ttl": 0.3,
        },
        "results": results,
        "proc_worker_kill": proc_kill,
        "headline": headline,
    }
    OUTPUT.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(f"  headline: {headline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
