#!/usr/bin/env python
"""Span-driven stage breakdown per serving engine; records ``BENCH_breakdown.json``.

The tracer-level counterpart of Fig. 11's latency breakdown: every serving
stack (sequential, thread pool, asyncio, multi-process) serves the same
Zipf workload with a full :class:`~repro.obs.Tracer` attached, and each
engine's per-stage wall time comes from ``tracer.stage_summary()`` — the
same spans a production trace export would show, not ad-hoc timers. For the
proc engine the embed / ann_search / judge stages run in *worker
processes*; their spans arrive piggybacked on reply frames and are grafted
onto the router's timeline (clock-offset re-based), so this artefact also
demonstrates that the distributed trace path yields a coherent per-stage
accounting across the process boundary.

Requests run with ``judge_spin`` ~200us of real CPU per judged candidate so
stage walls dominate scheduler noise (the same trick the concurrency
benchmark uses): the point is the *shape* of the breakdown — which stages
the request spends its time in, and that the four engines agree — not
absolute throughput.

The ``parity`` section is the cross-process correctness check: a
``workers=1`` proc engine replays the sequential engine's decisions exactly
(same hash routing, ``batch_window=0`` means size-1 wire batches), so its
grafted stage *counts* must equal the sync engine's span counts stage for
stage, and per-stage mean walls must agree within a loose band (both sides
run the same calibrated spin; the band absorbs per-process clock and cache
noise). ``check_bench.py`` gates on ``parity.counts_match``.

Usage::

    python benchmarks/run_breakdown.py [--quick]
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import Query  # noqa: E402
from repro.factory import (  # noqa: E402
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_proc_engine,
    build_remote,
)
from repro.obs import Tracer  # noqa: E402
from repro.serving.aio import run_closed_loop  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_breakdown.json"

N_QUERIES = 2000
POPULATION = 256
ZIPF_S = 1.3
TIME_STEP = 0.01
SEED = 0
#: Real CPU burned per judged candidate (seconds) — makes the judge stage
#: wall dominate interpreter noise so the breakdown shape is stable.
JUDGE_SPIN = 0.0002
THREAD_WORKERS = 4
ASYNC_CONCURRENCY = 16
PROC_WORKERS = 2
PROC_CONCURRENCY = 8
TRACER_SPANS = 200_000

#: Stages every engine must account for (the request root plus the three
#: pipeline stages of the paper's breakdown). remote_fetch / admit appear
#: too but their counts are workload-dependent (miss-path only).
CORE_STAGES = ("request", "embed", "ann_search", "judge")


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(ZIPF_S, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _summarize(tracer: Tracer, wall: float, requests: int) -> dict:
    """One engine's result row from its tracer's stage summary."""
    stages = {}
    summary = tracer.stage_summary()
    request_total = summary.get("request", {}).get("total", 0.0)
    for name, row in sorted(summary.items()):
        stages[name] = {
            "count": row["count"],
            "total_s": round(row["total"], 4),
            "mean_us": round(row["mean"] * 1e6, 1),
            # Fig. 11 shape: what slice of request wall this stage is. The
            # request root covers queueing + socket time the leaf stages
            # don't, so shares sum below 1.
            "share_of_request": (
                round(row["total"] / request_total, 4) if request_total else None
            ),
        }
    return {
        "requests": requests,
        "wall_seconds": round(wall, 4),
        "spans": len(tracer.spans()),
        "stages": stages,
    }


def run_sync(queries) -> dict:
    import time

    engine = build_asteria_engine(
        build_remote(seed=SEED), seed=SEED, judge_spin=JUDGE_SPIN
    )
    tracer = Tracer(max_spans=TRACER_SPANS)
    engine.set_tracer(tracer)
    begin = time.perf_counter()
    for i, query in enumerate(queries):
        engine.handle(query, now=i * TIME_STEP)
    wall = time.perf_counter() - begin
    return _summarize(tracer, wall, len(queries))


def run_thread(queries) -> dict:
    import time

    engine = build_concurrent_engine(
        build_remote(seed=SEED),
        seed=SEED,
        shards=4,
        workers=THREAD_WORKERS,
        judge_spin=JUDGE_SPIN,
    )
    tracer = Tracer(max_spans=TRACER_SPANS)
    engine.set_tracer(tracer)
    with engine:
        begin = time.perf_counter()
        engine.handle_concurrent(queries, now=0.0)
        wall = time.perf_counter() - begin
    return _summarize(tracer, wall, len(queries))


async def _run_async(queries) -> dict:
    import time

    engine = build_async_engine(
        build_remote(seed=SEED), seed=SEED, shards=4, judge_spin=JUDGE_SPIN
    )
    tracer = Tracer(max_spans=TRACER_SPANS)
    engine.set_tracer(tracer)
    begin = time.perf_counter()
    await run_closed_loop(engine, queries, ASYNC_CONCURRENCY, time_step=TIME_STEP)
    wall = time.perf_counter() - begin
    return _summarize(tracer, wall, len(queries))


async def _run_proc(queries, workers: int, concurrency: int) -> dict:
    import time

    engine = build_proc_engine(
        build_remote(seed=SEED),
        seed=SEED,
        workers=workers,
        io_pause_scale=0.0,
        judge_spin=JUDGE_SPIN,
        supervise=False,
    )
    tracer = Tracer(max_spans=TRACER_SPANS)
    engine.set_tracer(tracer)
    async with engine:
        begin = time.perf_counter()
        await run_closed_loop(engine, queries, concurrency, time_step=TIME_STEP)
        wall = time.perf_counter() - begin
    return _summarize(tracer, wall, len(queries))


def run_async_engine(queries) -> dict:
    return asyncio.run(_run_async(queries))


def run_proc(queries, workers=None, concurrency=None) -> dict:
    return asyncio.run(
        _run_proc(
            queries,
            workers if workers is not None else PROC_WORKERS,
            concurrency if concurrency is not None else PROC_CONCURRENCY,
        )
    )


def parity_check(queries) -> dict:
    """workers=1 proc vs sync: grafted stage counts must match exactly.

    Concurrency 1 replays the sequential request order, ``batch_window=0``
    makes every wire batch size 1, and the crc32 shard hash with one shard
    routes everything to the single worker — so the worker-side pipeline
    makes exactly the decisions the in-process engine makes, and every
    stage span the sync engine records has a grafted counterpart. Mean
    stage walls agree loosely (same calibrated spin, different process).
    """
    sync_row = run_sync(queries)
    proc_row = run_proc(queries, workers=1, concurrency=1)
    stages = {}
    counts_match = True
    for name in sorted(set(sync_row["stages"]) | set(proc_row["stages"])):
        sync_stage = sync_row["stages"].get(name)
        proc_stage = proc_row["stages"].get(name)
        match = (
            sync_stage is not None
            and proc_stage is not None
            and sync_stage["count"] == proc_stage["count"]
        )
        counts_match = counts_match and match
        ratio = None
        if sync_stage and proc_stage and sync_stage["total_s"] > 0:
            ratio = round(proc_stage["total_s"] / sync_stage["total_s"], 3)
        stages[name] = {
            "sync_count": sync_stage["count"] if sync_stage else 0,
            "proc_count": proc_stage["count"] if proc_stage else 0,
            "counts_match": match,
            "proc_over_sync_total": ratio,
        }
    # The spin-dominated judge stage is where a wall comparison means
    # something; socket-bound stages have no sync counterpart cost.
    judge_ratio = stages.get("judge", {}).get("proc_over_sync_total")
    return {
        "workers": 1,
        "concurrency": 1,
        "stages": stages,
        "counts_match": counts_match,
        "judge_total_ratio": judge_ratio,
        "judge_ratio_ok": judge_ratio is not None and 0.5 <= judge_ratio <= 2.0,
    }


def main(argv: list[str]) -> int:
    global N_QUERIES
    quick = "--quick" in argv
    if quick:
        N_QUERIES = 400
    queries = workload()
    results = {}
    for label, runner in (
        ("sync", run_sync),
        ("thread", run_thread),
        ("async", run_async_engine),
        ("proc", run_proc),
    ):
        row = runner(queries)
        results[label] = row
        top = ", ".join(
            f"{name}={row['stages'][name]['total_s']:.3f}s"
            f"/{row['stages'][name]['count']}"
            for name in CORE_STAGES
            if name in row["stages"]
        )
        print(f"{label:<7} wall={row['wall_seconds']:.3f}s {top}")
    parity = parity_check(queries)
    print(
        f"parity  counts_match={parity['counts_match']} "
        f"judge_total_ratio={parity['judge_total_ratio']}"
    )
    missing = {
        label: [name for name in CORE_STAGES if name not in row["stages"]]
        for label, row in results.items()
    }
    headline = {
        "engines": sorted(results),
        "core_stages": list(CORE_STAGES),
        "all_core_stages_present": not any(missing.values()),
        "missing_stages": {k: v for k, v in missing.items() if v},
        "parity_counts_match": parity["counts_match"],
        "judge_total_ratio": parity["judge_total_ratio"],
        "judge_share_by_engine": {
            label: row["stages"].get("judge", {}).get("share_of_request")
            for label, row in results.items()
        },
    }
    data = {
        "config": {
            "n_queries": N_QUERIES,
            "population": POPULATION,
            "zipf_s": ZIPF_S,
            "time_step": TIME_STEP,
            "seed": SEED,
            "judge_spin": JUDGE_SPIN,
            "thread_workers": THREAD_WORKERS,
            "async_concurrency": ASYNC_CONCURRENCY,
            "proc_workers": PROC_WORKERS,
            "proc_concurrency": PROC_CONCURRENCY,
            "io_pause_scale": 0.0,
        },
        "results": results,
        "parity": parity,
        "headline": headline,
    }
    out_path = OUTPUT.with_suffix(".quick.json") if quick else OUTPUT
    out_path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    ok = headline["all_core_stages_present"] and parity["counts_match"]
    return 0 if quick or ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
