"""Figure 12: external call volume and retry ratio under the 100-QPM limit.

Paper: vanilla ~1300 calls with a 25 % retry ratio; Asteria 103 calls (a
92 % reduction) with 0.5 % retries.
"""

from benchmarks.conftest import row
from repro.experiments import fig12_api_calls


def test_fig12_api_calls(run_experiment):
    result = run_experiment(fig12_api_calls.run, n_tasks=1300)
    vanilla = row(result, system="vanilla")
    asteria = row(result, system="asteria")
    assert vanilla["api_calls"] == 1300
    assert asteria["call_reduction"] > 0.85  # paper: 92% fewer calls
    assert asteria["retry_ratio"] < 0.02
    assert vanilla["retry_ratio"] > 0.15
