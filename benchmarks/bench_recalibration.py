"""§6.7 deep dive: recalibration overhead.

Paper: periodic offline recalibration (5 samples/minute) costs about 2 %
throughput while holding the precision target under drift.
"""

from benchmarks.conftest import row
from repro.experiments import recalibration_overhead


def test_recalibration_overhead(run_experiment):
    result = run_experiment(recalibration_overhead.run, n_tasks=800)
    off = row(result, recalibration="off")
    on = row(result, recalibration="on")
    assert on["rounds"] >= 2
    overhead = 1.0 - on["throughput_rps"] / off["throughput_rps"]
    assert overhead < 0.05  # paper: ~2%
    assert on["accuracy"] >= 0.99
    assert on["gt_fetches"] > 0  # ground-truth sampling actually happened
