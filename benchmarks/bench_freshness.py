"""Freshness ablation: the §4.3 TTL aging mechanism, quantified.

Volatile facts change their authoritative answers over simulated time, so a
hit on an old entry serves stale knowledge. The paper's TTL bounds that;
scaling TTL by the staticity score (the metadata the paper already collects)
bounds it far tighter per refetch dollar.
"""

from benchmarks.conftest import row
from repro.experiments import freshness_study


def test_freshness_ablation(run_experiment):
    result = run_experiment(freshness_study.run, n_queries=1500)
    no_ttl = row(result, aging="no_ttl")
    fixed = row(result, aging="fixed_ttl")
    scaled = row(result, aging="staticity_ttl")
    # TTL aging reduces staleness; staticity-aware aging reduces it most.
    assert no_ttl["stale_serve_rate"] > fixed["stale_serve_rate"]
    assert scaled["stale_serve_rate"] < 0.6 * fixed["stale_serve_rate"]
    # The cost: more refetches — but bounded (< 3x the fixed-TTL volume).
    assert scaled["api_calls"] < 3 * fixed["api_calls"]
    # Hit rates stay useful in every configuration.
    assert scaled["hit_rate"] > 0.7
