"""Riding a trend wave: bursty traffic, LCFU eviction, and prefetching.

Synthesises a 10-minute Google-Trends-style trace — background Zipf traffic
plus four event-driven topic bursts with correlated sympathy surges (the
Figure 3 pattern) — and serves it open-loop through Asteria with predictive
prefetching enabled, versus the uncached baseline. Prints the minute-by-
minute arrival rate next to each system's hit rate and latency.

Run:  python examples/trend_burst_prefetch.py
"""

from repro.core import AsteriaConfig
from repro.factory import build_asteria_engine, build_remote, build_vanilla_engine
from repro.sim import Simulator
from repro.workloads import TrendWorkload, build_dataset, run_open_loop

DURATION = 600.0
# Deliberately small: with room for the whole universe nothing is ever
# evicted and prefetching has no work to do. At 12% the cache is contended,
# so predicting the follow-up query in a trend session pays.
CACHE_RATIO = 0.12


def main() -> None:
    dataset = build_dataset("hotpotqa", seed=1)
    workload = TrendWorkload(
        dataset, duration=DURATION, base_rate=1.0, seed=4,
        followup_probability=0.5,
    )
    arrivals = workload.timed_queries()

    print("Trend trace: arrival rate per minute (x = 1 query/s):")
    for minute in range(int(DURATION // 60)):
        count = sum(1 for at, _ in arrivals if 60 * minute <= at < 60 * (minute + 1))
        rate = count / 60.0
        print(f"  min {minute:>2d} | {'x' * int(rate * 10):<70s} {rate:5.2f}/s")
    for event in workload.events:
        print(
            f"  event at t={event.start:5.0f}s: topic '{event.topic}' "
            f"(+{event.magnitude:.0f}/s, related: "
            f"{', '.join(t for t, _ in event.related) or 'none'})"
        )

    print("\nServing the trace:")
    for name in ("vanilla", "asteria"):
        remote = build_remote(dataset.universe, rate_limit_per_minute=100, seed=3)
        if name == "vanilla":
            engine = build_vanilla_engine(remote)
        else:
            engine = build_asteria_engine(
                remote,
                AsteriaConfig(
                    capacity_items=dataset.capacity_for(CACHE_RATIO),
                    prefetch_enabled=True,
                    prefetch_confidence=0.3,
                ),
                seed=5,
            )
        sim = Simulator()
        responses = run_open_loop(sim, engine, arrivals)
        latencies = sorted(response.latency for response in responses)
        mean = sum(latencies) / len(latencies)
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        extra = ""
        if name == "asteria":
            extra = (
                f", prefetches={engine.metrics.prefetches_issued}"
                f" (confirmed {engine.metrics.prefetch_hits})"
            )
        print(
            f"  {name:<8s} served {len(responses)} queries in {sim.now:6.1f}s | "
            f"hit={engine.metrics.hit_rate:6.1%} mean={mean:7.2f}s "
            f"p99={p99:8.2f}s api_calls={remote.calls}{extra}"
        )
    print(
        "\nThe uncached agent drowns in the bursts (rate-limit queueing); "
        "Asteria absorbs them from the cache."
    )


if __name__ == "__main__":
    main()
