"""Fleet deployment: many agent nodes sharing one regional semantic cache.

Extension scenario beyond the paper's single-cluster deployment: each agent
node keeps a tiny private L1 semantic cache, and all nodes in the region
share an L2 one intra-metro hop away. One node's remote fetch warms the
whole fleet; without sharing, every node pays its own cold start and
dilutes the same capacity budget.

Run:  python examples/fleet_shared_cache.py
"""

from repro.core import AsteriaConfig
from repro.factory import build_remote, build_semantic_cache, build_tiered_engine
from repro.workloads import SkewedWorkload, build_dataset

N_NODES = 4
N_QUERIES = 800
L1_CAPACITY = 8
L2_CAPACITY = 150


def run_fleet(shared: bool, dataset):
    remote = build_remote(dataset.universe, seed=3)
    nodes = []
    shared_l2 = (
        build_semantic_cache(AsteriaConfig(capacity_items=L2_CAPACITY), seed=5)
        if shared
        else None
    )
    for index in range(N_NODES):
        # NB: `shared_l2 or ...` would be wrong — an *empty* cache is falsy.
        l2 = shared_l2
        if l2 is None:
            l2 = build_semantic_cache(
                AsteriaConfig(capacity_items=L2_CAPACITY // N_NODES), seed=5
            )
        nodes.append(
            build_tiered_engine(
                remote, l2, l1_capacity=L1_CAPACITY, seed=5, name=f"node{index}"
            )
        )
    workload = SkewedWorkload(dataset, seed=2)
    now = 0.0
    for index, query in enumerate(workload.queries(N_QUERIES)):
        response = nodes[index % N_NODES].handle(query, now)
        now += response.latency + 0.05
    return remote, nodes


def main() -> None:
    dataset = build_dataset("musique", seed=1)
    print(
        f"{N_NODES} agent nodes, round-robin over {N_QUERIES} skewed queries; "
        f"L1={L1_CAPACITY} entries/node, L2 budget={L2_CAPACITY} entries total.\n"
    )
    for shared in (False, True):
        remote, nodes = run_fleet(shared, dataset)
        hits = sum(node.metrics.hits for node in nodes)
        total = sum(node.metrics.requests for node in nodes)
        l1_hits = sum(node.l1_hits for node in nodes)
        l2_hits = sum(node.l2_hits for node in nodes)
        label = "shared L2" if shared else "isolated "
        print(
            f"  {label}: fleet hit rate {hits / total:6.1%} "
            f"(L1 {l1_hits / total:5.1%} + L2 {l2_hits / total:5.1%}) | "
            f"remote calls {remote.calls:4d} | "
            f"API spend ${remote.cost_meter.api_cost:.3f}"
        )
        for node in nodes:
            print(
                f"      {node.name}: {node.metrics.requests:3d} reqs, "
                f"hit {node.metrics.hit_rate:6.1%} "
                f"(own L1 {node.l1_hits:3d}, from L2 {node.l2_hits:3d})"
            )
    print(
        "\nThe shared tier converts one node's misses into every node's "
        "hits; the isolated fleet re-fetches the same head facts per node."
    )


if __name__ == "__main__":
    main()
