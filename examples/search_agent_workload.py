"""A Search-R1-style agent on a skewed search workload (the Figure 7 setup).

Replays the same 400-question Zipf(0.99) Musique-like workload through the
paper's three systems — Agent_vanilla, Agent_exact, and Agent_Asteria — with
8 concurrent clients against a 100-queries/minute rate-limited search API,
then prints the side-by-side metrics and one full agent trajectory in the
paper's tag format.

Run:  python examples/search_agent_workload.py
"""

from repro.agent import SearchAgent
from repro.core import AsteriaConfig
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_remote,
    build_vanilla_engine,
)
from repro.sim import Simulator
from repro.workloads import SkewedWorkload, build_dataset, run_task_concurrent

N_TASKS = 400
CACHE_RATIO = 0.4
CONCURRENCY = 8


def run_system(name: str, dataset) -> dict:
    remote = build_remote(dataset.universe, rate_limit_per_minute=100, seed=3)
    capacity = dataset.capacity_for(CACHE_RATIO)
    if name == "vanilla":
        engine = build_vanilla_engine(remote)
    elif name == "exact":
        engine = build_exact_engine(remote, capacity_items=capacity)
    else:
        engine = build_asteria_engine(
            remote, AsteriaConfig(capacity_items=capacity), seed=5
        )
    sim = Simulator()
    agent = SearchAgent(engine, answer_step=False)
    workload = SkewedWorkload(dataset, seed=2)
    stats = run_task_concurrent(
        sim, agent, workload.single_hop_tasks(N_TASKS), concurrency=CONCURRENCY
    )
    return {
        "system": name,
        "throughput": stats.tasks / sim.now,
        "hit_rate": engine.metrics.hit_rate,
        "mean_latency": stats.mean_latency,
        "p99_latency": stats.percentile_latency(99),
        "api_calls": remote.calls,
        "api_cost": remote.cost_meter.api_cost,
        "retry_ratio": remote.retry_ratio,
    }


def main() -> None:
    dataset = build_dataset("musique", seed=1)
    print(
        f"Workload: {N_TASKS} questions over {len(dataset.universe)} facts "
        f"(Zipf 0.99), cache ratio {CACHE_RATIO}, {CONCURRENCY} clients, "
        "100 QPM search API.\n"
    )
    header = (
        f"{'system':<9} {'req/s':>7} {'hit':>6} {'mean s':>7} {'p99 s':>7} "
        f"{'calls':>6} {'cost $':>7} {'retry':>6}"
    )
    print(header)
    print("-" * len(header))
    for system in ("vanilla", "exact", "asteria"):
        row = run_system(system, dataset)
        print(
            f"{row['system']:<9} {row['throughput']:>7.2f} "
            f"{row['hit_rate']:>6.1%} {row['mean_latency']:>7.2f} "
            f"{row['p99_latency']:>7.2f} {row['api_calls']:>6d} "
            f"{row['api_cost']:>7.3f} {row['retry_ratio']:>6.1%}"
        )

    # Show one think-act-observe trajectory in the paper's format.
    print("\nSample trajectory (Figure 1b format):")
    remote = build_remote(dataset.universe, seed=3)
    engine = build_asteria_engine(remote, seed=5)
    agent = SearchAgent(engine, record_trajectory=True)
    task = SkewedWorkload(dataset, seed=9).tasks(1)[0]
    result = agent.run_task(task)
    for line in result.trajectory.splitlines():
        print(f"  {line[:110]}")


if __name__ == "__main__":
    main()
