"""GPU co-location: agent LLM + semantic judger on one device (§4.4).

Compares three serving placements on the same cached search workload:

* dedicated  — agent on GPU 0, judger on its own GPU 1 (2 GPUs);
* colocated  — one GPU split 80/20 via MPS with the priority-aware
  admission controller protecting the agent's latency (1 GPU);
* vanilla    — no cache at all (1 GPU), for scale.

Prints throughput, p99, judger queueing behaviour, and the resulting cost
efficiency (Table 7 + the Table 5 trade-off).

Run:  python examples/colocation_serving.py
"""

from repro.experiments.table7_colocation import run_serving_experiment
from repro.network.cost import PRICE_H100_PER_HOUR


def main() -> None:
    print("Serving 400 Musique questions, cache ratio 0.6, 8 clients:\n")
    rows = []
    for mode in ("vanilla", "dedicated", "colocated"):
        outcome = run_serving_experiment(
            serving_mode=mode, n_tasks=400, rate_limit_per_minute=None
        )
        rows.append(outcome)
        print(
            f"  {mode:<10s} gpus={outcome['gpus']} "
            f"thpt={outcome['throughput_rps']:6.2f} req/s "
            f"p99={outcome['p99_latency_s'] * 1000:7.0f} ms "
            f"hit={outcome['hit_rate']:6.1%} "
            f"judger batches={outcome['judger_dispatched']:4d} "
            f"(deferred {outcome['judger_deferred']})"
        )

    dedicated = next(r for r in rows if r["serving_mode"] == "dedicated")
    colocated = next(r for r in rows if r["serving_mode"] == "colocated")
    retention = colocated["throughput_rps"] / dedicated["throughput_rps"]
    p99_delta = (
        colocated["p99_latency_s"] / dedicated["p99_latency_s"] - 1.0
    )
    print(
        f"\nCo-location retains {retention:.1%} of dedicated throughput "
        f"with {p99_delta:+.1%} p99 — on half the GPUs."
    )
    hourly = PRICE_H100_PER_HOUR
    print(
        f"At ${hourly:.2f}/GPU-hour that is "
        f"{colocated['throughput_rps'] / (1 * hourly):,.1f} vs "
        f"{dedicated['throughput_rps'] / (2 * hourly):,.1f} req/s per "
        "dollar-hour (co-located vs dedicated)."
    )


if __name__ == "__main__":
    main()
