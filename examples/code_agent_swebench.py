"""A coding agent resolving SWE-bench-style issues (the Figure 9 setup).

Issues against the synthetic sqlfluff repository repeatedly read the same
core files (Table 2's skew: the linter core in every task, a few heavy
modules, a long tail of rule files). The semantic cache recognises the same
file requested under different phrasings; the exact-match cache does not.

Run:  python examples/code_agent_swebench.py
"""

from repro.agent import CodeAgent
from repro.core import AsteriaConfig
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_remote,
    build_vanilla_engine,
)
from repro.sim import Simulator
from repro.workloads import SWEBenchWorkload, run_task_concurrent

N_ISSUES = 200
CACHE_RATIO = 0.6


def main() -> None:
    workload = SWEBenchWorkload(seed=6)
    issues = workload.issues(N_ISSUES)
    frequencies = workload.empirical_file_frequencies(issues)
    print(f"Repository: {len(workload.universe)} files; {N_ISSUES} issues.")
    print("Most-needed files (Table 2 pattern):")
    for path, frequency in sorted(frequencies.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {frequency:5.1%}  {path}")

    print("\nFile-fetch phrasings for the same core file:")
    sample_issue_queries = [
        query.text
        for issue in issues[:12]
        for query in issue.queries
        if query.fact_id == "src/sqlfluff/core/linter/linter.py"
    ]
    for text in dict.fromkeys(sample_issue_queries):
        print(f"  <file> {text} </file>")

    print("\nResolving all issues (8 concurrent agents, 300 ms RAG service):")
    capacity = max(1, int(CACHE_RATIO * len(workload.universe)))
    for name in ("vanilla", "exact", "asteria"):
        remote = build_remote(
            workload.universe, latency=0.3, cost_per_call=0.0, seed=3,
            name="rag-service",
        )
        if name == "vanilla":
            engine = build_vanilla_engine(remote)
        elif name == "exact":
            engine = build_exact_engine(remote, capacity_items=capacity)
        else:
            engine = build_asteria_engine(
                remote, AsteriaConfig(capacity_items=capacity), seed=5
            )
        sim = Simulator()
        agent = CodeAgent(engine, answer_step=False)
        fresh_issues = SWEBenchWorkload(seed=6).issues(N_ISSUES)
        stats = run_task_concurrent(sim, agent, fresh_issues, concurrency=8)
        print(
            f"  {name:<8s} {stats.tasks / sim.now:5.2f} issues/s | "
            f"file-fetch hit rate {engine.metrics.hit_rate:6.1%} | "
            f"remote reads {remote.calls:4d} | "
            f"mean issue latency {stats.mean_latency:5.2f}s"
        )


if __name__ == "__main__":
    main()
