"""Quickstart: semantic knowledge caching in a dozen lines.

Builds the full Asteria stack (hashing embedder, flat ANN index, simulated
semantic judger, LCFU cache, cross-region remote service), then shows the
three behaviours that define the system:

1. a cold miss fetches from the remote region (~0.4 s simulated);
2. a *paraphrase* of the same question is a semantic cache hit (~0.05 s);
3. a lookalike query with a different meaning is caught by the judger and
   correctly fetched fresh.

Run:  python examples/quickstart.py
"""

from repro import Query, build_asteria_engine, build_remote


def show(label: str, response) -> None:
    source = "CACHE " if response.served_from_cache else "REMOTE"
    print(
        f"  [{source}] {label:<46s} latency={response.latency * 1000:7.1f} ms"
        f"  (candidates={response.lookup.candidates}, judged={response.lookup.judged})"
    )


def main() -> None:
    remote = build_remote()  # U(0.3, 0.5) s cross-region search API, $5/1k
    engine = build_asteria_engine(remote, seed=7)

    print("1. Cold miss — the knowledge is not cached yet:")
    show(
        "who painted the mona lisa",
        engine.handle(Query("who painted the mona lisa", fact_id="mona-lisa"), 0.0),
    )

    print("\n2. Paraphrases of the same question — semantic hits:")
    for text in (
        "tell me who painted the mona lisa",
        "ok so i need to find who painted mona lisa",
        "the mona lisa was painted by whom",
    ):
        show(text, engine.handle(Query(text, fact_id="mona-lisa"), 1.0))

    print("\n3. A lookalike with different meaning — the judger rejects it:")
    show(
        "who stole the mona lisa in 1911",
        engine.handle(Query("who stole the mona lisa in 1911", fact_id="theft"), 2.0),
    )

    metrics = engine.metrics
    print(
        f"\nSummary: {metrics.requests} requests, hit rate "
        f"{metrics.hit_rate:.0%}, {remote.calls} remote calls "
        f"(${remote.cost_meter.api_cost:.4f} in API fees), accuracy "
        f"{metrics.accuracy:.0%}."
    )


if __name__ == "__main__":
    main()
