"""Tests for the staticity scorer."""

import pytest

from repro.judger import StaticityScorer


class TestStaticityScorer:
    def test_annotated_score_with_zero_noise_is_exact(self):
        scorer = StaticityScorer(noise=0)
        assert scorer.score("anything", true_staticity=7) == 7

    def test_noise_stays_within_bounds(self):
        scorer = StaticityScorer(seed=1, noise=1)
        for i in range(100):
            score = scorer.score(f"query {i}", true_staticity=5)
            assert 4 <= score <= 6

    def test_noise_clipped_to_scale(self):
        scorer = StaticityScorer(seed=1, noise=3)
        for i in range(100):
            assert 1 <= scorer.score(f"q{i}", true_staticity=10) <= 10
            assert 1 <= scorer.score(f"p{i}", true_staticity=1) <= 10

    def test_deterministic_per_text(self):
        scorer = StaticityScorer(seed=1)
        assert scorer.score("x", 5) == scorer.score("x", 5)

    def test_keyword_fallback_ephemeral(self):
        scorer = StaticityScorer()
        assert scorer.score("weather in paris today") <= 3

    def test_keyword_fallback_stable(self):
        scorer = StaticityScorer()
        assert scorer.score("who painted the sistine chapel history") >= 8

    def test_keyword_fallback_default(self):
        scorer = StaticityScorer(default=6)
        assert scorer.score("random gibberish zxqw") == 6

    def test_invalid_true_staticity_rejected(self):
        with pytest.raises(ValueError):
            StaticityScorer().score("x", true_staticity=11)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            StaticityScorer(noise=-1)
        with pytest.raises(ValueError):
            StaticityScorer(default=0)
