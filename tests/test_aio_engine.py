"""Tests for the asyncio serving front-end (engine + load generators)."""

import asyncio

import numpy as np
import pytest

from repro.core import AsteriaConfig, Query
from repro.factory import (
    build_asteria_engine,
    build_async_engine,
    build_remote,
)
from repro.serving.aio import (
    STATUS_DEADLINE,
    STATUS_OK,
    STATUS_OVERLOADED,
    AsyncAsteriaEngine,
    run_closed_loop,
    run_open_loop,
)


def zipf_queries(n: int = 300, population: int = 64, seed: int = 0) -> list[Query]:
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(1.3, size=n), population)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


class TestGuards:
    def test_rejects_prefetch_and_recalibration(self):
        with pytest.raises(ValueError, match="prefetch"):
            build_async_engine(
                build_remote(), AsteriaConfig(prefetch_enabled=True)
            )
        with pytest.raises(ValueError, match="prefetch"):
            build_async_engine(
                build_remote(), AsteriaConfig(recalibration_enabled=True)
            )

    def test_rejects_bad_parameters(self):
        engine = build_asteria_engine(build_remote())
        with pytest.raises(ValueError):
            AsyncAsteriaEngine(engine, max_inflight=0)
        with pytest.raises(ValueError):
            AsyncAsteriaEngine(engine, default_deadline=0.0)
        with pytest.raises(ValueError):
            AsyncAsteriaEngine(engine, follower_timeout=-1.0)
        with pytest.raises(ValueError):
            AsyncAsteriaEngine(engine, hedge_percentile=0.0)
        with pytest.raises(ValueError):
            AsyncAsteriaEngine(engine, hedge_min_samples=0)


class TestSequentialParity:
    def test_serve_matches_sequential_engine(self):
        """One-at-a-time async serving replays the sequential engine."""
        config = AsteriaConfig()
        sequential = build_asteria_engine(build_remote(seed=7), config, seed=3)
        aio = build_async_engine(
            build_remote(seed=7), config, seed=3, shards=1
        )

        async def scenario():
            for i, query in enumerate(zipf_queries(150)):
                now = 0.3 * i
                a = sequential.handle(query, now)
                outcome = await aio.serve(query, now)
                assert outcome.status == STATUS_OK
                b = outcome.response
                assert a.lookup.status == b.lookup.status, f"diverged at {i}"
                assert a.result == b.result
                assert a.latency == pytest.approx(b.latency)

        asyncio.run(scenario())
        assert sequential.metrics.summary() == aio.metrics.summary()


class TestBackpressure:
    def test_overload_rejects_beyond_depth_without_corrupting_stats(self):
        engine = build_async_engine(
            build_remote(latency=0.1),
            shards=2,
            io_pause_scale=0.2,  # each miss pends ~20 ms on the loop
            max_inflight=2,
        )
        queries = [
            Query(f"distinct overload topic {i} heron", fact_id=f"O{i}")
            for i in range(10)
        ]

        async def scenario():
            outcomes = await asyncio.gather(
                *(engine.serve(query, 0.0) for query in queries)
            )
            await engine.drain()
            return outcomes

        outcomes = asyncio.run(scenario())
        accepted = [o for o in outcomes if o.ok]
        rejected = [o for o in outcomes if o.status == STATUS_OVERLOADED]
        assert len(accepted) == 2
        assert len(rejected) == 8
        for outcome in rejected:
            assert outcome.response is None
        metrics = engine.metrics
        # Rejected requests never touch the cache or the hit/miss counters.
        assert metrics.overloaded == 8
        assert metrics.requests == 2
        assert metrics.hits + metrics.misses == 2
        assert engine.cache.stats.inserts == 2
        assert engine.singleflight.leaders == 2

    def test_capacity_frees_as_requests_complete(self):
        engine = build_async_engine(
            build_remote(latency=0.05), shards=2, io_pause_scale=0.1, max_inflight=4
        )
        queries = [
            Query(f"distinct refill topic {i} plover", fact_id=f"R{i}")
            for i in range(12)
        ]

        async def scenario():
            # Closed loop at the admission depth: never rejects.
            return await run_closed_loop(engine, queries, concurrency=4)

        report = asyncio.run(scenario())
        assert report.overloaded == 0
        assert report.completed == 12


class TestDeadlines:
    def test_miss_degrades_to_deadline_exceeded_and_admission_still_lands(self):
        engine = build_async_engine(
            build_remote(latency=0.4),
            shards=2,
            io_pause_scale=0.5,  # a miss pends ~200 ms of wall clock
            default_deadline=0.05,
        )
        query = Query("deadline sensitive fact about auroras", fact_id="D1")

        async def scenario():
            first = await engine.serve(query, 0.0)
            # The background flight keeps running and admits its result.
            await engine.drain()
            second = await engine.serve(query, 1.0)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == STATUS_DEADLINE
        assert first.response is None
        assert first.wall_latency < 0.2  # returned at the deadline, not the fetch
        metrics = engine.metrics
        assert metrics.deadline_exceeded == 1
        # The expired request is not counted as served...
        assert metrics.requests == 1  # only the second, successful serve
        # ...but the leader's fetch still admitted into the cache,
        assert engine.cache.stats.inserts == 1
        # so the retry is a sub-deadline cache hit.
        assert second.status == STATUS_OK
        assert second.response.served_from_cache

    def test_hits_are_not_affected_by_deadlines(self):
        engine = build_async_engine(
            build_remote(latency=0.4), shards=2, io_pause_scale=0.5
        )
        query = Query("deadline immune fact about glaciers", fact_id="D2")

        async def scenario():
            await engine.serve(query, 0.0)  # warm the cache (no deadline)
            return await engine.serve(query, 1.0, deadline=0.01)

        outcome = asyncio.run(scenario())
        assert outcome.status == STATUS_OK
        assert outcome.response.served_from_cache


class TestHedging:
    def test_hedge_fires_past_percentile_and_serves_a_result(self):
        engine = build_async_engine(
            build_remote(latency={"kind": "uniform", "low": 0.3, "high": 0.5}),
            shards=2,
            io_pause_scale=0.1,
            hedge_percentile=95.0,
            hedge_min_samples=1,
        )

        async def scenario():
            # Seed the latency estimate with one very fast fetch, so the
            # next (normal-speed) fetch is far past the percentile.
            fast = Query(
                "hedge calibration fact", fact_id="H0",
                metadata={"latency_scale": 0.01},
            )
            await engine.serve(fast, 0.0)
            slow = Query("hedge candidate fact about comets", fact_id="H1")
            return await engine.serve(slow, 1.0)

        outcome = asyncio.run(scenario())
        assert outcome.status == STATUS_OK
        assert engine.metrics.hedged_fetches == 1
        assert engine.metrics.hedge_wins in (0, 1)
        # Two independent requests went out for the hedged miss.
        assert engine.remote.calls == 3
        assert outcome.response.fetch.latency > 0

    def test_hedging_disabled_without_real_io(self):
        engine = build_async_engine(
            build_remote(),
            shards=2,
            io_pause_scale=0.0,
            hedge_percentile=50.0,
            hedge_min_samples=1,
        )

        async def scenario():
            for i in range(5):
                await engine.serve(
                    Query(f"distinct analytic topic {i} skua", fact_id=f"A{i}"),
                    float(i),
                )

        asyncio.run(scenario())
        assert engine.metrics.hedged_fetches == 0


class TestLoadGenerators:
    def test_closed_loop_accounting_invariants(self):
        queries = zipf_queries(300)
        engine = build_async_engine(
            build_remote(), shards=4, io_pause_scale=0.002
        )
        report = asyncio.run(run_closed_loop(engine, queries, 16, time_step=0.01))
        metrics = engine.metrics
        assert report.mode == "closed"
        assert report.concurrency == 16
        assert report.requests == 300
        assert report.completed == 300
        assert metrics.requests == 300
        assert metrics.hits + metrics.misses + metrics.bypasses == 300
        # Every non-coalesced miss is one leader flight = one remote call.
        assert report.remote_calls == engine.singleflight.leaders
        assert report.coalesced_misses == engine.singleflight.shared
        assert report.misses == report.remote_calls + report.coalesced_misses
        # No lost updates: every admitted fetch is visible in some shard.
        assert engine.cache.stats.inserts == report.remote_calls
        assert len(engine.cache) == sum(engine.cache.usage_per_shard())

    def test_open_loop_fixed_arrivals_conserve_outcomes(self):
        queries = zipf_queries(200, seed=1)
        engine = build_async_engine(
            build_remote(seed=1), seed=1, shards=4, io_pause_scale=0.002
        )
        report = asyncio.run(
            run_open_loop(engine, queries, rate=5000.0, time_step=0.01)
        )
        assert report.mode == "open"
        assert report.rate == 5000.0
        assert report.requests == 200
        assert (
            report.completed + report.overloaded + report.deadline_exceeded == 200
        )
        assert report.throughput_rps > 0
        # The open loop must take at least n/rate wall seconds by design.
        assert report.wall_seconds >= 200 / 5000.0

    def test_open_loop_overload_outcomes_are_reported(self):
        queries = [
            Query(f"distinct flood topic {i} gannet", fact_id=f"L{i}")
            for i in range(60)
        ]
        engine = build_async_engine(
            build_remote(latency=0.2),
            shards=2,
            io_pause_scale=0.2,  # every miss pends ~40 ms
            max_inflight=4,
        )
        report = asyncio.run(
            run_open_loop(engine, queries, rate=10_000.0)
        )
        assert report.overloaded > 0
        assert report.completed + report.overloaded == 60
        assert engine.metrics.overloaded == report.overloaded
        # Stats stay coherent: only completed misses fetched and admitted.
        assert engine.cache.stats.inserts == engine.singleflight.leaders

    def test_rejects_bad_load_parameters(self):
        engine = build_async_engine(build_remote(), shards=1)
        with pytest.raises(ValueError):
            asyncio.run(run_open_loop(engine, [], rate=0.0))
        with pytest.raises(ValueError):
            asyncio.run(run_closed_loop(engine, [], concurrency=0))
