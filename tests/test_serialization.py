"""Pickle round-trips for the types that cross the process boundary.

The proc tier ships :class:`WorkerSpec` (carrying an :class:`AsteriaConfig`)
through ``multiprocessing`` spawn, and wire payloads through the frame
codecs — so the core types need explicit ``__getstate__``/``__setstate__``
that detach arena-backed embedding views (a slot view pickled naively would
drag the whole arena along, or worse, arrive pointing at nothing).
"""

import pickle
import random

import numpy as np

from repro.core import CacheConfig, Query
from repro.core.config import AsteriaConfig
from repro.core.element import SemanticElement
from repro.core.metrics import EngineMetrics, LatencyStats
from repro.factory import build_asteria_engine, build_remote


def _engine(arena):
    return build_asteria_engine(build_remote(seed=0), seed=0, arena=arena)


def test_semantic_element_with_arena_slot_round_trips():
    engine = _engine(arena="float32")
    for i in range(4):
        engine.handle(Query(f"fact {i} about things", fact_id=f"F{i}"), now=0.0)
    elements = list(engine.cache.elements.values())
    assert elements and any(e.arena_slot is not None for e in elements)
    for element in elements:
        back = pickle.loads(pickle.dumps(element))
        # The embedding detached from the arena: same vector, owned memory.
        np.testing.assert_array_equal(back.embedding, element.embedding)
        assert back.embedding.flags["OWNDATA"]
        assert back.arena_slot is None
        assert back.element_id == element.element_id
        assert back.truth_key == element.truth_key
        assert back.value == element.value
        assert back.expires_at == element.expires_at
        assert back.frequency == element.frequency


def test_semantic_element_without_arena_round_trips():
    engine = _engine(arena=None)
    engine.handle(Query("a standalone fact", fact_id="F0"), now=0.0)
    element = next(iter(engine.cache.elements.values()))
    assert element.arena_slot is None
    back = pickle.loads(pickle.dumps(element))
    np.testing.assert_array_equal(back.embedding, element.embedding)
    assert back.arena_slot is None


def test_query_round_trips_with_frozen_metadata():
    query = Query("q", tool="search", fact_id="F1", metadata={"a": 1})
    back = pickle.loads(pickle.dumps(query))
    assert back.text == "q"
    assert back.tool == "search"
    assert back.fact_id == "F1"
    assert dict(back.metadata) == {"a": 1}
    # Still immutable after the round trip.
    try:
        back.metadata["b"] = 2
    except TypeError:
        pass
    else:  # pragma: no cover - would be a regression
        raise AssertionError("metadata became mutable across pickling")


def test_config_round_trips_and_alias():
    assert CacheConfig is AsteriaConfig
    config = AsteriaConfig(capacity_items=64, tau_sim=0.9, default_ttl=5.0)
    back = pickle.loads(pickle.dumps(config))
    assert back == config


def test_latency_stats_round_trip_preserves_reservoir_stream():
    original = LatencyStats(max_samples=32)
    rng = random.Random(7)
    for _ in range(200):
        original.add(rng.random())
    clone = pickle.loads(pickle.dumps(original))
    assert clone.count == original.count
    assert clone.p99 == original.p99
    # The reservoir RNG state survived: both replicas evolve identically.
    for value in (0.1, 0.9, 0.5, 0.3):
        original.add(value)
        clone.add(value)
    assert clone.p50 == original.p50
    assert clone.p99 == original.p99


def test_engine_metrics_round_trip():
    engine = _engine(arena="float32")
    for i in range(24):
        engine.handle(Query(f"fact {i % 5} about things", fact_id=f"F{i % 5}"), now=i * 0.01)
    metrics = engine.metrics
    back = pickle.loads(pickle.dumps(metrics))
    assert isinstance(back, EngineMetrics)
    assert back.summary() == metrics.summary()
