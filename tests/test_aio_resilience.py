"""Fault tolerance on the asyncio serving front-end."""

import asyncio

import numpy as np
import pytest

from repro.core import AsteriaConfig, Query
from repro.core.resilience import CircuitBreaker, ResilienceManager
from repro.factory import build_async_engine, build_remote
from repro.network import FaultInjector
from repro.serving.aio import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_STALE,
    run_closed_loop,
)


def make_engine(fault_injector=None, config=None, resilience=None, seed=0):
    return build_async_engine(
        build_remote(latency=0.4, seed=seed, fault_injector=fault_injector),
        config=config,
        seed=seed,
        resilience=resilience,
    )


class TestAsyncBreakerTransitions:
    def test_closed_open_halfopen_closed_cycle(self):
        """The same deterministic breaker walk as the sync engine's: a
        blackout trips it, rejections follow, recovery probes close it."""
        resilience = ResilienceManager(
            breaker=CircuitBreaker(
                failure_threshold=0.5,
                window=8,
                min_samples=4,
                open_seconds=5.0,
                half_open_probes=2,
            ),
        )
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(0.0, 10.0)]),
            resilience=resilience,
        )

        async def scenario():
            for i in range(4):
                outcome = await engine.serve(
                    Query(f"unrelated subject number {i} entirely"), float(i)
                )
                assert outcome.status == STATUS_FAILED
                assert outcome.response is None
            assert resilience.breaker.state == "open"
            assert engine.metrics.fetch_failures == 4
            faults_so_far = engine.engine.remote.fault_injector.total_faults

            rejected = await engine.serve(Query("one more distinct question"), 4.0)
            assert rejected.status == STATUS_FAILED
            assert engine.metrics.breaker_open_rejects == 1
            # Refused up-front: no new flight reached the injector.
            assert (
                engine.engine.remote.fault_injector.total_faults == faults_so_far
            )

            for i, t in enumerate((20.0, 21.0)):
                probe = await engine.serve(
                    Query(f"fresh probe question {i} here"), t
                )
                assert probe.status == STATUS_OK
            assert resilience.breaker.state == "closed"
            assert resilience.breaker.closes == 1
            await engine.drain()

        asyncio.run(scenario())

    def test_degraded_outcomes_do_not_touch_hit_miss_stats(self):
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(0.0, 100.0)])
        )

        async def scenario():
            for i in range(3):
                await engine.serve(
                    Query(f"unrelated subject number {i} entirely"), float(i)
                )

        asyncio.run(scenario())
        assert engine.metrics.requests == 0
        assert engine.metrics.hits == 0
        assert engine.metrics.misses == 0
        assert engine.metrics.failed_requests == 3
        assert engine.metrics.degraded_latency.count == 3


class TestAsyncStaleServing:
    def test_expired_entry_served_as_explicit_stale_hit(self):
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(4.0, 100.0)]),
            config=AsteriaConfig(default_ttl=1.0),
        )
        query = Query("who painted the mona lisa", fact_id="F")

        async def scenario():
            first = await engine.serve(query, 0.0)
            assert first.status == STATUS_OK
            misses_before = engine.metrics.misses

            stale = await engine.serve(query, 5.0)
            assert stale.status == STATUS_STALE
            assert stale.served and not stale.ok
            assert stale.response.result == first.response.result
            assert engine.metrics.stale_hits == 1
            assert engine.metrics.misses == misses_before
            await engine.drain()

        asyncio.run(scenario())

    def test_no_stale_fallback_yields_explicit_failure(self):
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(4.0, 100.0)]),
            config=AsteriaConfig(default_ttl=1.0),
            resilience=ResilienceManager(stale_serve=False),
        )
        query = Query("who painted the mona lisa", fact_id="F")

        async def scenario():
            await engine.serve(query, 0.0)
            outcome = await engine.serve(query, 5.0)
            assert outcome.status == STATUS_FAILED
            assert outcome.response is None
            assert engine.metrics.stale_hits == 0

        asyncio.run(scenario())

    def test_negative_cache_and_background_refresh(self):
        """Stale-while-revalidate: the refused request is answered stale
        while a background task revalidates; after drain() the cache is
        fresh again."""
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(4.9, 5.5)]),
            config=AsteriaConfig(default_ttl=1.0),
        )
        query = Query("who painted the mona lisa", fact_id="F")

        async def scenario():
            first = await engine.serve(query, 0.0)

            failed_flight = await engine.serve(query, 5.0)  # in the blackout
            assert failed_flight.status == STATUS_STALE
            assert engine.metrics.fetch_failures == 1

            negative = await engine.serve(query, 6.0)
            assert negative.status == STATUS_STALE
            assert engine.metrics.negative_cache_hits == 1
            assert engine.metrics.background_refreshes == 1
            await engine.drain()  # let the revalidation flight land

            recovered = await engine.serve(query, 6.5)
            assert recovered.status == STATUS_OK
            assert recovered.response.served_from_cache
            assert recovered.response.result == first.response.result

        asyncio.run(scenario())


class TestOutcomeConservation:
    def test_every_request_resolves_to_exactly_one_outcome(self):
        """Under sustained chaos, outcome counts partition the request set —
        nothing is dropped, nothing is double-counted."""
        rng = np.random.default_rng(0)
        ranks = np.minimum(rng.zipf(1.3, size=300), 64)
        queries = [
            Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
            for rank in ranks
        ]
        engine = make_engine(
            fault_injector=FaultInjector(
                error_rate=0.2, timeout_rate=0.1, seed=0
            ),
            config=AsteriaConfig(default_ttl=2.0),
            resilience=ResilienceManager(
                breaker=CircuitBreaker(window=16, min_samples=8, open_seconds=0.5),
                negative_ttl=0.3,
            ),
        )
        report = asyncio.run(
            run_closed_loop(engine, queries, concurrency=8, time_step=0.01)
        )
        accounted = (
            report.completed
            + report.stale_served
            + report.failed
            + report.overloaded
            + report.deadline_exceeded
        )
        assert accounted == report.requests == 300
        assert report.served_fraction == pytest.approx(
            (report.completed + report.stale_served) / 300
        )
        assert engine.metrics.fetch_failures > 0