"""Tests for cross-region replication: convergence, LWW, invalidation,
frame transport, and the socket session."""

import socket
import threading

import pytest

from repro.core import Query
from repro.core.config import AsteriaConfig
from repro.core.types import FetchResult
from repro.factory import build_asteria_engine, build_remote
from repro.serving.proc.protocol import FrameError, FrameSplitter, encode_frame
from repro.store.replication import (
    FrameLink,
    ReplicaNode,
    ReplicationDriver,
    agreement_between,
)
from repro.store.replnet import digest_agreement, node_digest, replicate_session

SEED = 11
CONFIG = AsteriaConfig(capacity_items=64)


def fetch(result="answer"):
    return FetchResult(
        result=result, latency=0.4, service_latency=0.4, cost=0.005,
        size_tokens=16,
    )


def make_node(node_id, capacity=64):
    engine = build_asteria_engine(
        build_remote(seed=SEED), config=AsteriaConfig(capacity_items=capacity),
        seed=SEED,
    )
    return engine, ReplicaNode(node_id, engine.cache)


def trace(population, n, offset=0):
    return [
        Query(f"replicated fact number {(i + offset) % population} of the realm",
              fact_id=f"F{(i + offset) % population}")
        for i in range(n)
    ]


class TestConvergence:
    def test_pair_converges_to_full_agreement(self):
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        driver = ReplicationDriver(
            node_a, node_b, sync_interval=0.2, latency_ab=0.05, latency_ba=0.09
        )
        queries_a = trace(20, 80)
        queries_b = trace(20, 80, offset=7)
        for i in range(80):
            now = i * 0.01
            engine_a.handle(queries_a[i], now=now)
            engine_b.handle(queries_b[i], now=now)
            driver.tick(now)
        mid = driver.agreement()
        driver.drain(0.8)
        final = driver.agreement()
        assert final.agreement == 1.0
        assert final.union_keys > 0
        assert final.stale_keys == 0
        assert mid.union_keys <= final.union_keys
        # Real frame bytes crossed the links in both directions.
        assert driver.link_ab.frames_sent > 0
        assert driver.link_ab.bytes_sent > 0
        assert driver.link_ba.frames_sent > 0

    def test_replicated_entries_serve_hits(self):
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        driver = ReplicationDriver(node_a, node_b, sync_interval=0.1)
        engine_a.handle(Query("who painted the mona lisa", fact_id="F"), now=0.0)
        for step in range(1, 6):
            driver.tick(step * 0.1)
        assert len(engine_b.cache) == 1
        result = engine_b.cache.lookup(
            Query("mona lisa painter", fact_id="F"), 1.0
        )
        assert result.match is not None

    def test_capacity_evictions_do_not_replicate(self):
        engine_a, node_a = make_node("A", capacity=4)
        engine_b, node_b = make_node("B", capacity=64)
        driver = ReplicationDriver(node_a, node_b, sync_interval=0.1)
        for i, query in enumerate(trace(10, 10)):
            engine_a.handle(query, now=i * 0.01)
            driver.tick(i * 0.01)
        driver.drain(0.2)
        # A holds only its capacity; B keeps every replicated admission.
        assert len(engine_a.cache) == 4
        assert len(engine_b.cache) == 10
        assert node_b.stats_rep.applied_invalidations == 0


class TestLastWriterWins:
    def _pair(self):
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        return engine_a, node_a, engine_b, node_b

    def test_later_version_wins_on_both_sides(self):
        engine_a, node_a, engine_b, node_b = self._pair()
        node_a.now = node_b.now = 0.0
        engine_a.cache.insert(
            Query("price of copper today", fact_id="F"), fetch("old"), 1.0
        )
        engine_b.cache.insert(
            Query("copper price right now", fact_id="F"), fetch("new"), 2.0
        )
        # Full mesh exchange at t=3.
        diff_a = node_a.collect_diff()
        diff_b = node_b.collect_diff()
        node_a.apply_diff(diff_b, now=3.0)
        node_b.apply_diff(diff_a, now=3.0)
        sample = agreement_between(node_a, node_b)
        assert sample.agreement == 1.0
        for cache in (engine_a.cache, engine_b.cache):
            values = [
                element.value
                for element in cache.elements.values()
                if element.truth_key == "F"
            ]
            assert values == ["new"]
        assert node_a.versions["F"] == (2.0, "B")
        assert node_b.versions["F"] == (2.0, "B")
        assert node_a.stats_rep.applied_upserts == 1
        assert node_b.stats_rep.lww_rejects == 1

    def test_tie_breaks_on_origin(self):
        _, node_a, _, node_b = self._pair()
        record = {
            "truth_key": "F",
            "version": 5.0,
            "origin": "B",
            "op": "invalidate",
            "record": None,
        }
        node_a.versions["F"] = (5.0, "A")
        node_a.apply_diff([record])
        # (5.0, "B") > (5.0, "A") lexicographically: B's write wins the tie.
        assert node_a.versions["F"] == (5.0, "B")

    def test_lagging_clock_write_still_wins_at_the_peer(self):
        """A region whose clock lags must still be able to supersede a
        peer-originated entry: the local write's version is Lamport-bumped
        past the version it observed, so the peer applies (not LWW-rejects)
        the diff and the pair re-converges."""
        engine_a, node_a, engine_b, node_b = self._pair()
        # B wrote F at its (fast) clock's 5.0; A learned it via a diff.
        engine_b.cache.insert(
            Query("price of copper today", fact_id="F"), fetch("from-b"), 5.0
        )
        node_a.apply_diff(node_b.collect_diff(), now=0.2)
        assert node_a.versions["F"] == (5.0, "B")
        # A's own clock reads only 0.3 when it refetches F locally.
        engine_a.cache.insert(
            Query("copper price right now", fact_id="F"), fetch("from-a"), 0.3
        )
        version, origin = node_a.versions["F"]
        assert origin == "A"
        assert version > 5.0
        assert node_a.pending[-1]["version"] == version
        node_b.apply_diff(node_a.collect_diff(), now=5.1)
        assert node_b.versions["F"] == (version, "A")
        assert agreement_between(node_a, node_b).agreement == 1.0
        values = [
            element.value
            for element in engine_b.cache.elements.values()
            if element.truth_key == "F"
        ]
        assert values == ["from-a"]

    def test_local_insert_supersedes_older_same_truth_entry(self):
        engine_a, node_a, _, _ = self._pair()
        engine_a.cache.insert(
            Query("price of copper today", fact_id="F"), fetch("old"), 1.0
        )
        engine_a.cache.insert(
            Query("copper price this hour", fact_id="F"), fetch("new"), 2.0
        )
        values = [
            element.value
            for element in engine_a.cache.elements.values()
            if element.truth_key == "F"
        ]
        assert values == ["new"]
        # The supersede removal rides the upsert; no invalidate diff emitted.
        ops = [record["op"] for record in node_a.pending]
        assert ops == ["upsert", "upsert"]


class TestInvalidation:
    def test_invalidation_propagates(self):
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        driver = ReplicationDriver(node_a, node_b, sync_interval=0.1)
        engine_a.handle(Query("who painted the mona lisa", fact_id="F"), now=0.0)
        for step in range(1, 4):
            driver.tick(step * 0.1)
        assert len(engine_b.cache) == 1
        node_a.now = 1.0
        engine_a.cache.invalidate(lambda element: element.truth_key == "F")
        for step in range(11, 15):
            driver.tick(step * 0.1)
        assert len(engine_b.cache) == 0
        assert node_b.stats_rep.applied_invalidations == 1
        assert agreement_between(node_a, node_b).agreement == 1.0


class TestFrameSplitter:
    def test_reassembles_partial_frames(self):
        splitter = FrameSplitter()
        stream = encode_frame(b"alpha") + encode_frame(b"beta") + encode_frame(b"x")
        collected = []
        for i in range(0, len(stream), 3):  # drip-feed 3 bytes at a time
            collected.extend(splitter.feed(stream[i:i + 3]))
        assert collected == [b"alpha", b"beta", b"x"]
        assert splitter.pending_bytes == 0

    def test_buffers_incomplete_tail(self):
        splitter = FrameSplitter()
        frame = encode_frame(b"payload")
        assert splitter.feed(frame[:-2]) == []
        assert splitter.pending_bytes == len(frame) - 2
        assert splitter.feed(frame[-2:]) == [b"payload"]

    def test_oversized_length_rejected(self):
        splitter = FrameSplitter()
        with pytest.raises(FrameError):
            splitter.feed(b"\xff\xff\xff\xff")

    def test_frame_link_delivers_after_latency(self):
        link = FrameLink(latency=0.5)
        link.send({"op": "diff", "records": []}, now=0.0)
        assert link.deliver(0.4) == []
        assert link.in_flight == 1
        delivered = link.deliver(0.5)
        assert delivered == [{"op": "diff", "records": []}]
        assert link.in_flight == 0


class TestSocketSession:
    def test_two_sessions_converge_over_socketpair(self):
        sock_a, sock_b = socket.socketpair()
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        queries_a = trace(12, 40)
        queries_b = trace(12, 40, offset=5)
        reports = {}

        def run(name, node, engine, sock, queries):
            workload = (
                (lambda now, query=query: engine.handle(query, now=now))
                for query in queries
            )
            reports[name] = replicate_session(
                node, sock, workload=workload, sync_interval=0.05
            )

        threads = [
            threading.Thread(
                target=run, args=("a", node_a, engine_a, sock_a, queries_a)
            ),
            threading.Thread(
                target=run, args=("b", node_b, engine_b, sock_b, queries_b)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert set(reports) == {"a", "b"}
        for report in reports.values():
            assert report["steps"] == 40
            assert report["agreement"] is not None
            assert report["agreement"]["agreement"] == 1.0
        assert reports["a"]["peer"] == "B"
        assert reports["b"]["peer"] == "A"
        assert reports["a"]["items"] == reports["b"]["items"]

    def test_digest_agreement_scoring(self):
        assert digest_agreement({}, {})["agreement"] == 1.0
        mine = {"F1": [1.0, "A"], "F2": [2.0, "B"]}
        theirs = {"F1": [1.0, "A"], "F2": [3.0, "A"], "F3": [1.0, "A"]}
        score = digest_agreement(mine, theirs)
        assert score["agreement"] == pytest.approx(1 / 3)
        assert score["union_keys"] == 3
        assert score["stale_keys"] == 2

    def test_node_digest_lists_live_keys_only(self):
        engine, node = make_node("A")
        engine.cache.insert(Query("topic one", fact_id="F"), fetch(), 0.0)
        node.now = 1.0
        engine.cache.invalidate(lambda element: element.truth_key == "F")
        # The tombstone stays in versions but the digest covers live keys.
        assert "F" in node.versions
        assert node_digest(node) == {}
