"""Tests for the real-thread concurrent serving layer."""

import threading
import time

import numpy as np
import pytest

from repro.core import AsteriaConfig, AsteriaEngine, Query
from repro.factory import (
    build_asteria_engine,
    build_concurrent_engine,
    build_remote,
    build_sharded_cache,
)
from repro.serving import ConcurrentEngine, SingleFlight


def zipf_queries(n: int = 400, population: int = 64, seed: int = 0) -> list[Query]:
    rng = np.random.default_rng(seed)
    ranks = np.minimum(rng.zipf(1.3, size=n), population)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        for i in range(3):
            result, shared = flight.run("k", lambda i=i: i)
            assert (result, shared) == (i, False)
        assert flight.leaders == 3
        assert flight.shared == 0
        assert flight.inflight() == 0

    def test_concurrent_same_key_shares_one_execution(self):
        flight = SingleFlight()
        gate = threading.Event()
        executions = []

        def slow_fn():
            executions.append(threading.current_thread().name)
            gate.wait(timeout=10)
            return "value"

        results = []

        def call():
            results.append(flight.run("k", slow_fn))

        threads = [threading.Thread(target=call) for _ in range(5)]
        for thread in threads:
            thread.start()
        # Wait until the leader is inside slow_fn, then release it.
        for _ in range(200):
            if executions and flight.shared == 4:
                break
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert len(executions) == 1  # exactly one real execution
        assert sorted(shared for _, shared in results) == [
            False,
            True,
            True,
            True,
            True,
        ]
        assert all(result == "value" for result, _ in results)
        assert flight.leaders == 1 and flight.shared == 4

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        a, shared_a = flight.run("a", lambda: 1)
        b, shared_b = flight.run("b", lambda: 2)
        assert (a, b) == (1, 2)
        assert not shared_a and not shared_b
        assert flight.leaders == 2 and flight.shared == 0

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        gate = threading.Event()

        def failing():
            gate.wait(timeout=10)
            raise RuntimeError("remote down")

        outcomes = []

        def call():
            try:
                flight.run("k", failing)
            except RuntimeError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            if flight.shared == 2:
                break
            time.sleep(0.01)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert outcomes == ["remote down"] * 3
        assert flight.inflight() == 0

    def test_fresh_flight_after_completion_even_after_failure(self):
        flight = SingleFlight()
        with pytest.raises(RuntimeError):
            flight.run("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        result, shared = flight.run("k", lambda: "recovered")
        assert (result, shared) == ("recovered", False)

    def test_follower_timeout_leads_private_fetch(self):
        flight = SingleFlight()
        gate = threading.Event()
        leader_result = []

        def stuck_leader():
            leader_result.append(flight.run("k", lambda: gate.wait(timeout=10)))

        leader = threading.Thread(target=stuck_leader)
        leader.start()
        for _ in range(200):
            if flight.inflight() == 1:
                break
            time.sleep(0.01)
        # Follower gives up after 50 ms and fetches on its own instead of
        # waiting indefinitely behind a wedged leader.
        result, shared = flight.run("k", lambda: "private", timeout=0.05)
        assert (result, shared) == ("private", False)
        assert flight.timeouts == 1
        # The stuck leader is unaffected and completes once unwedged.
        gate.set()
        leader.join(timeout=10)
        assert not leader.is_alive()
        assert leader_result == [(True, False)]
        assert flight.inflight() == 0

    def test_timed_out_follower_not_poisoned_by_leader_failure(self):
        """A follower that timed out and went private must keep its own
        successful result even when the leader it abandoned later raises."""
        flight = SingleFlight()
        gate = threading.Event()
        leader_errors = []

        def doomed_leader():
            try:
                flight.run(
                    "k",
                    lambda: (gate.wait(timeout=10), 1 / 0),
                )
            except ZeroDivisionError:
                leader_errors.append("leader failed")

        leader = threading.Thread(target=doomed_leader)
        leader.start()
        for _ in range(200):
            if flight.inflight() == 1:
                break
            time.sleep(0.01)
        result, shared = flight.run("k", lambda: "private ok", timeout=0.05)
        assert (result, shared) == ("private ok", False)
        assert flight.timeouts == 1
        gate.set()  # now let the leader run into its exception
        leader.join(timeout=10)
        assert not leader.is_alive()
        assert leader_errors == ["leader failed"]
        assert flight.inflight() == 0
        # The follower's private result stands: no retroactive poisoning.
        assert (result, shared) == ("private ok", False)


class TestConcurrentEngineGuards:
    def test_rejects_non_thread_safe_cache_with_workers(self):
        engine = build_asteria_engine(build_remote())
        with pytest.raises(ValueError, match="thread-safe"):
            ConcurrentEngine(engine, workers=4)
        # A single worker over an unsharded cache is fine (no concurrency).
        ConcurrentEngine(engine, workers=1)

    def test_rejects_prefetch_and_recalibration(self):
        engine = build_asteria_engine(
            build_remote(), AsteriaConfig(prefetch_enabled=True)
        )
        with pytest.raises(ValueError, match="prefetch"):
            ConcurrentEngine(engine, workers=1)
        with pytest.raises(ValueError, match="prefetch"):
            build_concurrent_engine(
                build_remote(), AsteriaConfig(recalibration_enabled=True)
            )

    def test_rejects_bad_sizes(self):
        engine = build_asteria_engine(build_remote())
        with pytest.raises(ValueError):
            ConcurrentEngine(engine, workers=0)
        with pytest.raises(ValueError):
            ConcurrentEngine(engine, workers=1, io_pause_scale=-0.1)


class TestConcurrentServing:
    def test_handle_matches_sequential_engine_when_single_worker(self):
        config = AsteriaConfig()
        sequential = build_asteria_engine(build_remote(seed=7), config, seed=3)
        concurrent = build_concurrent_engine(
            build_remote(seed=7), config, seed=3, shards=1, workers=1
        )
        for i, query in enumerate(zipf_queries(150)):
            now = 0.3 * i
            a = sequential.handle(query, now)
            b = concurrent.handle(query, now)
            assert a.lookup.status == b.lookup.status, f"diverged at {i}"
            assert a.result == b.result
        assert sequential.metrics.summary() == concurrent.metrics.summary()

    def test_handle_concurrent_preserves_input_order(self):
        concurrent = build_concurrent_engine(
            build_remote(), shards=4, workers=4
        )
        queries = [
            Query(f"distinct topic {i} albatross", fact_id=f"T{i}")
            for i in range(40)
        ]
        with concurrent:
            responses = concurrent.handle_concurrent(queries, 0.0)
        assert len(responses) == 40
        for query, response in zip(queries, responses):
            assert query.fact_id.lstrip("T") in response.result or response.result

    def test_accounting_invariants_under_concurrency(self):
        queries = zipf_queries(400)
        concurrent = build_concurrent_engine(
            build_remote(), shards=4, workers=4, io_pause_scale=0.002
        )
        with concurrent:
            report = concurrent.run_closed_loop(queries, time_step=0.01)
        metrics = concurrent.metrics
        assert metrics.requests == 400
        assert metrics.hits + metrics.misses + metrics.bypasses == 400
        # Every non-coalesced miss is one leader flight = one remote call.
        assert report.remote_calls == concurrent.singleflight.leaders
        assert report.coalesced_misses == concurrent.singleflight.shared
        assert report.misses == report.remote_calls + report.coalesced_misses
        # No lost updates: every admitted fetch is visible in some shard.
        assert concurrent.cache.stats.inserts == report.remote_calls
        assert len(concurrent.cache) == sum(concurrent.cache.usage_per_shard())


class TestEightThreadStress:
    """The ISSUE's stress gate: 8 threads on one sharded cache."""

    def test_stress_no_lost_updates_no_deadlock(self):
        queries = zipf_queries(800, population=96, seed=1)
        concurrent = build_concurrent_engine(
            build_remote(seed=1), seed=1, shards=4, workers=8,
            io_pause_scale=0.002,
        )
        done = threading.Event()
        holder = {}

        def drive():
            with concurrent:
                holder["report"] = concurrent.run_closed_loop(
                    queries, time_step=0.005
                )
            done.set()

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        assert done.wait(timeout=120), "deadlock: stress run never finished"
        report = holder["report"]
        metrics = concurrent.metrics

        # Conservation: every request is exactly one of hit/miss/bypass.
        assert report.requests == 800
        assert metrics.requests == 800
        assert metrics.hits + metrics.misses + metrics.bypasses == 800
        assert report.hits + report.misses == 800

        # No lost updates: every leader fetch was admitted into a shard and
        # per-shard stats sum exactly to the aggregate view.
        stats = concurrent.cache.stats
        assert stats.inserts == concurrent.singleflight.leaders
        per_shard = concurrent.cache.stats_per_shard()
        assert sum(s.inserts for s in per_shard) == stats.inserts
        assert sum(s.evictions for s in per_shard) == stats.evictions
        assert len(concurrent.cache) == stats.inserts - stats.evictions - stats.expirations

    def test_stress_hit_rate_within_tolerance_of_sequential_replay(self):
        queries = zipf_queries(600, population=64, seed=2)
        concurrent = build_concurrent_engine(
            build_remote(seed=2), seed=2, shards=4, workers=8,
            io_pause_scale=0.002,
        )
        with concurrent:
            report = concurrent.run_closed_loop(queries, time_step=0.01)

        # Sequential replay on an identically-seeded sharded engine: same
        # shards, same routing, no races — the reference hit rate.
        reference_cache = build_sharded_cache(seed=2, shards=4)
        reference = AsteriaEngine(
            reference_cache, build_remote(seed=2), AsteriaConfig()
        )
        for i, query in enumerate(queries):
            reference.handle(query, 0.01 * i)
        sequential_rate = reference.metrics.hit_rate

        # Concurrency can only *lose* hits to in-flight races (a follower
        # arriving before the leader admits counts as a coalesced miss), and
        # single-flight bounds that loss. Allow a modest tolerance.
        assert report.hit_rate <= sequential_rate + 1e-9
        assert report.hit_rate >= sequential_rate - 0.05
        # Hits lost to racing either coalesced onto an in-flight fetch or
        # (rarely) re-fetched when the flight finished between the lookup
        # and the single-flight join; every lost hit becomes an extra miss.
        lost = reference.metrics.hits - report.hits
        assert lost == report.misses - reference.metrics.misses
        assert lost >= 0


class TestShardLockScope:
    """The simulated remote sleep must run outside any shard lock."""

    def test_slow_fetch_does_not_block_same_shard_hits(self):
        # One shard, so the pending miss and the cache hit contend for the
        # same lock if (and only if) the fetch sleeps while holding it.
        engine = build_concurrent_engine(
            build_remote(latency=0.5), shards=1, workers=2, io_pause_scale=1.0
        )
        # Prime the hot entry with a near-instant fetch (latency_scale
        # shrinks the simulated — and therefore the real — remote pause).
        prime = Query(
            "popular fact about tides", fact_id="P1",
            metadata={"latency_scale": 0.001},
        )
        engine.handle(prime, 0.0)
        hot = Query("popular fact about tides", fact_id="P1")
        miss = Query("cold fact about comets", fact_id="C1")

        miss_done = threading.Event()

        def fetch_miss():
            engine.handle(miss, 1.0)  # ~0.5 s of real remote pause
            miss_done.set()

        pending = threading.Thread(target=fetch_miss)
        pending.start()
        time.sleep(0.1)  # let the miss enter its remote sleep
        started = time.perf_counter()
        response = engine.handle(hot, 1.0)
        elapsed = time.perf_counter() - started
        # The hit returned while the same-shard miss was still in flight.
        assert pending.is_alive()
        assert not miss_done.is_set()
        assert response.served_from_cache
        assert elapsed < 0.2
        pending.join(timeout=10)
        assert not pending.is_alive()
        assert miss_done.is_set()

    def test_engine_follower_timeout_is_validated_and_wired(self):
        remote = build_remote()
        with pytest.raises(ValueError, match="follower_timeout"):
            build_concurrent_engine(remote, follower_timeout=0.0)
        engine = build_concurrent_engine(remote, follower_timeout=0.5)
        assert engine.follower_timeout == 0.5
