"""Meta-tests on the public API: docstrings, exports, and importability."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.embedding",
    "repro.ann",
    "repro.judger",
    "repro.core",
    "repro.network",
    "repro.serving",
    "repro.agent",
    "repro.workloads",
    "repro.experiments",
]


def _all_modules():
    modules = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        modules.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue  # importing it would run the CLI
            modules.append(
                importlib.import_module(f"{package_name}.{info.name}")
            )
    return modules


class TestImportability:
    def test_every_module_imports(self):
        assert len(_all_modules()) > 50

    def test_all_exports_resolve(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), f"{package_name}.{name}"


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for module in _all_modules():
            assert module.__doc__, module.__name__

    def test_every_public_export_documented(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                item = getattr(package, name)
                if inspect.isclass(item) or inspect.isfunction(item):
                    assert item.__doc__, f"{package_name}.{name} lacks a docstring"

    def test_public_methods_documented(self):
        """Every public method of every exported class carries a docstring."""
        missing = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                item = getattr(package, name)
                if not inspect.isclass(item):
                    continue
                for method_name, method in inspect.getmembers(
                    item, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != item.__name__:
                        continue  # inherited from elsewhere
                    if not method.__doc__:
                        missing.append(f"{package_name}.{name}.{method_name}")
        assert not missing, f"undocumented public methods: {missing}"


class TestVersioning:
    def test_version_exposed(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1
