"""Tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.ann import kmeans


@pytest.fixture
def clustered_data():
    rng = np.random.default_rng(1)
    centers = np.array([[5.0, 0.0], [-5.0, 0.0], [0.0, 5.0]])
    points = np.vstack(
        [center + rng.normal(0, 0.3, size=(40, 2)) for center in centers]
    )
    return points.astype(np.float32)


class TestKMeans:
    def test_recovers_well_separated_clusters(self, clustered_data):
        centroids, assignments = kmeans(clustered_data, k=3, seed=0)
        assert centroids.shape == (3, 2)
        # Each true cluster of 40 points maps to exactly one label.
        for start in (0, 40, 80):
            labels = set(assignments[start : start + 40].tolist())
            assert len(labels) == 1
        assert len(set(assignments.tolist())) == 3

    def test_centroids_near_true_centers(self, clustered_data):
        centroids, _ = kmeans(clustered_data, k=3, seed=0)
        found = sorted(tuple(np.round(c).astype(int)) for c in centroids)
        assert found == [(-5, 0), (0, 5), (5, 0)]

    def test_deterministic_for_seed(self, clustered_data):
        a = kmeans(clustered_data, k=3, seed=7)
        b = kmeans(clustered_data, k=3, seed=7)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_k_equals_n(self):
        data = np.eye(4, dtype=np.float32)
        centroids, assignments = kmeans(data, k=4, seed=0)
        assert sorted(assignments.tolist()) == [0, 1, 2, 3]

    def test_k_one(self, clustered_data):
        centroids, assignments = kmeans(clustered_data, k=1)
        assert set(assignments.tolist()) == {0}
        assert np.allclose(centroids[0], clustered_data.mean(axis=0), atol=1e-3)

    def test_no_empty_clusters(self):
        # Pathological data: all points identical except one.
        data = np.zeros((20, 3), dtype=np.float32)
        data[-1] = 10.0
        _, assignments = kmeans(data, k=2, seed=0)
        assert len(set(assignments.tolist())) == 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 3), dtype=np.float32), k=5)

    def test_invalid_k_rejected(self, clustered_data):
        with pytest.raises(ValueError):
            kmeans(clustered_data, k=0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(10, dtype=np.float32), k=2)
