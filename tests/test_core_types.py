"""Tests for leaf datatypes: Query, FetchResult, CacheLookup."""

import pytest

from repro.core.types import CacheLookup, FetchResult, Query, estimate_tokens


class TestQuery:
    def test_minimal_construction(self):
        query = Query("who painted the mona lisa")
        assert query.tool == "search"
        assert query.fact_id is None

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Query("")

    def test_invalid_staticity_rejected(self):
        with pytest.raises(ValueError):
            Query("x", staticity=0)
        with pytest.raises(ValueError):
            Query("x", staticity=11)

    def test_metadata_is_read_only(self):
        query = Query("x", metadata={"latency_scale": 2.0})
        assert query.metadata["latency_scale"] == 2.0
        with pytest.raises(TypeError):
            query.metadata["latency_scale"] = 3.0  # type: ignore[index]

    def test_metadata_snapshot_isolated_from_source(self):
        source = {"a": 1}
        query = Query("x", metadata=source)
        source["a"] = 2
        assert query.metadata["a"] == 1

    def test_frozen(self):
        query = Query("x")
        with pytest.raises(AttributeError):
            query.text = "y"  # type: ignore[misc]


class TestFetchResult:
    def test_valid_construction(self):
        result = FetchResult(
            result="data", latency=0.5, service_latency=0.4, cost=0.005
        )
        assert result.retries == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FetchResult(result="x", latency=-1.0, service_latency=0.1, cost=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            FetchResult(
                result="x", latency=0.1, service_latency=0.1, cost=0.0, retries=-1
            )


class TestCacheLookup:
    def test_hit_flag(self):
        lookup = CacheLookup(status="hit", result="r", latency=0.05)
        assert lookup.is_hit

    def test_miss_flag(self):
        lookup = CacheLookup(status="miss", result=None, latency=0.05)
        assert not lookup.is_hit

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            CacheLookup(status="maybe", result=None, latency=0.0)


class TestEstimateTokens:
    def test_roughly_four_chars_per_token(self):
        assert estimate_tokens("a" * 400) == 100

    def test_minimum_one(self):
        assert estimate_tokens("") == 1
        assert estimate_tokens("ab") == 1
