"""Tests for the one-call constructors."""

import pytest

from repro.ann import FlatIndex, HNSWIndex, IVFIndex
from repro.core import AsteriaConfig, Query
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_index,
    build_remote,
    build_vanilla_engine,
)
from repro.workloads import build_dataset


class TestBuildIndex:
    def test_kinds(self):
        assert isinstance(build_index("flat", 64), FlatIndex)
        assert isinstance(build_index("hnsw", 64), HNSWIndex)
        assert isinstance(build_index("ivf", 64), IVFIndex)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_index("faiss", 64)


class TestBuildRemote:
    def test_default_latency_is_search_api_range(self):
        remote = build_remote()
        result = remote.fetch_at(Query("q"))
        assert 0.3 <= result.service_latency <= 0.5

    def test_rate_limit_installed(self):
        remote = build_remote(rate_limit_per_minute=100)
        assert remote.rate_limiter is not None

    def test_universe_resolver_wired(self):
        dataset = build_dataset("hotpotqa", seed=1)
        remote = build_remote(dataset.universe)
        fact = dataset.universe.by_rank(0)
        result = remote.fetch_at(Query("anything", fact_id=fact.fact_id))
        assert fact.answer.split()[0] in result.result


class TestBuildEngines:
    def test_same_seed_same_behaviour(self):
        dataset = build_dataset("hotpotqa", seed=1)

        def run_one():
            remote = build_remote(dataset.universe, seed=2)
            engine = build_asteria_engine(remote, seed=5)
            now = 0.0
            outcomes = []
            fact = dataset.universe.by_rank(0)
            for variant in range(6):
                query = dataset.query_for(fact, variant)
                response = engine.handle(query, now)
                now += response.latency
                outcomes.append(response.served_from_cache)
            return outcomes

        assert run_one() == run_one()

    def test_config_propagates(self):
        engine = build_asteria_engine(
            build_remote(), AsteriaConfig(capacity_items=7, tau_sim=0.8), seed=1
        )
        assert engine.cache.capacity_items == 7
        assert engine.cache.sine.tau_sim == 0.8

    def test_policy_by_name(self):
        engine = build_asteria_engine(build_remote(), policy="lru", seed=1)
        assert engine.cache.policy.name == "lru"

    def test_index_kinds_work_end_to_end(self):
        for kind in ("flat", "hnsw", "ivf"):
            engine = build_asteria_engine(build_remote(), index_kind=kind, seed=1)
            engine.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
            response = engine.handle(
                Query("mona lisa painter ok", fact_id="F"), 1.0
            )
            assert response.served_from_cache, kind

    def test_exact_and_vanilla_builders(self):
        exact = build_exact_engine(build_remote(), capacity_items=10)
        vanilla = build_vanilla_engine(build_remote())
        assert exact.cache.capacity_items == 10
        assert vanilla.name == "vanilla"
