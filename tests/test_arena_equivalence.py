"""Equivalence pins for the arena fast path (tentpole acceptance).

Three claims from the issue, each pinned on a seeded workload:

* the float32 arena is a pure layout change — an arena-backed engine replays
  the per-vector baseline's hit/miss decisions and counters exactly;
* every ANN index reaches the same search results whether vectors enter via
  ``add`` (index-owned storage) or ``add_slot`` (cache-owned arena rows), and
  incremental add/remove never triggers a full rebuild where the structure
  promises none;
* the int8 tier trades recall for memory — close to, but not necessarily
  identical with, the float32 decisions.
"""

import dataclasses

import numpy as np
import pytest

from repro.ann.base import normalize
from repro.ann.flat import FlatIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFIndex
from repro.ann.pq import PQIndex
from repro.core import Query
from repro.core.arena import EmbeddingArena
from repro.factory import build_asteria_engine, build_remote

SEED = 0
N_QUERIES = 400
POPULATION = 24
TIME_STEP = 0.01
DIM = 32


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(1.3, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def run_engine(arena: str | None):
    engine = build_asteria_engine(build_remote(seed=SEED), seed=SEED, arena=arena)
    outcomes = []
    for i, query in enumerate(workload()):
        response = engine.handle(query, now=i * TIME_STEP)
        outcomes.append((response.lookup.status, response.result))
    return engine, outcomes


def test_float32_arena_replays_baseline_decisions_exactly():
    baseline_engine, baseline = run_engine(arena=None)
    arena_engine, arena_backed = run_engine(arena="float32")
    assert arena_backed == baseline
    # Latency reservoirs don't define equality; every integer counter must.
    baseline_counters = {
        name: value
        for name, value in dataclasses.asdict(baseline_engine.metrics).items()
        if isinstance(value, int)
    }
    arena_counters = {
        name: value
        for name, value in dataclasses.asdict(arena_engine.metrics).items()
        if isinstance(value, int)
    }
    assert baseline_counters and arena_counters == baseline_counters
    # The fast path was actually on: live elements carry arena slots.
    slots = [
        element.arena_slot for element in arena_engine.cache.elements.values()
    ]
    assert slots and all(slot is not None for slot in slots)
    assert baseline_engine.cache.arena is None


def test_int8_arena_stays_close_to_baseline():
    baseline_engine, _ = run_engine(arena=None)
    int8_engine, _ = run_engine(arena="int8")
    assert int8_engine.metrics.requests == baseline_engine.metrics.requests
    # Quantisation may flip borderline judger calls, but the workload's hit
    # mass must survive the 4x smaller rows.
    drift = abs(int8_engine.metrics.hits - baseline_engine.metrics.hits)
    assert drift <= N_QUERIES * 0.05
    assert int8_engine.cache.arena.quantized


def test_compact_arena_preserves_lookup_decisions():
    engine, _ = run_engine(arena="float32")
    cache = engine.cache
    victims = list(cache.elements)[::3]
    for element_id in victims:
        cache.remove(element_id)
    # Probe with each element's own text and ground truth so the simulated
    # judger validates the exact-text candidate.
    survivors = {
        element_id: Query(element.key, fact_id=element.truth_key)
        for element_id, element in cache.elements.items()
    }
    assert survivors
    now = N_QUERIES * TIME_STEP
    before = {
        element_id: cache.lookup(query, now=now).match
        for element_id, query in survivors.items()
    }
    remap = cache.compact_arena()
    assert remap  # removals left holes, so compaction moved rows
    for element_id, query in survivors.items():
        match = cache.lookup(query, now=now).match
        assert match is not None
        assert match.element_id == element_id
        assert before[element_id] is not None
        assert before[element_id].element_id == element_id
        assert cache.elements[element_id].arena_slot in cache.arena


def _indexes(kind: str, arena: EmbeddingArena | None):
    if kind == "flat":
        return FlatIndex(DIM, arena=arena)
    if kind == "ivf":
        return IVFIndex(DIM, nlist=4, nprobe=4, train_threshold=16, seed=3, arena=arena)
    if kind == "hnsw":
        return HNSWIndex(DIM, seed=3, arena=arena)
    if kind == "pq":
        return PQIndex(DIM, m=4, k=8, train_threshold=16, seed=3, arena=arena)
    raise AssertionError(kind)


@pytest.mark.parametrize("kind", ["flat", "ivf", "hnsw", "pq"])
def test_add_slot_matches_add(kind):
    """Cache-owned arena rows search identically to index-owned storage."""
    rng = np.random.default_rng(11)
    vectors = rng.normal(size=(40, DIM)).astype(np.float32)
    owned = _indexes(kind, arena=None)
    arena = EmbeddingArena(DIM)
    shared = _indexes(kind, arena=arena)
    slot_of = {}
    for key, vector in enumerate(vectors):
        owned.add(key, vector)
        slot_of[key] = arena.allocate(vector)
        shared.add_slot(key, slot_of[key])
    queries = [normalize(rng.normal(size=DIM).astype(np.float32)) for _ in range(10)]
    for query in queries:
        assert [hit.key for hit in owned.search(query, k=5)] == [
            hit.key for hit in shared.search(query, k=5)
        ]
    # Incremental removal keeps both in lockstep too; the caller releases its
    # own arena rows, mirroring AsteriaCache.remove (index first, arena second).
    for key in range(0, 40, 3):
        owned.remove(key)
        shared.remove(key)
        arena.release(slot_of.pop(key))
    for query in queries:
        assert [hit.key for hit in owned.search(query, k=5)] == [
            hit.key for hit in shared.search(query, k=5)
        ]


@pytest.mark.parametrize("kind", ["flat", "ivf", "hnsw", "pq"])
def test_incremental_admission_never_rebuilds(kind):
    """Pure admission performs zero full index rebuilds.

    IVF's single threshold-crossing retrain and PQ's one-time codebook fit
    are the only structure events any index reports while growing; removals
    may additionally trigger HNSW tombstone compaction, which stays bounded
    by the removal count rather than firing per mutation.
    """
    rng = np.random.default_rng(13)
    index = _indexes(kind, arena=None)
    for key in range(64):
        index.add(key, rng.normal(size=DIM).astype(np.float32))
        # Admission alone: IVF's one retrain at its training threshold is
        # the only allowed structure event, and only when it first trains.
        assert index.rebuilds <= (1 if kind == "ivf" else 0)
    settled = index.rebuilds
    next_key = 64
    removals = 200
    for _ in range(removals):
        index.remove(next_key - 64)
        index.add(next_key, rng.normal(size=DIM).astype(np.float32))
        next_key += 1
    if kind == "hnsw":
        # Tombstone compaction amortises: far fewer sweeps than removals.
        assert index.rebuilds - settled <= removals // 32
    else:
        assert index.rebuilds == settled
    if kind in ("flat", "pq"):
        assert index.rebuilds == 0
