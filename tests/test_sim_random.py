"""Tests for named RNG streams and seed derivation."""

from repro.sim import RngRegistry
from repro.sim.random import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_similar_names_unrelated(self):
        seeds = {derive_seed(0, f"stream{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123, "anything") < 2**64


class TestRngRegistry:
    def test_streams_cached_by_name(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_independent(self):
        registry = RngRegistry(seed=1)
        a_values = registry.stream("a").random(5).tolist()
        b_values = registry.stream("b").random(5).tolist()
        assert a_values != b_values

    def test_same_seed_same_draws(self):
        first = RngRegistry(seed=9).stream("net").random(10)
        second = RngRegistry(seed=9).stream("net").random(10)
        assert first.tolist() == second.tolist()

    def test_consuming_one_stream_does_not_shift_another(self):
        registry_a = RngRegistry(seed=5)
        registry_a.stream("one").random(1000)
        from_disturbed = registry_a.stream("two").random(3).tolist()
        registry_b = RngRegistry(seed=5)
        from_fresh = registry_b.stream("two").random(3).tolist()
        assert from_disturbed == from_fresh

    def test_fork_changes_namespace(self):
        base = RngRegistry(seed=5)
        fork = base.fork("trial-1")
        assert fork.seed != base.seed
        assert (
            base.stream("x").random(3).tolist()
            != fork.stream("x").random(3).tolist()
        )

    def test_fork_deterministic(self):
        assert RngRegistry(3).fork("t").seed == RngRegistry(3).fork("t").seed
