"""Frame protocol and wire-conversion tests for the multi-process tier.

Covers the length-prefixed framing (round trips, clean EOF, truncation,
the oversize cap) over real socketpairs, the codec registry (pickle always;
msgpack only when installed), and the wire-structure conversions the router
and workers exchange.
"""

import socket
import struct

import numpy as np
import pytest

from repro.core.types import FetchResult, Query
from repro.serving.proc import wire
from repro.serving.proc.protocol import (
    MAX_FRAME,
    FrameError,
    available_codecs,
    encode_frame,
    get_codec,
    recv_frame,
    send_frame,
)


def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        payloads = [b"", b"x", b"hello world" * 1000, bytes(range(256))]
        for payload in payloads:
            send_frame(left, payload)
        for payload in payloads:
            assert recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_frame_clean_eof_returns_none():
    left, right = socket.socketpair()
    try:
        send_frame(left, b"last")
        left.close()
        assert recv_frame(right) == b"last"
        assert recv_frame(right) is None
    finally:
        right.close()


def test_frame_truncated_mid_payload_raises():
    left, right = socket.socketpair()
    try:
        frame = encode_frame(b"abcdefgh")
        left.sendall(frame[: len(frame) - 3])  # header + partial payload
        left.close()
        with pytest.raises(FrameError):
            recv_frame(right)
    finally:
        right.close()


def test_frame_oversize_header_raises_without_allocating():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME + 1))
        left.close()
        with pytest.raises(FrameError):
            recv_frame(right)
    finally:
        right.close()


def test_encode_frame_rejects_oversize_payload():
    class Huge(bytes):
        def __len__(self):
            return MAX_FRAME + 1

    with pytest.raises(FrameError):
        encode_frame(Huge())


def test_pickle_codec_round_trips_wire_structures():
    codec = get_codec("pickle")
    message = [3, "lookup_batch", [[["q", None, None, 0.5, 1.0, {}], 0.25]], False]
    assert codec.loads(codec.dumps(message)) == message


def test_available_codecs_always_has_pickle():
    names = available_codecs()
    assert "pickle" in names
    assert set(names) <= {"pickle", "msgpack"}


def test_unknown_codec_rejected():
    with pytest.raises(ValueError):
        get_codec("json")


def test_msgpack_codec_round_trips_when_installed():
    pytest.importorskip("msgpack")
    codec = get_codec("msgpack")
    message = [7, "insert", [{"a": 1}, [1, 2, 3], "text", None, 0.5]]
    assert codec.loads(codec.dumps(message)) == message


# -- wire conversions ---------------------------------------------------------
def test_query_wire_round_trip():
    query = Query(
        "what is the capital", tool="search", fact_id="F1", metadata={"k": "v"}
    )
    back = wire.query_from_wire(wire.query_to_wire(query))
    assert back.text == query.text
    assert back.tool == query.tool
    assert back.fact_id == query.fact_id
    assert dict(back.metadata) == {"k": "v"}


def test_fetch_wire_round_trip():
    fetch = FetchResult(
        result="payload", latency=0.125, service_latency=0.1, cost=0.002, retries=1
    )
    back = wire.fetch_from_wire(wire.fetch_to_wire(fetch))
    assert back == fetch


def test_stats_tuples_aggregate_exactly():
    tuples = [[3, 1, 0, 2, 0, 10], [4, 0, 1, 0, 0, 7]]
    stats = wire.stats_from_tuples(tuples)
    assert stats.inserts == 7
    assert stats.evictions == 1
    assert stats.expirations == 1
    assert stats.rejected_duplicates == 2
    assert wire.usage_from_tuples(tuples) == 17


def test_element_wire_drops_embedding_and_arena_slot():
    from repro.core.element import SemanticElement

    element = SemanticElement(
        element_id=5,
        key="k",
        truth_key="tk",
        value="v",
        embedding=np.ones(8, dtype=np.float32),
        created_at=0.0,
        expires_at=10.0,
    )
    back = wire.element_from_wire(wire.element_to_wire(element))
    assert back.element_id == 5
    assert back.truth_key == "tk"
    assert back.value == "v"
    assert back.arena_slot is None
    assert back.embedding.size == 0  # vectors never cross the wire
