"""Tests for the GPU device and partition model."""

import pytest

from repro.serving import GpuDevice, GpuPartition
from repro.sim import Simulator


class TestGpuPartition:
    def test_service_time_scales_linearly_by_default(self, sim):
        partition = GpuPartition(sim, "agent", share=0.5)
        assert partition.service_time(1.0) == pytest.approx(2.0)

    def test_speed_exponent_sublinear(self, sim):
        partition = GpuPartition(sim, "agent", share=0.8, speed_exponent=0.3)
        assert partition.service_time(0.6) == pytest.approx(0.6 / 0.8**0.3)

    def test_full_share_runs_at_native_speed(self, sim):
        partition = GpuPartition(sim, "agent", share=1.0)
        assert partition.service_time(0.6) == pytest.approx(0.6)

    def test_execute_occupies_slot_for_service_time(self, sim):
        partition = GpuPartition(sim, "agent", share=1.0, slots=1)
        done = []

        def job(work):
            duration = yield from partition.execute(work)
            done.append((sim.now, duration))

        sim.process(job(0.5))
        sim.process(job(0.5))
        sim.run()
        # Second job queues behind the first on the single slot.
        assert done == [(0.5, 0.5), (1.0, 0.5)]

    def test_slots_allow_parallel_batches(self, sim):
        partition = GpuPartition(sim, "agent", share=1.0, slots=2)
        done = []

        def job():
            yield from partition.execute(0.5)
            done.append(sim.now)

        for _ in range(2):
            sim.process(job())
        sim.run()
        assert done == [0.5, 0.5]

    def test_busy_seconds_accumulate(self, sim):
        partition = GpuPartition(sim, "agent", share=0.5, slots=1)

        def job():
            yield from partition.execute(0.5)

        sim.process(job())
        sim.run()
        assert partition.busy_seconds == pytest.approx(1.0)
        assert partition.completed == 1

    def test_utilization(self, sim):
        partition = GpuPartition(sim, "agent", share=1.0, slots=2)

        def job():
            yield from partition.execute(1.0)

        sim.process(job())
        sim.run()
        assert partition.utilization(horizon=1.0) == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            GpuPartition(sim, "x", share=0.0)
        with pytest.raises(ValueError):
            GpuPartition(sim, "x", share=1.5)
        with pytest.raises(ValueError):
            GpuPartition(sim, "x", share=0.5, slots=0)
        partition = GpuPartition(sim, "x", share=0.5)
        with pytest.raises(ValueError):
            partition.service_time(-1.0)


class TestGpuDevice:
    def test_partitions_cannot_oversubscribe(self, sim):
        gpu = GpuDevice(sim)
        gpu.partition("agent", 0.8)
        with pytest.raises(ValueError):
            gpu.partition("judger", 0.3)

    def test_exact_full_allocation_allowed(self, sim):
        gpu = GpuDevice(sim)
        gpu.partition("agent", 0.8)
        gpu.partition("judger", 0.2)
        assert set(gpu.partitions) == {"agent", "judger"}

    def test_duplicate_partition_name_rejected(self, sim):
        gpu = GpuDevice(sim)
        gpu.partition("agent", 0.5)
        with pytest.raises(ValueError):
            gpu.partition("agent", 0.2)

    def test_rental_seconds_track_wall_time(self, sim):
        gpu = GpuDevice(sim)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert gpu.rental_gpu_seconds == pytest.approx(10.0)

    def test_busy_seconds_sum_partitions(self, sim):
        gpu = GpuDevice(sim)
        agent = gpu.partition("agent", 0.5, slots=1)
        judger = gpu.partition("judger", 0.5, slots=1)

        def job(partition, work):
            yield from partition.execute(work)

        sim.process(job(agent, 0.25))
        sim.process(job(judger, 0.25))
        sim.run()
        assert gpu.busy_seconds() == pytest.approx(1.0)  # 0.5 wall each.
