"""Tests for cache snapshot/restore."""

import pytest

from repro.ann import FlatIndex
from repro.core import AsteriaCache, CacheSnapshot, Query, Sine
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger


def fetch(result="answer", latency=0.4, cost=0.005, tokens=16):
    return FetchResult(
        result=result, latency=latency, service_latency=latency, cost=cost,
        size_tokens=tokens,
    )


def make_cache(ttl=3600.0, capacity=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    return AsteriaCache(sine, capacity_items=capacity, default_ttl=ttl)


def populate(cache, n=5):
    for index in range(n):
        element = cache.insert(
            Query(f"distinct topic {index} kangaroo", fact_id=f"F{index}",
                  staticity=8),
            fetch(result=f"answer-{index}", cost=0.01 * (index + 1)),
            now=float(index * 10),
        )
        for hit in range(index):
            element.record_hit(float(index * 10 + hit + 1))
    return cache


class TestSnapshotRoundtrip:
    def test_json_roundtrip(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        restored = CacheSnapshot.from_json(snapshot.to_json())
        assert restored.records == snapshot.records
        assert restored.taken_at == snapshot.taken_at

    def test_file_roundtrip(self, tmp_path):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        path = tmp_path / "cache.json"
        snapshot.save(path)
        assert CacheSnapshot.load(path).records == snapshot.records

    def test_unknown_version_rejected(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        payload = snapshot.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            CacheSnapshot.from_json(payload)

    def test_infinite_ttl_encoded_as_null(self):
        cache = make_cache(ttl=None)
        populate(cache, n=1)
        snapshot = CacheSnapshot.of(cache)
        assert snapshot.records[0]["expires_at"] is None
        assert '"expires_at": null' in snapshot.to_json()


class TestRestore:
    def test_restore_preserves_contents_and_metadata(self):
        original = populate(make_cache())
        snapshot = CacheSnapshot.of(original)
        fresh = make_cache()
        restored = snapshot.restore_into(fresh, now=snapshot.taken_at)
        assert restored == len(original)
        by_truth = {
            element.truth_key: element for element in fresh.elements.values()
        }
        for element in original.elements.values():
            twin = by_truth[element.truth_key]
            assert twin.value == element.value
            assert twin.frequency == element.frequency
            assert twin.staticity == element.staticity
            assert twin.retrieval_cost == element.retrieval_cost

    def test_restored_cache_serves_semantic_hits(self):
        original = make_cache()
        original.insert(
            Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0
        )
        snapshot = CacheSnapshot.of(original)
        fresh = make_cache()
        snapshot.restore_into(fresh, now=0.0)
        result = fresh.lookup(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert result.match is not None

    def test_restore_shifts_timestamps(self):
        original = make_cache(ttl=100.0)
        original.insert(Query("topic one", fact_id="F"), fetch(), now=50.0)
        snapshot = CacheSnapshot.of(original, now=60.0)
        fresh = make_cache(ttl=100.0)
        snapshot.restore_into(fresh, now=1000.0)
        element = next(iter(fresh.elements.values()))
        # Entry was 10 s old with 90 s of TTL left; both ages preserved.
        assert element.created_at == pytest.approx(990.0)
        assert element.expires_at == pytest.approx(1090.0)

    def test_expired_entries_dropped_on_restore(self):
        original = make_cache(ttl=10.0)
        original.insert(Query("topic one", fact_id="A"), fetch(), now=0.0)
        original.insert(Query("topic two", fact_id="B"), fetch(), now=100.0)
        snapshot = CacheSnapshot.of(original, now=105.0)  # A already dead
        fresh = make_cache(ttl=10.0)
        restored = snapshot.restore_into(fresh, now=105.0)
        assert restored == 1
        assert next(iter(fresh.elements.values())).truth_key == "B"

    def test_restore_into_nonempty_cache_rejected(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        target = populate(make_cache(), n=1)
        with pytest.raises(ValueError):
            snapshot.restore_into(target)

    def test_restore_respects_capacity(self):
        snapshot = CacheSnapshot.of(populate(make_cache(), n=8))
        small = make_cache(capacity=3)
        snapshot.restore_into(small, now=snapshot.taken_at)
        assert len(small) <= 3


class TestStaticityTTL:
    def test_scaling_shortens_ephemeral_life(self):
        cache = make_cache(ttl=1000.0)
        cache.staticity_ttl_scaling = True
        stable = cache.insert(
            Query("history of rome empire", fact_id="A", staticity=10),
            fetch(), 0.0,
        )
        ephemeral = cache.insert(
            Query("price of copper futures", fact_id="B", staticity=2),
            fetch(), 0.0,
        )
        assert stable.expires_at > ephemeral.expires_at
        assert ephemeral.expires_at <= 0.0 + 1000.0 * 0.3 + 1e-9

    def test_disabled_by_default(self):
        cache = make_cache(ttl=1000.0)
        element = cache.insert(
            Query("price of copper futures", fact_id="B", staticity=2),
            fetch(), 0.0,
        )
        assert element.expires_at == pytest.approx(1000.0)


class TestInvalidate:
    def test_predicate_invalidation(self):
        cache = populate(make_cache())
        removed = cache.invalidate(lambda element: element.retrieval_cost > 0.025)
        assert removed == 3  # F2, F3, F4 at costs 0.03, 0.04, 0.05
        assert all(
            element.retrieval_cost <= 0.025 for element in cache.elements.values()
        )

    def test_invalidated_entries_unfindable(self):
        cache = make_cache()
        cache.insert(Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0)
        cache.invalidate(lambda element: element.truth_key == "F")
        assert not cache.contains_semantic(
            Query("mona lisa painter", fact_id="F")
        )

    def test_no_match_removes_nothing(self):
        cache = populate(make_cache())
        before = len(cache)
        assert cache.invalidate(lambda element: False) == 0
        assert len(cache) == before
