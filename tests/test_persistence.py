"""Tests for cache snapshot/restore."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import FlatIndex
from repro.core import AsteriaCache, CacheSnapshot, Query, Sine
from repro.core.persistence import SNAPSHOT_VERSION, SnapshotVersionError
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger


def fetch(result="answer", latency=0.4, cost=0.005, tokens=16):
    return FetchResult(
        result=result, latency=latency, service_latency=latency, cost=cost,
        size_tokens=tokens,
    )


def make_cache(ttl=3600.0, capacity=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    return AsteriaCache(sine, capacity_items=capacity, default_ttl=ttl)


def populate(cache, n=5):
    for index in range(n):
        element = cache.insert(
            Query(f"distinct topic {index} kangaroo", fact_id=f"F{index}",
                  staticity=8),
            fetch(result=f"answer-{index}", cost=0.01 * (index + 1)),
            now=float(index * 10),
        )
        for hit in range(index):
            element.record_hit(float(index * 10 + hit + 1))
    return cache


class TestSnapshotRoundtrip:
    def test_json_roundtrip(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        restored = CacheSnapshot.from_json(snapshot.to_json())
        assert restored.records == snapshot.records
        assert restored.taken_at == snapshot.taken_at

    def test_file_roundtrip(self, tmp_path):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        path = tmp_path / "cache.json"
        snapshot.save(path)
        assert CacheSnapshot.load(path).records == snapshot.records

    def test_unknown_version_rejected(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        payload = snapshot.to_json().replace(
            f'"version": {SNAPSHOT_VERSION}', '"version": 99'
        )
        assert '"version": 99' in payload
        with pytest.raises(SnapshotVersionError) as excinfo:
            CacheSnapshot.from_json(payload)
        # The error names the bad version and the supported range instead of
        # surfacing a raw KeyError from a missing field.
        message = str(excinfo.value)
        assert "99" in message
        assert str(SNAPSHOT_VERSION) in message
        assert "version" in message

    def test_infinite_ttl_encoded_as_null(self):
        cache = make_cache(ttl=None)
        populate(cache, n=1)
        snapshot = CacheSnapshot.of(cache)
        assert snapshot.records[0]["expires_at"] is None
        assert '"expires_at": null' in snapshot.to_json()


class TestRestore:
    def test_restore_preserves_contents_and_metadata(self):
        original = populate(make_cache())
        snapshot = CacheSnapshot.of(original)
        fresh = make_cache()
        restored = snapshot.restore_into(fresh, now=snapshot.taken_at)
        assert restored == len(original)
        by_truth = {
            element.truth_key: element for element in fresh.elements.values()
        }
        for element in original.elements.values():
            twin = by_truth[element.truth_key]
            assert twin.value == element.value
            assert twin.frequency == element.frequency
            assert twin.staticity == element.staticity
            assert twin.retrieval_cost == element.retrieval_cost

    def test_restored_cache_serves_semantic_hits(self):
        original = make_cache()
        original.insert(
            Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0
        )
        snapshot = CacheSnapshot.of(original)
        fresh = make_cache()
        snapshot.restore_into(fresh, now=0.0)
        result = fresh.lookup(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert result.match is not None

    def test_restore_shifts_timestamps(self):
        original = make_cache(ttl=100.0)
        original.insert(Query("topic one", fact_id="F"), fetch(), now=50.0)
        snapshot = CacheSnapshot.of(original, now=60.0)
        fresh = make_cache(ttl=100.0)
        snapshot.restore_into(fresh, now=1000.0)
        element = next(iter(fresh.elements.values()))
        # Entry was 10 s old with 90 s of TTL left; both ages preserved.
        assert element.created_at == pytest.approx(990.0)
        assert element.expires_at == pytest.approx(1090.0)

    def test_expired_entries_dropped_on_restore(self):
        original = make_cache(ttl=10.0)
        original.insert(Query("topic one", fact_id="A"), fetch(), now=0.0)
        original.insert(Query("topic two", fact_id="B"), fetch(), now=100.0)
        snapshot = CacheSnapshot.of(original, now=105.0)  # A already dead
        fresh = make_cache(ttl=10.0)
        restored = snapshot.restore_into(fresh, now=105.0)
        assert restored == 1
        assert next(iter(fresh.elements.values())).truth_key == "B"

    def test_restore_into_nonempty_cache_rejected(self):
        snapshot = CacheSnapshot.of(populate(make_cache()))
        target = populate(make_cache(), n=1)
        with pytest.raises(ValueError):
            snapshot.restore_into(target)

    def test_restore_respects_capacity(self):
        snapshot = CacheSnapshot.of(populate(make_cache(), n=8))
        small = make_cache(capacity=3)
        snapshot.restore_into(small, now=snapshot.taken_at)
        assert len(small) <= 3


#: One randomized element: unicode key text, staticity, optional finite TTL
#: (None = never expires), and extra recorded hits.
element_entries = st.lists(
    st.tuples(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)),
            min_size=1,
            max_size=24,
        ),
        st.integers(min_value=1, max_value=10),
        st.one_of(
            st.none(),
            st.floats(min_value=1.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
        ),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=8,
)


def _randomized_cache(entries):
    cache = make_cache(ttl=None)
    for index, (text, staticity, ttl, hits) in enumerate(entries):
        element = cache.insert(
            Query(f"{text} entry {index}", fact_id=f"F{index}",
                  staticity=staticity),
            fetch(result=f"answer {text}"),
            now=float(index),
        )
        element.expires_at = (
            math.inf if ttl is None else element.created_at + ttl
        )
        for hit in range(hits):
            element.record_hit(float(index) + hit + 1.0)
    return cache


class TestSnapshotProperties:
    """Property-based strict-JSON round-trip over randomized caches."""

    @settings(max_examples=30, deadline=None)
    @given(entries=element_entries)
    def test_roundtrip_is_lossless_and_strict_json(self, entries):
        cache = _randomized_cache(entries)
        snapshot = CacheSnapshot.of(cache)
        payload = snapshot.to_json()
        # Strict JSON: no NaN/Infinity tokens anywhere in the payload.
        json.loads(
            payload,
            parse_constant=lambda token: pytest.fail(
                f"non-strict JSON token {token!r} in snapshot"
            ),
        )
        parsed = CacheSnapshot.from_json(payload)
        assert parsed.records == snapshot.records
        assert parsed.next_id == snapshot.next_id
        assert parsed.stats == snapshot.stats
        fresh = make_cache(ttl=None)
        restored = parsed.restore_into(
            fresh, now=parsed.taken_at, drop_expired=False
        )
        assert restored == len(cache)
        for element_id, element in cache.elements.items():
            twin = fresh.elements[element_id]
            assert twin.key == element.key
            assert twin.value == element.value
            assert twin.staticity == element.staticity
            assert twin.frequency == element.frequency
            assert twin.expires_at == element.expires_at
        assert fresh._next_id == cache._next_id

    @settings(max_examples=10, deadline=None)
    @given(entries=element_entries)
    def test_infinite_expiry_survives_encode_decode(self, entries):
        cache = _randomized_cache(entries)
        payload = CacheSnapshot.of(cache).to_json()
        fresh = make_cache(ttl=None)
        CacheSnapshot.from_json(payload).restore_into(
            fresh, now=None, drop_expired=False
        )
        immortal = {
            element_id
            for element_id, element in cache.elements.items()
            if math.isinf(element.expires_at)
        }
        for element_id in immortal:
            assert math.isinf(fresh.elements[element_id].expires_at)

    def test_nan_staticity_rejected_not_emitted(self):
        cache = populate(make_cache(), n=1)
        element = next(iter(cache.elements.values()))
        element.staticity = float("nan")
        with pytest.raises(ValueError):
            CacheSnapshot.of(cache).to_json()


class TestV1Migration:
    def _v1_payload(self):
        source = populate(make_cache())
        records = []
        for record in CacheSnapshot.of(source).records:
            record = dict(record)
            del record["element_id"]  # v1 records carried no identity
            records.append(record)
        return source, json.dumps(
            {"version": 1, "taken_at": 40.0, "records": records}
        )

    def test_v1_payload_gets_sequential_ids(self):
        source, payload = self._v1_payload()
        migrated = CacheSnapshot.from_json(payload)
        assert [record["element_id"] for record in migrated.records] == [
            1, 2, 3, 4, 5,
        ]
        assert migrated.next_id == 6
        assert migrated.version == SNAPSHOT_VERSION
        fresh = make_cache()
        assert migrated.restore_into(fresh, now=40.0) == len(source)
        assert fresh._next_id == 6

    def test_v1_payload_without_stats_restores(self):
        _, payload = self._v1_payload()
        migrated = CacheSnapshot.from_json(payload)
        assert migrated.stats is None
        fresh = make_cache()
        migrated.restore_into(fresh, now=40.0, restore_stats=True)
        assert fresh.stats.inserts == 0  # nothing to restore, nothing broken


class TestStaticityTTL:
    def test_scaling_shortens_ephemeral_life(self):
        cache = make_cache(ttl=1000.0)
        cache.staticity_ttl_scaling = True
        stable = cache.insert(
            Query("history of rome empire", fact_id="A", staticity=10),
            fetch(), 0.0,
        )
        ephemeral = cache.insert(
            Query("price of copper futures", fact_id="B", staticity=2),
            fetch(), 0.0,
        )
        assert stable.expires_at > ephemeral.expires_at
        assert ephemeral.expires_at <= 0.0 + 1000.0 * 0.3 + 1e-9

    def test_disabled_by_default(self):
        cache = make_cache(ttl=1000.0)
        element = cache.insert(
            Query("price of copper futures", fact_id="B", staticity=2),
            fetch(), 0.0,
        )
        assert element.expires_at == pytest.approx(1000.0)


class TestInvalidate:
    def test_predicate_invalidation(self):
        cache = populate(make_cache())
        removed = cache.invalidate(lambda element: element.retrieval_cost > 0.025)
        assert removed == 3  # F2, F3, F4 at costs 0.03, 0.04, 0.05
        assert all(
            element.retrieval_cost <= 0.025 for element in cache.elements.values()
        )

    def test_invalidated_entries_unfindable(self):
        cache = make_cache()
        cache.insert(Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0)
        cache.invalidate(lambda element: element.truth_key == "F")
        assert not cache.contains_semantic(
            Query("mona lisa painter", fact_id="F")
        )

    def test_no_match_removes_nothing(self):
        cache = populate(make_cache())
        before = len(cache)
        assert cache.invalidate(lambda element: False) == 0
        assert len(cache) == before
