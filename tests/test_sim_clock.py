"""Tests for the virtual clock."""

import pytest

from repro.sim import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == 3.0

    def test_advance_by_zero_is_allowed(self):
        clock = SimClock(1.0)
        assert clock.advance(0.0) == 1.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_jumps(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.9)

    def test_repr_contains_time(self):
        assert "1.5" in repr(SimClock(1.5))
