"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ann import FlatIndex
from repro.core import AsteriaCache, AsteriaConfig, AsteriaEngine, Sine
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger
from repro.network import RemoteDataService
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def embedder() -> HashingEmbedder:
    return HashingEmbedder(seed=7)


@pytest.fixture
def judger() -> SimulatedJudger:
    return SimulatedJudger(seed=3)


@pytest.fixture
def sine(embedder, judger) -> Sine:
    return Sine(embedder, FlatIndex(embedder.dim), judger)


@pytest.fixture
def cache(sine) -> AsteriaCache:
    return AsteriaCache(sine, capacity_items=64)


@pytest.fixture
def remote() -> RemoteDataService:
    return RemoteDataService(latency=0.4)


@pytest.fixture
def engine(cache, remote) -> AsteriaEngine:
    return AsteriaEngine(cache, remote, AsteriaConfig())
