"""Lifecycle tests for the contiguous embedding arena (both tiers)."""

import numpy as np
import pytest

from repro.ann.base import normalize
from repro.core.arena import EmbeddingArena, QuantizedArena, build_arena

DIM = 16


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_slots_hand_out_in_order():
    arena = EmbeddingArena(DIM, initial_capacity=8)
    slots = [arena.allocate(np.ones(DIM, dtype=np.float32)) for _ in range(4)]
    assert slots == [0, 1, 2, 3]
    assert arena.high_water == 4
    assert len(arena) == 4


def test_allocate_normalizes_like_base(rng):
    arena = EmbeddingArena(DIM)
    vector = rng.normal(size=DIM).astype(np.float32)
    slot = arena.allocate(vector)
    np.testing.assert_array_equal(arena.get(slot), normalize(vector))


def test_allocate_batch_matches_scalar(rng):
    scalar = EmbeddingArena(DIM)
    batched = EmbeddingArena(DIM)
    vectors = rng.normal(size=(10, DIM)).astype(np.float32)
    scalar_slots = [scalar.allocate(v) for v in vectors]
    batch_slots = batched.allocate_batch(vectors)
    assert scalar_slots == list(batch_slots)
    np.testing.assert_array_equal(scalar.rows(), batched.rows())


def test_zero_vector_stored_as_zero():
    arena = EmbeddingArena(DIM)
    slot = arena.allocate(np.zeros(DIM, dtype=np.float32))
    assert not arena.get(slot).any()


def test_release_zeroes_row_and_reuses_slot(rng):
    arena = EmbeddingArena(DIM, initial_capacity=8)
    slots = [arena.allocate(rng.normal(size=DIM)) for _ in range(3)]
    arena.release(slots[1])
    assert slots[1] not in arena
    assert not arena._matrix[slots[1]].any()
    again = arena.allocate(rng.normal(size=DIM))
    assert again == slots[1]
    assert arena.reuses == 1


def test_release_unallocated_slot_raises():
    arena = EmbeddingArena(DIM)
    with pytest.raises(KeyError):
        arena.release(0)
    slot = arena.allocate(np.ones(DIM))
    arena.release(slot)
    with pytest.raises(KeyError):
        arena.release(slot)


def test_get_rejects_freed_slot():
    arena = EmbeddingArena(DIM)
    slot = arena.allocate(np.ones(DIM))
    arena.release(slot)
    with pytest.raises(KeyError):
        arena.get(slot)


def test_high_water_sinks_past_trailing_release(rng):
    arena = EmbeddingArena(DIM, initial_capacity=8)
    slots = [arena.allocate(rng.normal(size=DIM)) for _ in range(5)]
    arena.release(slots[4])
    arena.release(slots[3])
    assert arena.high_water == 3
    arena.release(slots[1])  # interior hole: mark stays
    assert arena.high_water == 3


def test_grow_doubles_capacity_and_preserves_rows(rng):
    arena = EmbeddingArena(DIM, initial_capacity=2)
    vectors = rng.normal(size=(5, DIM)).astype(np.float32)
    slots = [arena.allocate(v) for v in vectors]
    assert arena.capacity == 8
    assert arena.grows == 2
    for slot, vector in zip(slots, vectors):
        np.testing.assert_array_equal(arena.get(slot), normalize(vector))


def test_churn_reuses_free_slots_without_growth(rng):
    """Admit/evict churn at steady occupancy never grows the matrix."""
    arena = EmbeddingArena(DIM, initial_capacity=32)
    live = [arena.allocate(rng.normal(size=DIM)) for _ in range(24)]
    for _ in range(500):
        victim = live.pop(int(rng.integers(len(live))))
        arena.release(victim)
        live.append(arena.allocate(rng.normal(size=DIM)))
    assert arena.grows == 0
    assert arena.capacity == 32
    assert arena.reuses >= 500 - 32
    assert len(arena) == 24


def test_compact_packs_live_rows_and_remaps(rng):
    arena = EmbeddingArena(DIM, initial_capacity=16)
    vectors = {slot: None for slot in range(8)}
    for slot in list(vectors):
        vector = rng.normal(size=DIM).astype(np.float32)
        assert arena.allocate(vector) == slot
        vectors[slot] = normalize(vector)
    for slot in (0, 2, 5, 7):
        arena.release(slot)
        del vectors[slot]
    remap = arena.compact()
    assert sorted(arena.live_slots()) == [0, 1, 2, 3]
    assert arena.high_water == 4
    assert arena.compactions == 1
    for old, expected in vectors.items():
        new = remap.get(old, old)
        np.testing.assert_array_equal(arena.get(new), expected)
    # The vacated tail is zeroed, so it can never outscore a live row.
    assert not arena._matrix[4:].any()


def test_compact_preserves_scores(rng):
    arena = EmbeddingArena(DIM, initial_capacity=16)
    kept = {}
    for i in range(10):
        vector = rng.normal(size=DIM).astype(np.float32)
        kept[arena.allocate(vector)] = normalize(vector)
    for slot in (1, 4, 8, 9):
        arena.release(slot)
        del kept[slot]
    query = normalize(rng.normal(size=DIM))[None, :]
    scored = arena.scores(query)[0]
    before = {slot: scored[slot] for slot in kept}
    remap = arena.compact()
    after = arena.scores(query)[0]
    # BLAS may block the smaller matrix differently, so allow last-ulp drift.
    for old, score in before.items():
        assert after[remap.get(old, old)] == pytest.approx(score, abs=1e-6)


def test_compact_noop_when_already_packed(rng):
    arena = EmbeddingArena(DIM)
    for _ in range(4):
        arena.allocate(rng.normal(size=DIM))
    assert arena.compact() == {}
    assert arena.high_water == 4


def test_scores_slice_to_high_water(rng):
    arena = EmbeddingArena(DIM, initial_capacity=64)
    for _ in range(5):
        arena.allocate(rng.normal(size=DIM))
    queries = normalize(rng.normal(size=DIM))[None, :]
    assert arena.scores(queries).shape == (1, 5)


def test_views_are_read_only(rng):
    arena = EmbeddingArena(DIM)
    slot = arena.allocate(rng.normal(size=DIM))
    with pytest.raises(ValueError):
        arena.get(slot)[0] = 1.0
    with pytest.raises(ValueError):
        arena.rows()[0, 0] = 1.0


def test_dim_validation():
    arena = EmbeddingArena(DIM)
    with pytest.raises(ValueError):
        arena.allocate(np.ones(DIM + 1, dtype=np.float32))
    with pytest.raises(ValueError):
        arena.allocate_batch(np.ones((2, DIM - 1), dtype=np.float32))
    with pytest.raises(ValueError):
        EmbeddingArena(0)
    with pytest.raises(ValueError):
        EmbeddingArena(DIM, initial_capacity=0)


class TestQuantizedArena:
    def test_roundtrip_close_to_unit_vector(self, rng):
        arena = QuantizedArena(DIM)
        vector = rng.normal(size=DIM).astype(np.float32)
        slot = arena.allocate(vector)
        expected = normalize(vector)
        got = arena.get(slot)
        assert got.dtype == np.float32
        # Symmetric int8: worst-case error is half a code step per component.
        step = np.abs(expected).max() / 127.0
        assert np.abs(got - expected).max() <= step / 2 + 1e-7
    def test_scores_match_dequantized_rows(self, rng):
        arena = QuantizedArena(DIM)
        slots = [arena.allocate(rng.normal(size=DIM)) for _ in range(6)]
        queries = normalize(rng.normal(size=DIM))[None, :].astype(np.float32)
        scores = arena.scores(queries)
        for slot in slots:
            expected = float(queries[0] @ arena.get(slot))
            assert scores[0, slot] == pytest.approx(expected, abs=1e-6)

    def test_memory_is_about_4x_smaller(self):
        f32 = EmbeddingArena(256, initial_capacity=1024)
        int8 = QuantizedArena(256, initial_capacity=1024)
        ratio = f32.memory_bytes() / int8.memory_bytes()
        assert ratio > 3.9

    def test_release_and_compact(self, rng):
        arena = QuantizedArena(DIM, initial_capacity=8)
        rows = {}
        for i in range(6):
            slot = arena.allocate(rng.normal(size=DIM))
            rows[slot] = arena.get(slot)
        for slot in (0, 3):
            arena.release(slot)
            del rows[slot]
        assert arena._scales[0] == 0.0
        remap = arena.compact()
        for old, expected in rows.items():
            np.testing.assert_array_equal(arena.get(remap.get(old, old)), expected)

    def test_zero_vector(self):
        arena = QuantizedArena(DIM)
        slot = arena.allocate(np.zeros(DIM, dtype=np.float32))
        assert not arena.get(slot).any()


def test_build_arena_dispatch():
    assert build_arena(None, DIM) is None
    assert build_arena("none", DIM) is None
    assert isinstance(build_arena("float32", DIM), EmbeddingArena)
    assert isinstance(build_arena("int8", DIM), QuantizedArena)
    with pytest.raises(ValueError):
        build_arena("float16", DIM)
