"""Tests for event primitives: Event, Timeout, AllOf, AnyOf."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout


class TestEvent:
    def test_starts_pending(self):
        event = Event()
        assert not event.triggered
        assert not event.ok

    def test_succeed_sets_value(self):
        event = Event()
        event.succeed(42)
        assert event.triggered and event.ok
        assert event.value == 42

    def test_succeed_default_value_is_none(self):
        event = Event()
        event.succeed()
        assert event.value is None

    def test_double_succeed_rejected(self):
        event = Event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_fail_records_exception(self):
        event = Event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered and not event.ok
        assert event.exception is error

    def test_fail_requires_exception_instance(self):
        event = Event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_raises_while_pending(self):
        event = Event()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_value_reraises_failure(self):
        event = Event()
        event.fail(ValueError("bad"))
        with pytest.raises(ValueError):
            _ = event.value

    def test_callback_after_trigger_runs_immediately_when_unbound(self):
        event = Event()
        event.succeed("x")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_fire_on_trigger(self):
        event = Event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(7)
        assert seen == [7]


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_fires_at_delay(self):
        sim = Simulator()
        timeout = sim.timeout(3.0, value="done")
        sim.run()
        assert sim.now == 3.0
        assert timeout.value == "done"

    def test_zero_delay_fires_at_current_time(self):
        sim = Simulator()
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0

    def test_yielded_unarmed_timeout_is_armed_by_kernel(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(1.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.5]


class TestConditions:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        results = []

        def proc():
            t1 = sim.timeout(2.0, value="slow")
            t2 = sim.timeout(1.0, value="fast")
            values = yield sim.all_of([t1, t2])
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(2.0, ["slow", "fast"])]

    def test_any_of_returns_first_with_index(self):
        sim = Simulator()
        results = []

        def proc():
            t1 = sim.timeout(2.0, value="slow")
            t2 = sim.timeout(1.0, value="fast")
            index, value = yield sim.any_of([t1, t2])
            results.append((sim.now, index, value))

        sim.process(proc())
        sim.run()
        assert results == [(1.0, 1, "fast")]

    def test_empty_condition_rejected(self):
        with pytest.raises(ValueError):
            AllOf([])
        with pytest.raises(ValueError):
            AnyOf([])

    def test_all_of_propagates_child_failure(self):
        sim = Simulator()
        outcome = []

        def crasher():
            yield sim.timeout(0.5)
            raise ValueError("child failed")

        def waiter():
            p = sim.process(crasher())
            t = sim.timeout(2.0)
            try:
                yield sim.all_of([p, t])
            except ValueError:
                outcome.append("caught")

        sim.process(waiter())
        sim.run()
        assert outcome == ["caught"]
