"""Tests for the skewed workload generator."""

from collections import Counter

import pytest

from repro.workloads import SkewedWorkload, build_dataset


@pytest.fixture
def dataset():
    return build_dataset("musique", seed=1)


class TestSkewedWorkload:
    def test_queries_carry_fact_ids(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        for query in workload.queries(20):
            assert query.fact_id in dataset.universe

    def test_popularity_skew_present(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        counts = Counter(query.fact_id for query in workload.queries(3000))
        top_fact = dataset.universe.by_rank(0).fact_id
        tail_fact = dataset.universe.by_rank(len(dataset.universe) - 1).fact_id
        assert counts[top_fact] > 20 * max(1, counts.get(tail_fact, 1))

    def test_surface_forms_vary(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        texts = [query.text for query in workload.queries(500)]
        # Agent-style rephrasing: few exact repeats.
        assert len(set(texts)) > 0.7 * len(texts)

    def test_deterministic_per_seed(self, dataset):
        a = SkewedWorkload(dataset, seed=2).queries(50)
        b = SkewedWorkload(dataset, seed=2).queries(50)
        assert [q.text for q in a] == [q.text for q in b]

    def test_seed_changes_stream(self, dataset):
        a = SkewedWorkload(dataset, seed=2).queries(50)
        b = SkewedWorkload(dataset, seed=3).queries(50)
        assert [q.text for q in a] != [q.text for q in b]

    def test_tasks_follow_chains(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        chains = {tuple(chain) for chain in dataset.chains}
        for task in workload.tasks(20):
            fact_chain = tuple(query.fact_id for query in task.queries)
            assert fact_chain in chains

    def test_single_hop_tasks_have_one_query(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        for task in workload.single_hop_tasks(10):
            assert task.hops == 1
            assert task.answer_fact == task.queries[0].fact_id

    def test_premium_queries_carry_latency_scale(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        scales = {
            query.metadata.get("latency_scale")
            for query in workload.queries(2000)
        }
        assert dataset.profile.premium_latency_scale in scales

    def test_negative_counts_rejected(self, dataset):
        workload = SkewedWorkload(dataset, seed=2)
        with pytest.raises(ValueError):
            workload.queries(-1)
        with pytest.raises(ValueError):
            workload.tasks(-1)
