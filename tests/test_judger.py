"""Tests for the simulated and heuristic judgers."""

import pytest

from repro.judger import HeuristicJudger, JudgeRequest, JudgeVerdict, SimulatedJudger


def request(query="q", cached="c", q_truth=None, c_truth=None):
    return JudgeRequest(
        query_text=query,
        cached_query=cached,
        query_truth=q_truth,
        cached_truth=c_truth,
    )


class TestJudgeVerdict:
    def test_score_bounds_enforced(self):
        with pytest.raises(ValueError):
            JudgeVerdict(score=1.5)
        with pytest.raises(ValueError):
            JudgeVerdict(score=-0.1)


class TestSimulatedJudger:
    def test_equivalent_pairs_score_high(self):
        judger = SimulatedJudger(seed=3)
        accepted = sum(
            judger.judge(request(f"q{i}", f"c{i}", "F", "F")).score >= 0.9
            for i in range(500)
        )
        assert accepted / 500 > 0.93

    def test_different_pairs_score_low(self):
        judger = SimulatedJudger(seed=3)
        accepted = sum(
            judger.judge(request(f"q{i}", f"c{i}", "F1", "F2")).score >= 0.9
            for i in range(500)
        )
        assert accepted / 500 < 0.06

    def test_deterministic_per_pair(self):
        judger = SimulatedJudger(seed=3)
        first = judger.judge(request("same", "pair", "F", "F"))
        second = judger.judge(request("same", "pair", "F", "F"))
        assert first.score == second.score

    def test_truth_recorded(self):
        judger = SimulatedJudger(seed=3)
        assert judger.judge(request(q_truth="F", c_truth="F")).truth is True
        assert judger.judge(request(q_truth="F", c_truth="G")).truth is False

    def test_missing_truth_falls_back_to_lexical(self):
        judger = SimulatedJudger(seed=3)
        paraphrase = request(
            "who painted the mona lisa", "tell me who painted mona lisa"
        )
        assert judger.judge(paraphrase).score > 0.9
        unrelated = request("who painted the mona lisa", "weather in oslo")
        assert judger.judge(unrelated).score < 0.1

    def test_missing_truth_rejects_when_fallback_disabled(self):
        judger = SimulatedJudger(seed=3, fallback=None)
        verdict = judger.judge(request())
        assert verdict.score == 0.0
        assert verdict.truth is None

    def test_zero_flip_rate_perfect_separation(self):
        judger = SimulatedJudger(seed=3, flip_rate=0.0)
        positives = [
            judger.judge(request(f"q{i}", "c", "F", "F")).score for i in range(200)
        ]
        negatives = [
            judger.judge(request(f"q{i}", "c", "F", "G")).score for i in range(200)
        ]
        assert min(positives) > max(negatives)

    def test_full_flip_rate_inverts(self):
        judger = SimulatedJudger(seed=3, flip_rate=1.0)
        scores = [
            judger.judge(request(f"q{i}", "c", "F", "F")).score for i in range(100)
        ]
        assert sum(score < 0.5 for score in scores) > 90

    def test_call_counter(self):
        judger = SimulatedJudger(seed=3)
        judger.judge_batch([request(), request()])
        assert judger.calls == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SimulatedJudger(flip_rate=1.5)
        with pytest.raises(ValueError):
            SimulatedJudger(pos_alpha=0.0)

    def test_batch_preserves_order(self):
        judger = SimulatedJudger(seed=3)
        requests = [request(f"q{i}", "c", "F", "F") for i in range(5)]
        batch = judger.judge_batch(requests)
        singles = [SimulatedJudger(seed=3).judge(r) for r in requests]
        assert [v.score for v in batch] == [v.score for v in singles]


class TestHeuristicJudger:
    def test_paraphrase_scores_high(self):
        judger = HeuristicJudger()
        verdict = judger.judge(
            request("who painted the mona lisa", "mona lisa painter")
        )
        assert verdict.score > 0.9

    def test_unrelated_scores_low(self):
        judger = HeuristicJudger()
        verdict = judger.judge(
            request("who painted the mona lisa", "weather in paris today")
        )
        assert verdict.score < 0.1

    def test_overlap_symmetric(self):
        judger = HeuristicJudger()
        assert judger.overlap("a b c", "b c d") == judger.overlap("b c d", "a b c")

    def test_empty_vs_empty_full_overlap(self):
        assert HeuristicJudger().overlap("the of", "a an") == 1.0

    def test_empty_vs_content_no_overlap(self):
        assert HeuristicJudger().overlap("the of", "everest height") == 0.0

    def test_truth_annotation_passthrough(self):
        judger = HeuristicJudger()
        assert judger.judge(request(q_truth="F", c_truth="F")).truth is True
        assert judger.judge(request()).truth is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HeuristicJudger(midpoint=0.0)
        with pytest.raises(ValueError):
            HeuristicJudger(steepness=-1.0)
