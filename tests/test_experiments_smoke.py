"""Smoke tests: every experiment runner executes at reduced scale and
produces rows with the paper's qualitative shape."""

import pytest

from repro.experiments import (
    fig1c_breakdown,
    fig2_zipf,
    fig3_bursts,
    fig7_skewed,
    fig8_trend,
    fig9_swebench,
    fig10_concurrency,
    fig11_breakdown,
    fig12_api_calls,
    fig13_accuracy,
    recalibration_overhead,
    table2_file_freq,
    table4_ratelimit,
    table5_cost,
    table6_lcfu,
    table7_colocation,
    tau_sweep,
)


def by(result, **criteria):
    rows = result.filter(**criteria)
    assert rows, f"no rows matching {criteria}"
    return rows[0]


class TestCharacterisation:
    def test_fig1c_retrieval_share_in_paper_band(self):
        result = fig1c_breakdown.run(n_tasks=40)
        retrieval = by(result, component="external_retrieval")
        assert 0.30 < retrieval["fraction"] < 0.55

    def test_fig2_head_dominates(self):
        result = fig2_zipf.run(window_draws=(("24h", 5000),), n_topics=500)
        total = by(result, topic_rank="top5_total")
        assert total["share"] > 0.15
        assert -1.5 < total["fitted_slope"] < -0.6

    def test_fig3_bursts_and_correlation(self):
        result = fig3_bursts.run(duration=240.0)
        assert all(row["burst_ratio"] > 1.5 for row in result.rows)
        assert all(
            row.get("related_burst_ratio", 2.0) > 1.0 for row in result.rows
        )

    def test_table2_matches_paper_frequencies(self):
        result = table2_file_freq.run(n_issues=400)
        for row in result.rows:
            assert row["measured_freq"] == pytest.approx(
                row["paper_freq"], abs=0.08
            )


class TestEndToEnd:
    def test_fig7_system_ordering(self):
        result = fig7_skewed.run(
            dataset_names=("musique",), cache_ratios=(0.4,), n_tasks=300
        )
        vanilla = by(result, system="vanilla")
        exact = by(result, system="exact")
        asteria = by(result, system="asteria")
        assert asteria["hit_rate"] > 0.75
        assert exact["hit_rate"] < 0.2
        assert asteria["throughput_rps"] > 1.5 * vanilla["throughput_rps"]
        assert asteria["api_calls"] < 0.4 * vanilla["api_calls"]

    def test_fig8_trend_shape(self):
        result = fig8_trend.run(cache_ratios=(0.4,), duration=200.0)
        vanilla = by(result, system="vanilla")
        asteria = by(result, system="asteria")
        assert asteria["hit_rate"] > 0.8
        assert asteria["throughput_rps"] > 1.5 * vanilla["throughput_rps"]

    def test_fig9_swebench_shape(self):
        result = fig9_swebench.run(cache_ratios=(0.6,), n_issues=120)
        vanilla = by(result, system="vanilla")
        asteria = by(result, system="asteria")
        assert 0.25 < asteria["hit_rate"] < 0.85
        assert asteria["throughput_rps"] > vanilla["throughput_rps"]

    def test_fig10_asteria_scales_baselines_saturate(self):
        result = fig10_concurrency.run(
            concurrency_levels=(1, 8), n_tasks=300
        )
        asteria_1 = by(result, system="asteria", concurrency=1)
        asteria_8 = by(result, system="asteria", concurrency=8)
        vanilla_8 = by(result, system="vanilla", concurrency=8)
        assert asteria_8["throughput_rps"] > 4 * asteria_1["throughput_rps"]
        assert asteria_8["throughput_rps"] > 2 * vanilla_8["throughput_rps"]

    def test_fig11_breakdown_shape(self):
        result = fig11_breakdown.run(n_requests=120)
        vanilla = by(result, system="vanilla")
        asteria = by(result, system="asteria")
        assert vanilla["total_s"] == pytest.approx(1.05, abs=0.15)
        assert asteria["total_s"] < 0.8
        assert asteria["cache_check_s"] == pytest.approx(0.02, abs=0.005)
        assert 0.0 < asteria["judger_s"] < 0.05

    def test_fig12_call_reduction(self):
        result = fig12_api_calls.run(n_tasks=400)
        asteria = by(result, system="asteria")
        vanilla = by(result, system="vanilla")
        assert asteria["call_reduction"] > 0.7
        assert asteria["retry_ratio"] < 0.05 < vanilla["retry_ratio"]


class TestTables:
    def test_table4_rate_limit_amplifies_gain(self):
        result = table4_ratelimit.run(n_tasks=300)
        without = by(result, rate_limit="without", system="asteria")
        with_limit = by(result, rate_limit="with", system="asteria")
        assert 1.1 < without["normalized"] < 2.5
        assert with_limit["normalized"] > without["normalized"]

    def test_table5_cost_ordering(self):
        result = table5_cost.run(n_tasks=200)
        vanilla = by(result, configuration="vanilla")
        wo_sharing = by(result, configuration="asteria_wo_sharing")
        asteria = by(result, configuration="asteria")
        assert wo_sharing["total_cost_usd"] > vanilla["total_cost_usd"]
        assert asteria["total_cost_usd"] < wo_sharing["total_cost_usd"]
        assert asteria["thpt_per_dollar"] > 2 * vanilla["thpt_per_dollar"]

    def test_table6_lcfu_trade(self):
        result = table6_lcfu.run(n_tasks=400)
        lru = by(result, policy="lru")
        lcfu = by(result, policy="lcfu")
        assert lcfu["throughput_rps"] >= lru["throughput_rps"]
        assert lcfu["api_cost_usd"] <= lru["api_cost_usd"]

    def test_table7_colocation_retention(self):
        result = table7_colocation.run(n_tasks=200)
        colocated = by(result, configuration="Co-located (MPS 80/20)")
        assert 0.85 < colocated["throughput_retention"] < 1.0
        assert colocated["p99_inflation"] > 0.0
        assert colocated["gpus"] == 1


class TestDeepDives:
    def test_fig13_accuracy_ordering(self):
        result = fig13_accuracy.run(
            dataset_names=("strategyqa",), n_tasks=150
        )
        vanilla = by(result, system="vanilla")
        asteria = by(result, system="asteria")
        ann_only = by(result, system="ann_only")
        assert asteria["em_score"] == pytest.approx(vanilla["em_score"], abs=0.02)
        assert ann_only["em_score"] < vanilla["em_score"] - 0.03

    def test_recalibration_overhead_small(self):
        result = recalibration_overhead.run(n_tasks=300)
        off = by(result, recalibration="off")
        on = by(result, recalibration="on")
        assert on["rounds"] >= 1
        assert on["throughput_rps"] > 0.9 * off["throughput_rps"]

    def test_tau_sweep_gradients(self):
        result = tau_sweep.run(
            tau_sim_values=(0.7, 0.99),
            tau_lsm_values=(0.02, 0.9),
            n_queries=300,
        )
        loose = by(result, tau_sim=0.7, tau_lsm=0.9)
        strict_sim = by(result, tau_sim=0.99, tau_lsm=0.9)
        assert loose["hit_rate"] > strict_sim["hit_rate"]
        loose_lsm = by(result, tau_sim=0.7, tau_lsm=0.02)
        assert loose_lsm["hit_precision"] <= 1.0
        assert loose_lsm["hit_rate"] >= loose["hit_rate"]

    def test_format_table_renders(self):
        result = fig2_zipf.run(window_draws=(("24h", 1000),), n_topics=100)
        text = result.format_table()
        assert "Figure 2" in text and "|" in text
