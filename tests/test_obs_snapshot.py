"""Tests for :mod:`repro.obs.snapshot` — interval sampling, probes,
retention, and the JSON dump consumed by experiments and the CI smoke."""

import json
import math
import time

import pytest

from repro.obs import MetricsRegistry, SnapshotRecorder


def make_clock(step: float = 1.0):
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class ManualClock:
    """A clock tests advance explicitly."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            SnapshotRecorder(interval=0)

    def test_max_samples_must_be_positive(self):
        with pytest.raises(ValueError, match="max_samples"):
            SnapshotRecorder(max_samples=0)


class TestSampling:
    def test_sample_captures_registry_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(engine="sync")
        recorder = SnapshotRecorder(registry, clock=ManualClock())
        row = recorder.sample()
        assert row['c_total{engine="sync"}'] == 1
        counter.inc(engine="sync")
        row = recorder.sample()
        assert row['c_total{engine="sync"}'] == 2
        assert recorder.series('c_total{engine="sync"}') == [1.0, 2.0]

    def test_maybe_sample_gates_on_interval(self):
        clock = ManualClock()
        recorder = SnapshotRecorder(interval=1.0, clock=clock)
        assert recorder.maybe_sample() is not None  # first is always due
        clock.t = 0.5
        assert recorder.maybe_sample() is None
        clock.t = 1.5
        assert recorder.maybe_sample() is not None
        assert len(recorder) == 2

    def test_probes_sampled_alongside_registry(self):
        recorder = SnapshotRecorder(clock=ManualClock())
        recorder.add_probe("hit_rate", lambda: 0.5)
        row = recorder.sample()
        assert row["hit_rate"] == 0.5

    def test_probe_exception_records_nan_not_crash(self):
        recorder = SnapshotRecorder(clock=ManualClock())

        def bad() -> float:
            raise RuntimeError("probe died")

        recorder.add_probe("bad", bad)
        recorder.add_probe("good", lambda: 1.0)
        row = recorder.sample()
        assert math.isnan(row["bad"])
        assert row["good"] == 1.0

    def test_retention_bound_drops_oldest(self):
        clock = make_clock()
        recorder = SnapshotRecorder(max_samples=3, clock=clock)
        recorder.add_probe("tick", clock)
        for _ in range(7):
            recorder.sample()
        assert len(recorder) == 3
        assert recorder.dropped == 4
        assert recorder.times() == sorted(recorder.times())

    def test_series_fills_gaps_with_nan(self):
        recorder = SnapshotRecorder(clock=ManualClock())
        recorder.sample()  # no probe yet -> empty row
        recorder.add_probe("late", lambda: 2.0)
        recorder.sample()
        series = recorder.series("late")
        assert math.isnan(series[0])
        assert series[1] == 2.0
        assert recorder.names() == ["late"]


class TestDump:
    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        recorder = SnapshotRecorder(registry, interval=0.5, clock=make_clock())
        recorder.sample()
        recorder.sample()
        data = recorder.to_dict()
        assert data["interval"] == 0.5
        assert data["samples"] == 2
        assert data["dropped"] == 0
        assert len(data["t"]) == 2
        assert data["series"]["depth"] == [3.0, 3.0]

    def test_save_json_parses_and_serialises_nan_as_null(self, tmp_path):
        recorder = SnapshotRecorder(clock=ManualClock())
        recorder.add_probe("bad", lambda: float("nan"))
        recorder.sample()
        path = tmp_path / "series.json"
        count = recorder.save_json(path)
        data = json.loads(path.read_text())  # must be strict-valid JSON
        assert count == data["samples"] == 1
        assert data["series"]["bad"] == [None]


class TestBackgroundThread:
    def test_start_stop_collects_samples(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        recorder = SnapshotRecorder(registry, interval=0.01)
        recorder.start()
        with pytest.raises(RuntimeError, match="already running"):
            recorder.start()
        time.sleep(0.08)
        recorder.stop()  # takes a final sample
        assert len(recorder) >= 1
        assert recorder.to_dict()["samples"] == len(recorder)
        # Restartable after stop.
        recorder.start()
        recorder.stop(final_sample=False)
