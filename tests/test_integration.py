"""Cross-module integration invariants: the paper's headline claims hold
end-to-end on shared workloads."""

import pytest

from repro.agent import SearchAgent
from repro.core import AsteriaConfig, Query
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_remote,
    build_vanilla_engine,
)
from repro.sim import Simulator
from repro.workloads import (
    SkewedWorkload,
    build_dataset,
    run_task_closed_loop,
    run_task_concurrent,
)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("musique", seed=1)


def run_engine(engine, dataset, n=200, seed=2):
    workload = SkewedWorkload(dataset, seed=seed)
    agent = SearchAgent(engine, answer_step=False)
    return run_task_closed_loop(agent, workload.single_hop_tasks(n))


class TestHeadlineClaims:
    def test_hit_rate_ordering_asteria_exact_vanilla(self, dataset):
        capacity = dataset.capacity_for(0.4)
        asteria = build_asteria_engine(
            build_remote(dataset.universe, seed=3),
            AsteriaConfig(capacity_items=capacity),
            seed=5,
        )
        exact = build_exact_engine(
            build_remote(dataset.universe, seed=3), capacity_items=capacity
        )
        vanilla = build_vanilla_engine(build_remote(dataset.universe, seed=3))
        # 400 tasks amortise the ~60 compulsory cold-start misses.
        run_engine(asteria, dataset, n=400)
        run_engine(exact, dataset, n=400)
        run_engine(vanilla, dataset, n=400)
        assert (
            asteria.metrics.hit_rate
            > exact.metrics.hit_rate
            >= vanilla.metrics.hit_rate
        )
        assert asteria.metrics.hit_rate > 0.75
        assert exact.metrics.hit_rate < 0.25

    def test_correctness_preserved_with_judger(self, dataset):
        capacity = dataset.capacity_for(0.6)
        asteria = build_asteria_engine(
            build_remote(dataset.universe, seed=3),
            AsteriaConfig(capacity_items=capacity),
            seed=5,
        )
        stats = run_engine(asteria, dataset, n=300)
        assert asteria.metrics.accuracy > 0.99
        assert stats.accuracy > 0.99

    def test_ann_only_degrades_correctness(self, dataset):
        capacity = dataset.capacity_for(0.6)
        ann_only = build_asteria_engine(
            build_remote(dataset.universe, seed=3),
            AsteriaConfig(capacity_items=capacity, ann_only=True),
            seed=5,
            name="ann_only",
        )
        run_engine(ann_only, dataset, n=300)
        assert ann_only.metrics.served_incorrect > 0
        assert ann_only.metrics.accuracy < 0.99

    def test_api_cost_reduction(self, dataset):
        capacity = dataset.capacity_for(0.4)
        remote_asteria = build_remote(dataset.universe, seed=3)
        remote_vanilla = build_remote(dataset.universe, seed=3)
        asteria = build_asteria_engine(
            remote_asteria, AsteriaConfig(capacity_items=capacity), seed=5
        )
        vanilla = build_vanilla_engine(remote_vanilla)
        run_engine(asteria, dataset)
        run_engine(vanilla, dataset)
        assert remote_asteria.cost_meter.api_cost < 0.4 * remote_vanilla.cost_meter.api_cost

    def test_cache_stays_within_capacity_under_load(self, dataset):
        capacity = dataset.capacity_for(0.1)
        engine = build_asteria_engine(
            build_remote(dataset.universe, seed=3),
            AsteriaConfig(capacity_items=capacity),
            seed=5,
        )
        sim = Simulator()
        workload = SkewedWorkload(dataset, seed=2)
        run_task_concurrent(
            sim,
            SearchAgent(engine, answer_step=False),
            workload.single_hop_tasks(300),
            concurrency=8,
        )
        assert len(engine.cache) <= capacity
        assert engine.metrics.evictions > 0

    def test_ttl_keeps_cache_fresh(self, dataset):
        engine = build_asteria_engine(
            build_remote(dataset.universe, seed=3),
            AsteriaConfig(default_ttl=5.0),
            seed=5,
        )
        fact = dataset.universe.by_rank(0)
        engine.handle(dataset.query_for(fact, 0), now=0.0)
        stale = engine.handle(dataset.query_for(fact, 1), now=100.0)
        assert not stale.served_from_cache
        assert engine.metrics.expirations >= 1

    def test_deterministic_end_to_end(self, dataset):
        def one_run():
            engine = build_asteria_engine(
                build_remote(dataset.universe, seed=3),
                AsteriaConfig(capacity_items=dataset.capacity_for(0.4)),
                seed=5,
            )
            sim = Simulator()
            workload = SkewedWorkload(dataset, seed=2)
            stats = run_task_concurrent(
                sim,
                SearchAgent(engine, answer_step=False),
                workload.single_hop_tasks(120),
                concurrency=4,
            )
            return (
                round(sim.now, 9),
                engine.metrics.hits,
                engine.metrics.misses,
                round(stats.mean_latency, 9),
            )

        assert one_run() == one_run()

    def test_mixed_tools_share_one_engine(self, dataset):
        """Search and file queries coexist; semantic match never crosses tools
        by accident (different content tokens keep them apart)."""
        from repro.workloads import SWEBenchWorkload

        remote = build_remote(dataset.universe, seed=3)
        engine = build_asteria_engine(remote, seed=5)
        search_query = dataset.query_for(dataset.universe.by_rank(0), 0)
        engine.handle(search_query, 0.0)
        issue = SWEBenchWorkload(seed=6).next_issue(0)
        response = engine.handle(issue.queries[0], 1.0)
        assert not response.served_from_cache

    def test_throughput_gain_under_concurrency_and_rate_limit(self, dataset):
        capacity = dataset.capacity_for(0.4)

        def run_system(build):
            remote = build_remote(
                dataset.universe, rate_limit_per_minute=100, seed=3
            )
            engine = build(remote)
            sim = Simulator()
            workload = SkewedWorkload(dataset, seed=2)
            stats = run_task_concurrent(
                sim,
                SearchAgent(engine, answer_step=False),
                workload.single_hop_tasks(250),
                concurrency=8,
            )
            return stats.tasks / sim.now

        asteria_rps = run_system(
            lambda remote: build_asteria_engine(
                remote, AsteriaConfig(capacity_items=capacity), seed=5
            )
        )
        vanilla_rps = run_system(build_vanilla_engine)
        assert asteria_rps > 2.0 * vanilla_rps
