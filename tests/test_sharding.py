"""Tests for the sharded thread-safe cache layer."""

import dataclasses
import threading

import pytest

from repro.core import AsteriaConfig, AsteriaEngine, Query, ShardedAsteriaCache
from repro.core.sharding import shard_index_for
from repro.factory import (
    build_asteria_engine,
    build_remote,
    build_sharded_cache,
)


def trace(n: int = 120, population: int = 30) -> list[Query]:
    """A fixed trace with repeats, paraphrases, and distinct facts."""
    queries = []
    for i in range(n):
        rank = (i * 7) % population
        if i % 3 == 0:
            text = f"what is the height of mountain number {rank}"
        elif i % 3 == 1:
            text = f"ok the height of mountain number {rank} please"
        else:
            text = f"mountain number {rank} height"
        queries.append(Query(text, fact_id=f"F{rank}"))
    return queries


class TestShardRouting:
    def test_stable_and_canonical(self):
        assert shard_index_for("Hello  World", 4) == shard_index_for(
            "hello world", 4
        )
        # crc32 is process-independent; pin one value so accidental hash
        # changes (which would scatter persisted deployments) fail loudly.
        import zlib

        assert shard_index_for("hello world", 4) == zlib.crc32(b"hello world") % 4

    def test_same_text_same_shard(self):
        cache = build_sharded_cache(shards=4)
        texts = [f"fact number {i}" for i in range(50)]
        for text in texts:
            assert cache.shard_index(text) == cache.shard_index(text.upper())

    def test_all_shards_used(self):
        cache = build_sharded_cache(shards=4)
        used = {cache.shard_index(f"fact number {i}") for i in range(200)}
        assert used == {0, 1, 2, 3}

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedAsteriaCache([])
        with pytest.raises(ValueError):
            build_sharded_cache(shards=0)


class TestShardedCacheSemantics:
    def test_insert_routes_to_hashed_shard(self):
        cache = build_sharded_cache(shards=4)
        engine = AsteriaEngine(cache, build_remote(), AsteriaConfig())
        queries = [Query(f"fact number {i}", fact_id=f"F{i}") for i in range(40)]
        hits = 0
        for query in queries:
            response = engine.handle(query, 0.0)
            hits += response.served_from_cache
        per_shard = cache.usage_per_shard()
        # Near-paraphrase texts may hit an earlier entry instead of inserting.
        assert sum(per_shard) == 40 - hits
        for query in queries:
            shard = cache.shard_index(query.text)
            assert cache.shards[shard].sine.candidates_for(query)

    def test_aggregate_stats_are_exact_sums(self):
        cache = build_sharded_cache(
            AsteriaConfig(capacity_items=16), shards=4
        )
        engine = AsteriaEngine(cache, build_remote(), AsteriaConfig())
        for i in range(60):
            engine.handle(Query(f"distinct topic {i} kangaroo", fact_id=f"T{i}"), float(i))
        aggregate = cache.stats
        per_shard = cache.stats_per_shard()
        for field in dataclasses.fields(type(aggregate)):
            assert getattr(aggregate, field.name) == sum(
                getattr(stats, field.name) for stats in per_shard
            )
        assert aggregate.inserts == 60 - engine.metrics.hits
        assert aggregate.evictions > 0  # capacity 16(+rounding) over 60 inserts

    def test_capacity_split_and_eviction(self):
        cache = build_sharded_cache(AsteriaConfig(capacity_items=8), shards=4)
        assert cache.capacity_items == 8  # 2 per shard
        engine = AsteriaEngine(cache, build_remote(), AsteriaConfig())
        for i in range(40):
            engine.handle(Query(f"distinct topic {i} wombat", fact_id=f"T{i}"), float(i))
        for shard in cache.shards:
            assert len(shard) <= 2

    def test_ttl_purge_sweeps_every_shard(self):
        cache = build_sharded_cache(AsteriaConfig(default_ttl=10.0), shards=4)
        engine = AsteriaEngine(
            cache, build_remote(), AsteriaConfig(default_ttl=10.0)
        )
        for i in range(20):
            engine.handle(Query(f"fact number {i}", fact_id=f"F{i}"), 0.0)
        assert len(cache) == 20
        removed = cache.remove_expired(1000.0)
        assert removed >= 19  # admissions at ~0.4s may straddle the batch stamp
        assert len(cache) + removed == 20
        assert cache.stats.expirations == removed

    def test_invalidate_sweeps_every_shard(self):
        cache = build_sharded_cache(shards=4)
        engine = AsteriaEngine(cache, build_remote(), AsteriaConfig())
        for i in range(20):
            engine.handle(Query(f"fact number {i}", fact_id=f"F{i}"), 0.0)
        removed = cache.invalidate(lambda element: "1" in element.key)
        assert removed == sum(1 for i in range(20) if "1" in f"fact number {i}")
        assert len(cache) == 20 - removed

    def test_sine_broadcast_thresholds(self):
        cache = build_sharded_cache(shards=3)
        cache.sine.tau_lsm = 0.5
        assert cache.sine.tau_lsm == 0.5
        assert all(shard.sine.tau_lsm == 0.5 for shard in cache.shards)
        engine = AsteriaEngine(
            cache, build_remote(), AsteriaConfig(tau_sim=0.6, tau_lsm=0.8)
        )
        assert all(shard.sine.tau_sim == 0.6 for shard in cache.shards)
        assert all(shard.sine.tau_lsm == 0.8 for shard in cache.shards)
        assert engine.cache is cache


class TestSingleShardEquivalence:
    """shards=1, workers=1 must replay the unsharded cache exactly."""

    def test_lookup_decisions_identical(self):
        config = AsteriaConfig(capacity_items=20, default_ttl=50.0)
        plain = build_asteria_engine(build_remote(seed=7), config, seed=3)
        sharded_cache = build_sharded_cache(config, seed=3, shards=1)
        sharded = AsteriaEngine(
            sharded_cache, build_remote(seed=7), config, name="sharded"
        )
        for i, query in enumerate(trace()):
            now = 0.5 * i
            a = plain.handle(query, now)
            b = sharded.handle(query, now)
            assert a.lookup.status == b.lookup.status, f"diverged at {i}"
            assert a.lookup.candidates == b.lookup.candidates
            assert a.lookup.judged == b.lookup.judged
            assert a.result == b.result
            assert a.latency == pytest.approx(b.latency)
        assert plain.metrics.summary() == sharded.metrics.summary()
        assert dataclasses.asdict(plain.cache.stats) == dataclasses.asdict(
            sharded_cache.stats
        )

    def test_batch_path_identical(self):
        config = AsteriaConfig()
        plain = build_asteria_engine(build_remote(seed=7), config, seed=3)
        sharded_cache = build_sharded_cache(config, seed=3, shards=1)
        sharded = AsteriaEngine(sharded_cache, build_remote(seed=7), config)
        queries = trace(60)
        for offset in range(0, 60, 20):
            batch = queries[offset : offset + 20]
            a = plain.handle_batch(batch, float(offset))
            b = sharded.handle_batch(batch, float(offset))
            assert [r.lookup.status for r in a] == [r.lookup.status for r in b]
        assert plain.metrics.summary() == sharded.metrics.summary()


class TestShardedBatchPaths:
    def test_lookup_batch_matches_scalar_lookups(self):
        config = AsteriaConfig()
        reference = build_sharded_cache(config, seed=3, shards=4)
        batched = build_sharded_cache(config, seed=3, shards=4)
        # Populate both caches identically through direct inserts.
        remote = build_remote(seed=1)
        for i in range(30):
            query = Query(f"what is the height of mountain number {i}", fact_id=f"F{i}")
            fetch = remote.fetch_at(query, 0.0)
            reference.insert(query, fetch, 1.0)
            batched.insert(query, fetch, 1.0)
        probes = trace(40)
        scalar_results = [reference.lookup(q, 2.0) for q in probes]
        batch_results = batched.lookup_batch(probes, 2.0)
        for a, b in zip(scalar_results, batch_results):
            assert (a.match is None) == (b.match is None)
            if a.match is not None:
                assert a.match.key == b.match.key
            assert [hit.key for hit in a.candidates] == [
                hit.key for hit in b.candidates
            ]

    def test_prepare_batch_groups_by_shard(self):
        cache = build_sharded_cache(shards=4)
        remote = build_remote(seed=1)
        inserted = []
        for i in range(24):
            query = Query(f"fact number {i}", fact_id=f"F{i}")
            fetch = remote.fetch_at(query, 0.0)
            cache.insert(query, fetch, 0.0)
            inserted.append(query)
        texts = [query.text for query in inserted]
        batch_hits = cache.prepare_batch(texts)
        assert len(batch_hits) == len(texts)
        for text, hits in zip(texts, batch_hits):
            shard = cache.shards[cache.shard_index(text)]
            expected = shard.sine.index.search(
                shard.sine.embedder.embed(text), shard.sine.max_candidates
            )
            assert [hit.key for hit in hits] == [hit.key for hit in expected]


class TestShardedThreadSafety:
    def test_concurrent_inserts_and_lookups_no_lost_updates(self):
        cache = build_sharded_cache(shards=4)
        remote_lock = threading.Lock()
        remote = build_remote(seed=1)
        n_threads, per_thread = 8, 25
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(per_thread):
                    query = Query(
                        f"worker {worker} fact number {i}", fact_id=f"W{worker}-{i}"
                    )
                    with remote_lock:
                        fetch = remote.fetch_at(query, 0.0)
                    cache.insert(query, fetch, 0.0)
                    cache.lookup(query, 0.0)
                    cache.lookup_batch(
                        [query, Query(f"worker {worker} probe {i}")], 0.0
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "deadlock: worker never finished"
        assert not errors, errors
        assert len(cache) == n_threads * per_thread
        assert cache.stats.inserts == n_threads * per_thread
        assert sum(s.inserts for s in cache.stats_per_shard()) == cache.stats.inserts


class TestStatsParityAfterChurn:
    """Aggregate sharded stats stay exact through TTL purges and evictions."""

    def test_single_shard_parity_with_unsharded_cache(self):
        # Small capacity forces LCFU evictions; a short TTL plus periodic
        # remove_expired sweeps forces purges. Both engines see identical
        # traffic, so every stats counter must come out identical.
        config = AsteriaConfig(capacity_items=12, default_ttl=40.0)
        plain = build_asteria_engine(build_remote(seed=7), config, seed=3)
        sharded_cache = build_sharded_cache(config, seed=3, shards=1)
        sharded = AsteriaEngine(
            sharded_cache, build_remote(seed=7), config, name="sharded"
        )
        for i, query in enumerate(trace(240, population=40)):
            now = 0.5 * i
            plain.handle(query, now)
            sharded.handle(query, now)
            if i % 40 == 39:
                assert plain.cache.remove_expired(now) == (
                    sharded_cache.remove_expired(now)
                )
        assert plain.metrics.summary() == sharded.metrics.summary()
        assert dataclasses.asdict(plain.cache.stats) == dataclasses.asdict(
            sharded_cache.stats
        )
        assert plain.cache.stats.evictions > 0
        assert plain.cache.stats.expirations > 0
        assert len(plain.cache) == len(sharded_cache)

    def test_aggregate_stats_exact_sums_after_churn(self):
        config = AsteriaConfig(capacity_items=16, default_ttl=40.0)
        cache = build_sharded_cache(config, seed=3, shards=4)
        engine = AsteriaEngine(cache, build_remote(seed=7), config)
        for i, query in enumerate(trace(240, population=40)):
            now = 0.5 * i
            engine.handle(query, now)
            if i % 40 == 39:
                cache.remove_expired(now)
        aggregate = cache.stats
        per_shard = cache.stats_per_shard()
        for field in dataclasses.fields(type(aggregate)):
            assert getattr(aggregate, field.name) == sum(
                getattr(stats, field.name) for stats in per_shard
            ), field.name
        assert aggregate.evictions > 0
        assert aggregate.expirations > 0
        assert len(cache) == sum(len(shard) for shard in cache.shards)
