"""Tests for the await-based single-flight layer.

No pytest-asyncio in the toolchain: each test drives its own event loop
with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.serving.aio import AsyncSingleFlight


class TestAsyncSingleFlight:
    def test_sequential_calls_each_lead(self):
        async def scenario():
            flight = AsyncSingleFlight()
            for i in range(3):
                result, shared = await flight.run("k", lambda i=i: self._value(i))
                assert (result, shared) == (i, False)
            assert flight.leaders == 3
            assert flight.shared == 0
            assert flight.inflight() == 0

        asyncio.run(scenario())

    @staticmethod
    async def _value(i):
        await asyncio.sleep(0)
        return i

    def test_concurrent_same_key_shares_one_execution(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()
            executions = []

            async def slow_fn():
                executions.append(1)
                await gate.wait()
                return "value"

            async def call():
                return await flight.run("k", slow_fn)

            tasks = [asyncio.ensure_future(call()) for _ in range(5)]
            while flight.shared < 4:
                await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(*tasks)
            assert len(executions) == 1
            assert sorted(shared for _, shared in results) == [
                False,
                True,
                True,
                True,
                True,
            ]
            assert all(result == "value" for result, _ in results)
            assert flight.leaders == 1 and flight.shared == 4
            assert flight.inflight() == 0

        asyncio.run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = AsyncSingleFlight()
            a, shared_a = await flight.run("a", lambda: self._value(1))
            b, shared_b = await flight.run("b", lambda: self._value(2))
            assert (a, b) == (1, 2)
            assert not shared_a and not shared_b
            assert flight.leaders == 2 and flight.shared == 0

        asyncio.run(scenario())

    def test_leader_exception_propagates_to_followers(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()

            async def failing():
                await gate.wait()
                raise RuntimeError("remote down")

            async def call():
                try:
                    await flight.run("k", failing)
                except RuntimeError as exc:
                    return str(exc)
                return None

            tasks = [asyncio.ensure_future(call()) for _ in range(3)]
            while flight.shared < 2:
                await asyncio.sleep(0)
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert outcomes == ["remote down"] * 3
            assert flight.inflight() == 0
            # Retry after the failed flight starts fresh and succeeds.
            result, shared = await flight.run("k", lambda: self._value("ok"))
            assert (result, shared) == ("ok", False)

        asyncio.run(scenario())

    def test_follower_timeout_leads_private_fetch(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()

            async def stuck_leader():
                await gate.wait()
                return "leader"

            async def fast():
                return "private"

            leader_task = asyncio.ensure_future(flight.run("k", stuck_leader))
            while flight.inflight() == 0:
                await asyncio.sleep(0)
            # Follower gives up after 10 ms and fetches privately.
            result, shared = await flight.run("k", fast, timeout=0.01)
            assert (result, shared) == ("private", False)
            assert flight.timeouts == 1
            # The stuck leader is unaffected and completes once unwedged.
            gate.set()
            assert await leader_task == ("leader", False)
            assert flight.inflight() == 0

        asyncio.run(scenario())

    def test_cancelled_follower_does_not_break_the_flight(self):
        async def scenario():
            flight = AsyncSingleFlight()
            gate = asyncio.Event()

            async def slow_fn():
                await gate.wait()
                return "value"

            leader = asyncio.ensure_future(flight.run("k", slow_fn))
            while flight.inflight() == 0:
                await asyncio.sleep(0)
            victim = asyncio.ensure_future(flight.run("k", slow_fn))
            survivor = asyncio.ensure_future(flight.run("k", slow_fn))
            await asyncio.sleep(0)
            victim.cancel()
            with pytest.raises(asyncio.CancelledError):
                await victim
            gate.set()
            # The shared flight survives the cancelled awaiter.
            assert await leader == ("value", False)
            assert await survivor == ("value", True)

        asyncio.run(scenario())

    def test_drain_waits_for_inflight_flights(self):
        async def scenario():
            flight = AsyncSingleFlight()
            landed = []

            async def slow_fn():
                await asyncio.sleep(0.01)
                landed.append(1)
                return "done"

            task = asyncio.ensure_future(flight.run("k", slow_fn))
            while flight.inflight() == 0:
                await asyncio.sleep(0)
            await flight.drain()
            assert landed == [1]
            assert flight.inflight() == 0
            assert await task == ("done", False)

        asyncio.run(scenario())
