"""Tests for rate limiters."""

import pytest

from repro.network import FixedWindowLimiter, TokenBucket, UnlimitedLimiter


class TestTokenBucket:
    def test_burst_grants_immediately(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)  # 0.5 s * 2/s = 1 token back

    def test_next_available_exact(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        bucket.try_acquire(0.0)
        assert bucket.next_available(0.0) == pytest.approx(0.5)

    def test_next_available_now_when_token_ready(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.next_available(0.0) == 0.0

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        # Long idle: still only `burst` tokens available.
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_per_minute_constructor(self):
        bucket = TokenBucket.per_minute(100)
        assert bucket.rate == pytest.approx(100 / 60)
        assert bucket.burst == 100

    def test_steady_state_rate_enforced(self):
        bucket = TokenBucket.per_minute(60, burst=1)  # 1/s
        granted = sum(bucket.try_acquire(t * 0.5) for t in range(240))
        # 120 s of half-second attempts at 1/s: about 120 grants.
        assert 118 <= granted <= 122

    def test_time_going_backwards_rejected(self):
        bucket = TokenBucket(rate=1.0)
        bucket.try_acquire(5.0)
        with pytest.raises(ValueError):
            bucket.try_acquire(4.0)

    def test_counters(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert bucket.granted == 1
        assert bucket.rejected == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            TokenBucket.per_minute(0)


class TestFixedWindowLimiter:
    def test_limit_within_window(self):
        limiter = FixedWindowLimiter(limit=2, window=60.0)
        assert limiter.try_acquire(0.0)
        assert limiter.try_acquire(10.0)
        assert not limiter.try_acquire(20.0)

    def test_window_roll_resets_count(self):
        limiter = FixedWindowLimiter(limit=1, window=60.0)
        assert limiter.try_acquire(0.0)
        assert not limiter.try_acquire(59.0)
        assert limiter.try_acquire(60.0)

    def test_next_available_is_window_boundary(self):
        limiter = FixedWindowLimiter(limit=1, window=60.0)
        limiter.try_acquire(5.0)
        assert limiter.next_available(10.0) == 60.0

    def test_boundary_burst_possible(self):
        # The classic fixed-window artefact: 2x limit around a boundary.
        limiter = FixedWindowLimiter(limit=5, window=60.0)
        late = sum(limiter.try_acquire(59.0) for _ in range(5))
        early = sum(limiter.try_acquire(60.0) for _ in range(5))
        assert late == 5 and early == 5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FixedWindowLimiter(limit=0)
        with pytest.raises(ValueError):
            FixedWindowLimiter(limit=1, window=0.0)


class TestUnlimitedLimiter:
    def test_always_grants(self):
        limiter = UnlimitedLimiter()
        assert all(limiter.try_acquire(0.0) for _ in range(1000))
        assert limiter.next_available(5.0) == 5.0
