"""Tests for the Markov model and prefetcher (Algorithm 3)."""

import pytest

from repro.core import MarkovModel, MarkovPrefetcher, Query, QuerySignature


def sig(text, fact=None):
    return QuerySignature(text=text, fact_id=fact)


class TestQuerySignature:
    def test_roundtrip_to_query(self):
        query = Query("height of everest", fact_id="F", staticity=9, cost=0.02)
        signature = QuerySignature.of(query)
        rebuilt = signature.to_query()
        assert rebuilt.text == query.text
        assert rebuilt.fact_id == query.fact_id
        assert rebuilt.staticity == query.staticity
        assert rebuilt.cost == query.cost

    def test_hashable(self):
        assert sig("a") == sig("a")
        assert len({sig("a"), sig("a"), sig("b")}) == 2


class TestMarkovModel:
    def test_no_predictions_below_support(self):
        model = MarkovModel(min_support=2)
        model.record(sig("a"), sig("b"))
        assert model.predict(sig("a")) == []

    def test_predictions_after_support(self):
        model = MarkovModel(min_support=2)
        model.record(sig("a"), sig("b"))
        model.record(sig("a"), sig("b"))
        predictions = model.predict(sig("a"))
        assert predictions == [(sig("b"), 1.0)]

    def test_probabilities_normalised(self):
        model = MarkovModel(min_support=1)
        model.record(sig("a"), sig("b"))
        model.record(sig("a"), sig("b"))
        model.record(sig("a"), sig("c"))
        predictions = dict(model.predict(sig("a")))
        assert predictions[sig("b")] == pytest.approx(2 / 3)
        assert predictions[sig("c")] == pytest.approx(1 / 3)
        assert sum(predictions.values()) == pytest.approx(1.0)

    def test_most_likely_first(self):
        model = MarkovModel(min_support=1)
        for _ in range(3):
            model.record(sig("a"), sig("b"))
        model.record(sig("a"), sig("c"))
        assert model.predict(sig("a"))[0][0] == sig("b")

    def test_self_loops_ignored(self):
        model = MarkovModel(min_support=1)
        model.record(sig("a"), sig("a"))
        assert model.predict(sig("a")) == []
        assert model.states == 0

    def test_unknown_state_empty(self):
        assert MarkovModel().predict(sig("never seen")) == []

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            MarkovModel(min_support=0)


class TestMarkovPrefetcher:
    def test_learns_repeated_transition(self):
        prefetcher = MarkovPrefetcher(confidence=0.5, max_per_event=2)
        a = Query("alpha topic", fact_id="A")
        b = Query("beta topic", fact_id="B")
        # Two passes of a -> b build support; the third observation of `a`
        # should predict `b`.
        for _ in range(2):
            prefetcher.observe(a)
            prefetcher.observe(b)
        targets = prefetcher.observe(a)
        assert [t.fact_id for t in targets] == ["B"]

    def test_low_confidence_transitions_ignored(self):
        prefetcher = MarkovPrefetcher(confidence=0.9)
        a = Query("alpha topic", fact_id="A")
        successors = [Query(f"succ {i}", fact_id=f"S{i}") for i in range(4)]
        for successor in successors:
            prefetcher.observe(a)
            prefetcher.observe(successor)
        # Each successor has probability 0.25 < 0.9.
        assert prefetcher.observe(a) == []

    def test_max_per_event_bounds_targets(self):
        prefetcher = MarkovPrefetcher(confidence=0.0, max_per_event=1)
        a = Query("alpha topic", fact_id="A")
        b = Query("beta topic", fact_id="B")
        c = Query("gamma topic", fact_id="C")
        for successor in (b, c, b):
            prefetcher.observe(a)
            prefetcher.observe(successor)
        targets = prefetcher.observe(a)
        assert len(targets) == 1

    def test_reset_history_breaks_chain(self):
        prefetcher = MarkovPrefetcher(confidence=0.5)
        a = Query("alpha topic", fact_id="A")
        b = Query("beta topic", fact_id="B")
        prefetcher.observe(a)
        prefetcher.reset_history()
        prefetcher.observe(b)  # No a -> b transition recorded.
        prefetcher.observe(a)
        assert prefetcher.observe(a) == []
        assert prefetcher.model.predict(QuerySignature.of(a)) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MarkovPrefetcher(confidence=1.5)
        with pytest.raises(ValueError):
            MarkovPrefetcher(max_per_event=0)
