"""Tests for the priority-aware admission controller."""

import pytest

from repro.serving import GpuDevice, KVMemoryPool, PriorityAwareScheduler
from repro.sim import Simulator


def build(sim, shared=True, agent_slots=1, judger_slots=1):
    gpu = GpuDevice(sim, "gpu0")
    agent = gpu.partition("agent", 0.8, slots=agent_slots)
    judger = gpu.partition("judger", 0.2, slots=judger_slots)
    memory = KVMemoryPool(80.0, {"agent": 56.0, "judger": 4.0})
    return PriorityAwareScheduler(sim, agent, judger, memory, shared=shared)


class TestAgentPath:
    def test_agent_work_executes(self, sim):
        scheduler = build(sim)
        durations = []

        def agent_job():
            duration = yield from scheduler.submit_agent(0.8)
            durations.append((sim.now, duration))

        sim.process(agent_job())
        sim.run()
        # 0.8 full-GPU seconds on an 80% partition = 1.0 wall second.
        assert durations == [(1.0, 1.0)]
        assert scheduler.stats.agent_dispatched == 1

    def test_agent_blocked_by_memory_waits(self, sim):
        scheduler = build(sim, agent_slots=4)
        scheduler.agent_kv_gb = 40.0  # Two requests exhaust 76 GB available.
        finished = []

        def agent_job(name):
            yield from scheduler.submit_agent(0.08)
            finished.append((round(sim.now, 3), name))

        for name in ("a", "b", "c"):
            sim.process(agent_job(name))
        sim.run()
        # "c" cannot get 40 GB until "a" releases at 0.1 s.
        assert finished[0][1] == "a" and finished[1][1] == "b"
        assert finished[2][0] > finished[0][0]


class TestJudgerDeferral:
    def test_judger_runs_when_agent_queue_empty(self, sim):
        scheduler = build(sim)
        done = []

        def judger_job():
            yield from scheduler.submit_judger(0.004)
            done.append(sim.now)

        sim.process(judger_job())
        sim.run()
        assert len(done) == 1
        assert scheduler.stats.judger_dispatched == 1

    def test_judger_defers_behind_queued_agent_work(self, sim):
        scheduler = build(sim, agent_slots=1)
        order = []

        def agent_job(name):
            yield from scheduler.submit_agent(0.8)
            order.append((sim.now, name))

        def judger_job():
            yield sim.timeout(0.01)  # Arrive while agent queue is non-empty.
            yield from scheduler.submit_judger(0.004)
            order.append((sim.now, "judger"))

        sim.process(agent_job("a1"))
        sim.process(agent_job("a2"))  # Queued: slot busy.
        sim.process(judger_job())
        sim.run()
        names = [name for _, name in order]
        # The judger batch is admitted only after the waiting agent work
        # has been dispatched (a2 admitted at 1.0 s; judger then runs).
        assert names[0] == "a1"
        assert "judger" in names
        judger_time = dict((name, when) for when, name in order)["judger"]
        assert judger_time > 1.0
        assert scheduler.stats.judger_deferred > 0

    def test_unshared_scheduler_never_defers(self, sim):
        scheduler = build(sim, shared=False, agent_slots=1)
        order = []

        def agent_job(name):
            yield from scheduler.submit_agent(0.8)
            order.append((sim.now, name))

        def judger_job():
            yield sim.timeout(0.01)
            yield from scheduler.submit_judger(0.004)
            order.append((sim.now, "judger"))

        sim.process(agent_job("a1"))
        sim.process(agent_job("a2"))
        sim.process(judger_job())
        sim.run()
        judger_time = dict((name, when) for when, name in order)["judger"]
        assert judger_time < 0.1  # Own GPU: runs immediately.
        assert scheduler.stats.judger_deferred == 0

    def test_memory_released_after_work(self, sim):
        scheduler = build(sim)

        def one_of_each():
            yield from scheduler.submit_agent(0.1)
            yield from scheduler.submit_judger(0.01)

        sim.process(one_of_each())
        sim.run()
        assert scheduler.memory.used_by("agent") == 0.0
        assert scheduler.memory.used_by("judger") == 0.0

    def test_wait_stats_recorded(self, sim):
        scheduler = build(sim)

        def agent_job():
            yield from scheduler.submit_agent(0.1)

        sim.process(agent_job())
        sim.run()
        assert scheduler.stats.agent_wait.count == 1

    def test_invalid_work_rejected(self, sim):
        scheduler = build(sim)

        def bad_job():
            yield from scheduler.submit_agent(-1.0)

        process = sim.process(bad_job())
        with pytest.raises(ValueError):
            sim.run()


class TestJudgerBatching:
    def test_default_batch_max_is_one(self, sim):
        scheduler = build(sim, judger_slots=1)
        done = []

        def judger_job(name):
            yield from scheduler.submit_judger(0.002)
            done.append((round(sim.now, 4), name))

        for name in ("a", "b", "c"):
            sim.process(judger_job(name))
        sim.run()
        # One slot, no coalescing: strictly serial, one dispatch per job.
        assert scheduler.stats.judger_batches == 3
        assert scheduler.stats.judger_dispatched == 3
        assert done[0][0] < done[1][0] < done[2][0]

    def test_coalesced_batch_shares_one_slot(self, sim):
        gpu_scheduler = build(sim, judger_slots=1)
        gpu_scheduler.judger_batch_max = 4
        done = []

        def judger_job(name):
            duration = yield from gpu_scheduler.submit_judger(0.002)
            done.append((round(sim.now, 4), name, round(duration, 4)))

        for name in ("a", "b", "c", "d"):
            sim.process(judger_job(name))
        sim.run()
        # "a" admits immediately as a batch of one; "b"/"c"/"d" arrive while
        # the slot is busy and coalesce into one combined execution.
        assert gpu_scheduler.stats.judger_batches == 2
        assert gpu_scheduler.stats.judger_dispatched == 4
        tail = [entry for entry in done if entry[1] != "a"]
        assert len({entry[0] for entry in tail}) == 1  # same finish time
        assert len({entry[2] for entry in tail}) == 1  # same batch duration
        assert {entry[1] for entry in tail} == {"b", "c", "d"}

    def test_batch_shrinks_to_memory(self, sim):
        scheduler = build(sim, judger_slots=2)
        scheduler.judger_batch_max = 8
        scheduler.judger_kv_gb = 3.0  # Only one 3 GB grant fits in the 4 GB share.
        done = []

        def judger_job(name):
            yield from scheduler.submit_judger(0.002)
            done.append(name)

        for name in ("a", "b"):
            sim.process(judger_job(name))
        sim.run()
        # The first admission takes only "a"; "b" waits for the release.
        assert scheduler.stats.judger_batches == 2
        assert done == ["a", "b"]

    def test_invalid_batch_max_rejected(self, sim):
        gpu = GpuDevice(sim, "g")
        agent = gpu.partition("agent", 0.8, slots=1)
        judger = gpu.partition("judger", 0.2, slots=1)
        with pytest.raises(ValueError):
            PriorityAwareScheduler(sim, agent, judger, judger_batch_max=0)
