"""Tests for facts and fact universes."""

import pytest

from repro.core import Query
from repro.workloads import Fact, FactUniverse


def fact(fact_id="F1", core="height everest", **overrides):
    defaults = dict(fact_id=fact_id, core=core, answer="8849 m")
    defaults.update(overrides)
    return Fact(**defaults)


class TestFact:
    def test_defaults(self):
        item = fact()
        assert item.staticity == 6
        assert item.cost is None
        assert item.latency_scale == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fact(fact_id="")
        with pytest.raises(ValueError):
            fact(staticity=0)
        with pytest.raises(ValueError):
            fact(latency_scale=0.0)
        with pytest.raises(ValueError):
            fact(answer_tokens=0)


class TestFactUniverse:
    def test_lookup_by_id_and_rank(self):
        universe = FactUniverse("u", [fact("A"), fact("B", core="other thing")])
        assert universe.get("A").fact_id == "A"
        assert universe.by_rank(1).fact_id == "B"
        assert "A" in universe and "C" not in universe

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            FactUniverse("u", [fact("A"), fact("A")])

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            FactUniverse("u", [])

    def test_unknown_id_rejected(self):
        universe = FactUniverse("u", [fact("A")])
        with pytest.raises(KeyError):
            universe.get("Z")

    def test_topics_in_first_appearance_order(self):
        universe = FactUniverse(
            "u",
            [
                fact("A", topic="sports"),
                fact("B", core="b", topic="art"),
                fact("C", core="c", topic="sports"),
            ],
        )
        assert universe.topics() == ["sports", "art"]
        assert [f.fact_id for f in universe.facts_for_topic("sports")] == ["A", "C"]

    def test_resolver_answers_known_fact(self):
        universe = FactUniverse("u", [fact("A", answer="the answer")])
        result = universe.resolve(Query("whatever", fact_id="A"))
        assert result.startswith("the answer")

    def test_resolver_pads_to_answer_tokens(self):
        universe = FactUniverse("u", [fact("A", answer_tokens=100)])
        result = universe.resolve(Query("q", fact_id="A"))
        assert len(result) // 4 >= 80  # Roughly the requested token size.

    def test_resolver_fallback_for_unknown_fact(self):
        universe = FactUniverse("u", [fact("A")])
        result = universe.resolve(Query("mystery question", fact_id="ZZZ"))
        assert "mystery question" in result

    def test_resolver_deterministic(self):
        universe = FactUniverse("u", [fact("A")])
        query = Query("q", fact_id="A")
        assert universe.resolve(query) == universe.resolve(query)
