"""Tests for the workload replay drivers."""

import numpy as np
import pytest

from repro.agent import SearchAgent
from repro.core import Query
from repro.factory import build_asteria_engine, build_remote, build_vanilla_engine
from repro.sim import Simulator
from repro.workloads import (
    SkewedWorkload,
    build_dataset,
    run_closed_loop,
    run_open_loop,
    run_task_closed_loop,
    run_task_concurrent,
    run_task_open_loop,
)


@pytest.fixture
def dataset():
    return build_dataset("hotpotqa", seed=1)


class TestClosedLoop:
    def test_sequential_clock_advances(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        queries = SkewedWorkload(dataset, seed=2).queries(10)
        responses, finish = run_closed_loop(engine, queries, think_time=0.1)
        assert len(responses) == 10
        assert finish == pytest.approx(
            sum(response.latency for response in responses) + 10 * 0.1
        )

    def test_negative_think_time_rejected(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        with pytest.raises(ValueError):
            run_closed_loop(engine, [], think_time=-1.0)

    def test_task_closed_loop_sequences_tasks(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        agent = SearchAgent(engine)
        tasks = SkewedWorkload(dataset, seed=2).single_hop_tasks(5)
        stats = run_task_closed_loop(agent, tasks)
        assert stats.tasks == 5
        finishes = [result.finished_at for result in stats.results]
        assert finishes == sorted(finishes)


class TestOpenLoop:
    def test_arrivals_respected(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        sim = Simulator()
        timed = [(float(index), Query(f"q{index}")) for index in range(5)]
        responses = run_open_loop(sim, engine, timed)
        assert len(responses) == 5
        assert sim.now >= 4.0

    def test_unordered_arrivals_rejected(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        sim = Simulator()
        timed = [(2.0, Query("a")), (1.0, Query("b"))]
        with pytest.raises(ValueError):
            run_open_loop(sim, engine, timed)

    def test_task_open_loop_poisson(self, dataset):
        engine = build_asteria_engine(build_remote(dataset.universe), seed=1)
        agent = SearchAgent(engine)
        tasks = SkewedWorkload(dataset, seed=2).single_hop_tasks(20)
        sim = Simulator()
        stats = run_task_open_loop(
            sim, agent, tasks, rate=5.0, rng=np.random.default_rng(0)
        )
        assert stats.tasks == 20

    def test_invalid_rate_rejected(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        with pytest.raises(ValueError):
            run_task_open_loop(
                Simulator(), SearchAgent(engine), [], rate=0.0,
                rng=np.random.default_rng(0),
            )


class TestConcurrent:
    def test_all_tasks_complete(self, dataset):
        engine = build_asteria_engine(build_remote(dataset.universe), seed=1)
        agent = SearchAgent(engine)
        tasks = SkewedWorkload(dataset, seed=2).single_hop_tasks(30)
        sim = Simulator()
        stats = run_task_concurrent(sim, agent, tasks, concurrency=4)
        assert stats.tasks == 30

    def test_concurrency_speeds_up_wall_time(self, dataset):
        def run_at(concurrency):
            engine = build_vanilla_engine(build_remote(dataset.universe, seed=1))
            agent = SearchAgent(engine)
            tasks = SkewedWorkload(dataset, seed=2).single_hop_tasks(16)
            sim = Simulator()
            run_task_concurrent(sim, agent, tasks, concurrency=concurrency)
            return sim.now

        assert run_at(8) < run_at(1) / 3

    def test_invalid_concurrency_rejected(self, dataset):
        engine = build_vanilla_engine(build_remote(dataset.universe))
        with pytest.raises(ValueError):
            run_task_concurrent(Simulator(), SearchAgent(engine), [], concurrency=0)
