"""Tests for miss coalescing (thundering-herd suppression)."""

import pytest

from repro.core import AsteriaConfig, Query
from repro.factory import build_asteria_engine, build_remote
from repro.sim import Simulator


def make_engine(coalesce=True, latency=0.4):
    remote = build_remote(latency=latency)
    config = AsteriaConfig(coalesce_misses=coalesce)
    return build_asteria_engine(remote, config, seed=1)


def run_concurrent(engine, queries):
    sim = Simulator()
    processes = []
    for query in queries:
        processes.append(sim.process(engine.process(sim, query)))
    sim.run()
    return [process.value for process in processes]


class TestCoalescing:
    def test_concurrent_identical_misses_share_one_fetch(self):
        engine = make_engine(coalesce=True)
        queries = [Query("height of everest", fact_id="F") for _ in range(4)]
        responses = run_concurrent(engine, queries)
        assert engine.remote.calls == 1
        assert engine.metrics.coalesced_misses == 3
        results = {response.result for response in responses}
        assert len(results) == 1  # everyone got the leader's result

    def test_paraphrases_coalesce_too(self):
        engine = make_engine(coalesce=True)
        queries = [
            Query("height of everest", fact_id="F"),
            Query("tell me the height of everest", fact_id="F"),
            Query("everest height please", fact_id="F"),
        ]
        run_concurrent(engine, queries)
        assert engine.remote.calls == 1

    def test_distinct_facts_do_not_coalesce(self):
        engine = make_engine(coalesce=True)
        queries = [
            Query("height of everest", fact_id="F"),
            Query("population of lagos", fact_id="G"),
        ]
        run_concurrent(engine, queries)
        assert engine.remote.calls == 2
        assert engine.metrics.coalesced_misses == 0

    def test_disabled_by_default(self):
        engine = make_engine(coalesce=False)
        queries = [Query("height of everest", fact_id="F") for _ in range(4)]
        run_concurrent(engine, queries)
        assert engine.remote.calls == 4
        assert engine.metrics.coalesced_misses == 0

    def test_only_leader_inserts(self):
        engine = make_engine(coalesce=True)
        queries = [Query("height of everest", fact_id="F") for _ in range(4)]
        run_concurrent(engine, queries)
        assert len(engine.cache) == 1

    def test_followers_wait_for_leader_latency(self):
        engine = make_engine(coalesce=True, latency=0.4)
        queries = [Query("height of everest", fact_id="F") for _ in range(3)]
        responses = run_concurrent(engine, queries)
        # Followers resolve when the leader's fetch lands (~0.4s + checks).
        for response in responses:
            assert 0.3 < response.latency < 0.7

    def test_sequential_requests_after_inflight_clears_hit_cache(self):
        engine = make_engine(coalesce=True)
        sim = Simulator()
        process = sim.process(
            engine.process(sim, Query("height of everest", fact_id="F"))
        )
        sim.run()
        assert not process.value.served_from_cache
        later = sim.process(
            engine.process(sim, Query("everest height ok", fact_id="F"))
        )
        sim.run()
        assert later.value.served_from_cache
        assert not engine._inflight_fetches  # map drained

    def test_coalesced_counted_in_summary(self):
        engine = make_engine(coalesce=True)
        queries = [Query("height of everest", fact_id="F") for _ in range(2)]
        run_concurrent(engine, queries)
        assert engine.metrics.summary()["coalesced_misses"] == 1
