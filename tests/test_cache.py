"""Tests for the AsteriaCache: hit semantics, admission, eviction, TTL."""

import pytest

from repro.ann import FlatIndex
from repro.core import AsteriaCache, LCFUPolicy, LFUPolicy, Query, Sine
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger


def fetch(result="answer", latency=0.4, cost=0.005, tokens=16):
    return FetchResult(
        result=result, latency=latency, service_latency=latency, cost=cost,
        size_tokens=tokens,
    )


def make_cache(capacity=None, ttl=3600.0, policy=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    return AsteriaCache(
        sine, capacity_items=capacity, default_ttl=ttl, policy=policy
    )


class TestInsertAndLookup:
    def test_insert_then_hit(self):
        cache = make_cache()
        cache.insert(Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0)
        result = cache.lookup(Query("mona lisa painter please", fact_id="F"), 1.0)
        assert result.match is not None

    def test_hit_increments_frequency(self):
        cache = make_cache()
        element = cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        cache.lookup(Query("what is the height of everest", fact_id="F"), 1.0)
        assert element.frequency == 1
        assert element.last_accessed_at == 1.0

    def test_miss_does_not_touch_frequency(self):
        cache = make_cache()
        element = cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        cache.lookup(Query("weather in oslo", fact_id="G"), 1.0)
        assert element.frequency == 0

    def test_insert_captures_fetch_metadata(self):
        cache = make_cache()
        element = cache.insert(
            Query("height of everest", fact_id="F", staticity=9),
            fetch(latency=0.7, cost=0.02, tokens=99),
            now=5.0,
        )
        assert element.retrieval_latency == 0.7
        assert element.retrieval_cost == 0.02
        assert element.size_tokens == 99
        assert element.created_at == 5.0
        assert element.truth_key == "F"

    def test_staticity_scored_near_annotation(self):
        cache = make_cache()
        element = cache.insert(
            Query("height of everest", fact_id="F", staticity=9), fetch(), 0.0
        )
        assert 8 <= element.staticity <= 10

    def test_element_ids_unique_and_increasing(self):
        cache = make_cache()
        first = cache.insert(Query("query one here", fact_id="A"), fetch(), 0.0)
        second = cache.insert(Query("query two there", fact_id="B"), fetch(), 0.0)
        assert second.element_id > first.element_id


class TestTTL:
    def test_expired_entry_not_served(self):
        cache = make_cache(ttl=10.0)
        cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        result = cache.lookup(Query("height of everest", fact_id="F"), 11.0)
        assert result.match is None
        assert len(cache) == 0

    def test_entry_served_before_expiry(self):
        cache = make_cache(ttl=10.0)
        cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        result = cache.lookup(Query("height of everest", fact_id="F"), 9.0)
        assert result.match is not None

    def test_per_insert_ttl_override(self):
        cache = make_cache(ttl=1000.0)
        element = cache.insert(
            Query("height of everest", fact_id="F"), fetch(), 0.0, ttl=5.0
        )
        assert element.expires_at == 5.0

    def test_none_ttl_means_immortal(self):
        cache = make_cache(ttl=None)
        element = cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        assert element.expires_at == float("inf")

    def test_remove_expired_counts(self):
        cache = make_cache(ttl=10.0)
        cache.insert(Query("query one here", fact_id="A"), fetch(), 0.0)
        cache.insert(Query("query two there", fact_id="B"), fetch(), 5.0)
        removed = cache.remove_expired(now=12.0)
        assert removed == 1
        assert cache.stats.expirations == 1


class TestEviction:
    def test_capacity_enforced(self):
        cache = make_cache(capacity=3)
        for index in range(6):
            cache.insert(
                Query(f"distinct topic number {index} xylophone", fact_id=f"F{index}"),
                fetch(),
                float(index),
            )
        assert len(cache) <= 3
        assert cache.stats.evictions == 3

    def test_newest_insert_protected(self):
        cache = make_cache(capacity=1)
        cache.insert(Query("first unique topic", fact_id="A"), fetch(), 0.0)
        survivor = cache.insert(Query("second unique topic", fact_id="B"), fetch(), 1.0)
        assert list(cache.elements.values()) == [survivor]

    def test_lcfu_keeps_frequent_expensive(self):
        cache = make_cache(capacity=2, policy=LCFUPolicy())
        hot = cache.insert(
            Query("premium slow expensive data", fact_id="HOT"),
            fetch(latency=1.6, cost=0.02),
            0.0,
        )
        hot.record_hit(1.0)
        hot.record_hit(2.0)
        cold = cache.insert(Query("cheap fast data", fact_id="COLD"), fetch(), 3.0)
        cache.insert(Query("another new topic", fact_id="NEW"), fetch(), 4.0)
        assert hot.element_id in cache
        assert cold.element_id not in cache

    def test_lfu_keeps_most_frequent(self):
        cache = make_cache(capacity=2, policy=LFUPolicy())
        popular = cache.insert(Query("popular topic text", fact_id="P"), fetch(), 0.0)
        popular.record_hit(1.0)
        popular.record_hit(2.0)
        cache.insert(Query("unpopular topic text", fact_id="U"), fetch(), 3.0)
        cache.insert(Query("third topic text", fact_id="T"), fetch(), 4.0)
        assert popular.element_id in cache

    def test_expired_purged_before_scored_eviction(self):
        cache = make_cache(capacity=2, ttl=5.0)
        doomed = cache.insert(Query("soon to expire", fact_id="A"), fetch(), 0.0)
        keeper = cache.insert(Query("fresh entry here", fact_id="B"), fetch(), 6.0)
        keeper.record_hit(7.0)
        cache.insert(Query("third arrival text", fact_id="C"), fetch(), 8.0)
        assert doomed.element_id not in cache
        assert keeper.element_id in cache
        assert cache.stats.evictions == 0  # TTL purge made room for free.

    def test_remove_missing_rejected(self):
        cache = make_cache()
        with pytest.raises(KeyError):
            cache.remove(999)


class TestPrefetchInteraction:
    def test_prefetched_flag_recorded(self):
        cache = make_cache()
        element = cache.insert(
            Query("speculative topic", fact_id="S"), fetch(), 0.0, prefetched=True
        )
        assert element.prefetched
        assert cache.stats.prefetch_inserts == 1

    def test_prefetched_entry_confirms_on_first_hit(self):
        cache = make_cache()
        cache.insert(
            Query("height of everest", fact_id="F"), fetch(), 0.0, prefetched=True
        )
        result = cache.lookup(Query("everest height please", fact_id="F"), 1.0)
        assert result.match is not None
        assert "prefetch_confirmed_at" in result.match.metadata

    def test_contains_semantic(self):
        cache = make_cache()
        cache.insert(Query("height of everest", fact_id="F"), fetch(), 0.0)
        assert cache.contains_semantic(Query("everest height", fact_id="F"))
        assert not cache.contains_semantic(Query("weather in oslo", fact_id="G"))
