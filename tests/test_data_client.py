"""Tests for the data client and tolerant parsing."""

import pytest

from repro.agent import extract_blocks
from repro.agent.data_client import DataClient
from repro.agent.parser import TagFormatError
from repro.factory import build_asteria_engine, build_remote

GENERATION = (
    "<think> I need to find out who painted the Mona Lisa. </think>\n"
    "<search> who painted the mona lisa </search>"
)


def client(strict=False):
    engine = build_asteria_engine(build_remote(), seed=1)
    return DataClient(engine, strict=strict)


class TestTolerantParsing:
    def test_strict_still_raises(self):
        with pytest.raises(TagFormatError):
            extract_blocks("<think> truncated", strict=True)

    def test_trailing_unclosed_block_recovered(self):
        blocks = extract_blocks("<search> cut off mid", strict=False)
        assert blocks == [type(blocks[0])(tag="search", content="cut off mid")]

    def test_unknown_tags_skipped(self):
        blocks = extract_blocks(
            "<scratch> x </scratch> <search> q </search>", strict=False
        )
        assert [block.tag for block in blocks] == ["search"]

    def test_nested_open_closes_outer(self):
        blocks = extract_blocks(
            "<think> reasoning <search> q </search>", strict=False
        )
        assert [block.tag for block in blocks] == ["think", "search"]
        assert blocks[0].content == "reasoning"

    def test_stray_close_ignored(self):
        blocks = extract_blocks("</info> <search> q </search>", strict=False)
        assert [block.tag for block in blocks] == ["search"]

    def test_well_formed_identical_in_both_modes(self):
        text = "<think> a </think> <search> b </search> <answer> c </answer>"
        assert extract_blocks(text, strict=True) == extract_blocks(
            text, strict=False
        )


class TestDataClient:
    def test_intercepts_search_and_returns_info(self):
        data_client = client()
        result = data_client.intercept(GENERATION, now=0.0)
        assert result.acted
        assert len(result.queries) == 1
        assert result.queries[0].tool == "search"
        assert result.info_text.startswith("<info>")
        assert result.responses[0].result in result.info_text

    def test_generation_without_action_is_noop(self):
        data_client = client()
        result = data_client.intercept("<think> just reasoning </think>")
        assert not result.acted
        assert result.info_text == ""
        assert result.latency == 0.0

    def test_semantic_hit_through_the_client(self):
        data_client = client()
        data_client.intercept(GENERATION, now=0.0)
        rephrased = "<search> tell me who painted mona lisa </search>"
        result = data_client.intercept(rephrased, now=2.0)
        assert result.responses[0].served_from_cache

    def test_multiple_actions_resolved_sequentially(self):
        data_client = client()
        generation = (
            "<search> height of everest </search>\n"
            "<file> src core parser py </file>"
        )
        result = data_client.intercept(generation, now=0.0)
        assert [query.tool for query in result.queries] == ["search", "file"]
        assert result.latency == pytest.approx(
            sum(response.latency for response in result.responses)
        )

    def test_malformed_generation_still_served(self):
        data_client = client(strict=False)
        result = data_client.intercept("<search> truncated question", now=0.0)
        assert result.acted

    def test_strict_client_raises_on_malformed(self):
        data_client = client(strict=True)
        with pytest.raises(TagFormatError):
            data_client.intercept("<search> truncated question", now=0.0)

    def test_session_tag_propagates(self):
        data_client = client()
        result = data_client.intercept(GENERATION, session="conv-1")
        assert result.queries[0].metadata["session"] == "conv-1"

    def test_intercept_counter(self):
        data_client = client()
        data_client.intercept(GENERATION)
        data_client.intercept(GENERATION)
        assert data_client.intercepted == 2

    def test_empty_action_content_skipped(self):
        data_client = client()
        result = data_client.intercept("<search>  </search>")
        assert not result.acted
