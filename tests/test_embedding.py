"""Tests for the hashing embedder and its cache wrapper."""

import numpy as np
import pytest

from repro.embedding import CachedEmbedder, HashingEmbedder, cosine_similarity


class TestCosineSimilarity:
    def test_identical_vectors(self):
        vector = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestHashingEmbedder:
    def test_unit_norm(self):
        embedder = HashingEmbedder(seed=1)
        vector = embedder.embed("who painted the mona lisa")
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-5)

    def test_deterministic(self):
        a = HashingEmbedder(seed=1).embed("hello world")
        b = HashingEmbedder(seed=1).embed("hello world")
        assert np.array_equal(a, b)

    def test_seed_changes_embedding(self):
        a = HashingEmbedder(seed=1).embed("hello world")
        b = HashingEmbedder(seed=2).embed("hello world")
        assert not np.array_equal(a, b)

    def test_dim_property(self):
        assert HashingEmbedder(dim=128).dim == 128

    def test_tiny_dim_rejected(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=4)

    def test_empty_text_gives_zero_vector(self):
        embedder = HashingEmbedder()
        assert np.linalg.norm(embedder.embed("")) == 0.0

    def test_paraphrases_are_close(self):
        embedder = HashingEmbedder(seed=7)
        base = embedder.embed("who painted the mona lisa")
        for paraphrase in (
            "mona lisa painter",
            "tell me who painted mona lisa please",
            "the mona lisa was painted by whom",
        ):
            assert cosine_similarity(base, embedder.embed(paraphrase)) > 0.9

    def test_unrelated_queries_are_far(self):
        embedder = HashingEmbedder(seed=7)
        a = embedder.embed("who painted the mona lisa")
        b = embedder.embed("current weather in paris france")
        assert cosine_similarity(a, b) < 0.3

    def test_confusables_land_in_the_middle(self):
        embedder = HashingEmbedder(seed=7)
        a = embedder.embed("who won the world cup 2018")
        b = embedder.embed("who won the world cup 2022")
        similarity = cosine_similarity(a, b)
        assert 0.5 < similarity < 0.95

    def test_word_order_matters_slightly(self):
        embedder = HashingEmbedder(seed=7)
        a = embedder.embed("everest height meters")
        b = embedder.embed("meters height everest")
        similarity = cosine_similarity(a, b)
        assert 0.8 < similarity < 1.0

    def test_zero_bigram_weight_makes_order_irrelevant(self):
        embedder = HashingEmbedder(seed=7, bigram_weight=0.0)
        a = embedder.embed("everest height meters")
        b = embedder.embed("meters height everest")
        assert cosine_similarity(a, b) == pytest.approx(1.0, abs=1e-5)

    def test_embed_batch_shape(self):
        embedder = HashingEmbedder(dim=64)
        matrix = embedder.embed_batch(["a b c", "d e f", "g h i"])
        assert matrix.shape == (3, 64)

    def test_embed_batch_empty(self):
        assert HashingEmbedder(dim=64).embed_batch([]).shape == (0, 64)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            HashingEmbedder(stopword_weight=-0.1)


class TestCachedEmbedder:
    def test_hits_and_misses_counted(self):
        cached = CachedEmbedder(HashingEmbedder(seed=1))
        cached.embed("hello")
        cached.embed("hello")
        cached.embed("world")
        assert cached.hits == 1
        assert cached.misses == 2

    def test_returns_same_result_as_inner(self):
        inner = HashingEmbedder(seed=1)
        cached = CachedEmbedder(HashingEmbedder(seed=1))
        assert np.array_equal(cached.embed("query"), inner.embed("query"))

    def test_lru_eviction_bounds_size(self):
        cached = CachedEmbedder(HashingEmbedder(seed=1), max_entries=2)
        cached.embed("a")
        cached.embed("b")
        cached.embed("c")
        assert "a" not in cached
        assert "b" in cached and "c" in cached

    def test_recently_used_survives(self):
        cached = CachedEmbedder(HashingEmbedder(seed=1), max_entries=2)
        cached.embed("a")
        cached.embed("b")
        cached.embed("a")  # refresh "a"
        cached.embed("c")  # evicts "b"
        assert "a" in cached and "b" not in cached

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CachedEmbedder(HashingEmbedder(), max_entries=0)

    def test_dim_delegates(self):
        assert CachedEmbedder(HashingEmbedder(dim=32)).dim == 32
