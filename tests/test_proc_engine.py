"""End-to-end tests of the multi-process serving tier (in-process router).

These spawn real worker processes; they are the tentpole's integration
proof: lookups and inserts cross the wire, hits come back with payloads,
cross-process single-flight coalesces concurrent misses, and shutdown is
clean (no leaked processes).
"""

import asyncio

import pytest

from repro.core import Query
from repro.factory import build_proc_engine, build_remote


def _queries(n, population=6):
    return [
        Query(f"stress fact number {i % population} of the universe", fact_id=f"F{i % population}")
        for i in range(n)
    ]


def test_proc_engine_serves_hits_and_misses():
    remote = build_remote(seed=0)
    engine = build_proc_engine(remote, seed=0, workers=2)

    async def drive():
        async with engine:
            for i, query in enumerate(_queries(40)):
                outcome = await engine.serve(query, now=i * 0.01)
                assert outcome.ok, outcome
                assert outcome.response is not None
                assert outcome.response.result

    asyncio.run(drive())
    metrics = engine.metrics
    assert metrics.requests == 40
    assert metrics.hits > 0
    assert metrics.misses > 0
    assert metrics.hits + metrics.misses == 40
    # Piggybacked shard stats aggregate to the remote-call count: one insert
    # per non-coalesced miss.
    assert engine.cache.stats.inserts == remote.calls
    assert engine.cache.usage() == 6
    # All worker processes exited with the pool.
    assert not engine.pool.processes


def test_proc_engine_coalesces_concurrent_misses_across_processes():
    remote = build_remote(seed=0)
    # A real wall-clock pause on fetches keeps the leader in flight long
    # enough for the followers to pile onto the single-flight entry.
    engine = build_proc_engine(remote, seed=0, workers=2, io_pause_scale=0.2)
    query = Query("one very hot fact", fact_id="F0")

    async def drive():
        async with engine:
            return await asyncio.gather(
                *(engine.serve(query, now=0.0) for _ in range(5))
            )

    outcomes = asyncio.run(drive())
    assert all(outcome.ok for outcome in outcomes)
    assert remote.calls == 1  # one fetch for five concurrent misses
    assert engine.metrics.coalesced_misses == 4
    assert engine.metrics.misses == 5  # followers record misses too
    assert engine.cache.stats.inserts == 1  # ...but only the leader admits


def test_proc_engine_batched_window_still_serves_everything():
    remote = build_remote(seed=0)
    engine = build_proc_engine(
        remote, seed=0, workers=2, batch_window=0.005, batch_max=4
    )

    async def drive():
        async with engine:
            outcomes = await asyncio.gather(
                *(
                    engine.serve(query, now=i * 0.01)
                    for i, query in enumerate(_queries(32))
                )
            )
            return outcomes

    outcomes = asyncio.run(drive())
    assert all(outcome.ok for outcome in outcomes)
    assert engine.metrics.requests == 32


def test_proc_engine_rejects_prefetch_config():
    from repro.core.config import AsteriaConfig

    with pytest.raises(ValueError):
        build_proc_engine(
            build_remote(seed=0),
            config=AsteriaConfig(prefetch_enabled=True),
            workers=2,
            launch=False,
        )


def test_worker_spec_requires_policy_name():
    with pytest.raises(TypeError):
        from repro.core.eviction import LCFUPolicy

        build_proc_engine(
            build_remote(seed=0), workers=2, policy=LCFUPolicy(), launch=False
        )
