"""Tests for admission policies and cache bypass."""

import pytest

from repro.core import (
    AlwaysAdmit,
    AsteriaConfig,
    DoorkeeperAdmission,
    Query,
    SizeThresholdAdmission,
)
from repro.core.types import FetchResult
from repro.factory import build_asteria_engine, build_remote
from repro.sim import Simulator


def fetch(tokens=16):
    return FetchResult(
        result="r", latency=0.4, service_latency=0.4, cost=0.005,
        size_tokens=tokens,
    )


class TestPolicies:
    def test_always_admit(self):
        policy = AlwaysAdmit()
        assert policy.admit(Query("q"), fetch(), 0.0)

    def test_doorkeeper_refuses_first_admits_second(self):
        policy = DoorkeeperAdmission(window=100.0)
        query = Query("height of everest", fact_id="F")
        assert not policy.admit(query, fetch(), 0.0)
        assert policy.admit(query, fetch(), 50.0)
        assert policy.refused == 1 and policy.admitted == 1

    def test_doorkeeper_matches_paraphrases(self):
        policy = DoorkeeperAdmission(window=100.0)
        assert not policy.admit(Query("tell me the height of everest"), fetch(), 0.0)
        # Same content stems, different filler: counts as recurrence.
        assert policy.admit(Query("height of everest please"), fetch(), 10.0)

    def test_doorkeeper_window_expiry(self):
        policy = DoorkeeperAdmission(window=10.0)
        query = Query("height of everest")
        assert not policy.admit(query, fetch(), 0.0)
        assert not policy.admit(query, fetch(), 20.0)  # first record stale

    def test_doorkeeper_third_miss_after_admission_restarts(self):
        policy = DoorkeeperAdmission(window=100.0)
        query = Query("height of everest")
        policy.admit(query, fetch(), 0.0)
        policy.admit(query, fetch(), 1.0)  # admitted, record cleared
        assert not policy.admit(query, fetch(), 2.0)

    def test_doorkeeper_tracking_bound(self):
        policy = DoorkeeperAdmission(window=1e9, max_tracked=2)
        for index in range(5):
            policy.admit(Query(f"unique topic {index} zz"), fetch(), float(index))
        assert len(policy._first_seen) <= 2

    def test_size_threshold(self):
        policy = SizeThresholdAdmission(max_tokens=100)
        assert policy.admit(Query("q"), fetch(tokens=100), 0.0)
        assert not policy.admit(Query("q"), fetch(tokens=101), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DoorkeeperAdmission(window=0.0)
        with pytest.raises(ValueError):
            DoorkeeperAdmission(max_tracked=0)
        with pytest.raises(ValueError):
            SizeThresholdAdmission(max_tokens=0)


class TestEngineAdmission:
    def test_doorkeeper_delays_caching_by_one_miss(self):
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.admission = DoorkeeperAdmission(window=1000.0)
        first = engine.handle(Query("height of everest", fact_id="F"), 0.0)
        assert not first.served_from_cache
        assert len(engine.cache) == 0  # refused by the doorkeeper
        second = engine.handle(Query("everest height please", fact_id="F"), 1.0)
        assert not second.served_from_cache
        assert len(engine.cache) == 1  # admitted on recurrence
        third = engine.handle(Query("tell me height of everest", fact_id="F"), 2.0)
        assert third.served_from_cache

    def test_doorkeeper_keeps_one_hit_wonders_out(self):
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.admission = DoorkeeperAdmission(window=1000.0)
        for index in range(10):
            engine.handle(Query(f"singleton topic {index} qqq", fact_id=f"T{index}"), 0.0)
        assert len(engine.cache) == 0


class TestToolBypass:
    def test_uncacheable_tool_bypasses(self):
        config = AsteriaConfig(cacheable_tools=("search",))
        engine = build_asteria_engine(build_remote(), config, seed=1)
        response = engine.handle(
            Query("write to my calendar", tool="tool", fact_id="X"), 0.0
        )
        assert response.lookup.status == "bypass"
        assert len(engine.cache) == 0
        assert engine.metrics.bypasses == 1
        # Bypasses never count against the hit rate.
        assert engine.metrics.hit_rate == 0.0

    def test_cacheable_tool_still_cached(self):
        config = AsteriaConfig(cacheable_tools=("search",))
        engine = build_asteria_engine(build_remote(), config, seed=1)
        engine.handle(Query("height of everest", tool="search", fact_id="F"), 0.0)
        response = engine.handle(
            Query("everest height ok", tool="search", fact_id="F"), 1.0
        )
        assert response.served_from_cache

    def test_bypass_in_process_mode(self):
        config = AsteriaConfig(cacheable_tools=("search",))
        engine = build_asteria_engine(build_remote(), config, seed=1)
        sim = Simulator()
        process = sim.process(
            engine.process(sim, Query("side effecting call", tool="file"))
        )
        sim.run()
        assert process.value.lookup.status == "bypass"
        assert len(engine.cache) == 0

    def test_default_caches_all_tools(self):
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.handle(Query("read config file main", tool="file", fact_id="F"), 0.0)
        assert len(engine.cache) == 1
