"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ann import FlatIndex
from repro.core import (
    EvalRecord,
    LCFUPolicy,
    SemanticElement,
    find_threshold,
    precision_curve,
)
from repro.embedding import HashingEmbedder
from repro.network import TokenBucket
from repro.serving import KVMemoryPool
from repro.sim.distributions import LogNormal
from repro.workloads import ZipfSampler

# Hypothesis generates many examples; keep fixtures cheap.
COMMON_SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


# -- embedder -----------------------------------------------------------------
@COMMON_SETTINGS
@given(st.text(alphabet=st.characters(codec="ascii"), min_size=0, max_size=80))
def test_embedding_always_unit_or_zero(text):
    embedder = HashingEmbedder(seed=1, dim=32)
    norm = float(np.linalg.norm(embedder.embed(text)))
    assert norm == pytest.approx(0.0, abs=1e-6) or norm == pytest.approx(
        1.0, abs=1e-4
    )


@COMMON_SETTINGS
@given(st.lists(st.sampled_from("abcdefg"), min_size=1, max_size=10))
def test_embedding_invariant_to_duplicate_spacing(tokens):
    embedder = HashingEmbedder(seed=1, dim=32)
    text = " ".join(tokens)
    spaced = "   ".join(tokens)
    assert np.allclose(embedder.embed(text), embedder.embed(spaced))


# -- flat index ----------------------------------------------------------------
@COMMON_SETTINGS
@given(st.data())
def test_flat_index_top1_matches_brute_force(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    count = data.draw(st.integers(min_value=1, max_value=40))
    vectors = rng.standard_normal((count, 8)).astype(np.float32)
    vectors /= np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True), 1e-9)
    index = FlatIndex(8)
    for key, vector in enumerate(vectors):
        index.add(key, vector)
    query = rng.standard_normal(8).astype(np.float32)
    query /= np.linalg.norm(query)
    expected = int(np.argmax(vectors @ query))
    got = index.search(query, k=1)[0].key
    assert float(np.dot(vectors[got], query)) == pytest.approx(
        float(np.dot(vectors[expected], query)), abs=1e-5
    )


@COMMON_SETTINGS
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=60, unique=True))
def test_flat_index_add_remove_leaves_no_residue(keys):
    rng = np.random.default_rng(0)
    index = FlatIndex(8)
    for key in keys:
        index.add(key, rng.standard_normal(8))
    for key in keys:
        index.remove(key)
    assert len(index) == 0
    assert index.search(rng.standard_normal(8), k=5) == []


# -- LCFU ---------------------------------------------------------------------
def _element(frequency, cost, latency, staticity, size):
    return SemanticElement(
        element_id=1,
        key="k",
        value="v",
        embedding=np.zeros(4, dtype=np.float32),
        staticity=staticity,
        frequency=frequency,
        retrieval_latency=latency,
        retrieval_cost=cost,
        size_tokens=size,
        expires_at=float("inf"),
    )


@COMMON_SETTINGS
@given(
    frequency=st.integers(0, 1000),
    cost=st.floats(0.0, 10.0, allow_nan=False),
    latency=st.floats(0.0, 100.0, allow_nan=False),
    staticity=st.integers(1, 10),
    size=st.integers(1, 10_000),
)
def test_lcfu_score_finite_and_nonnegative(frequency, cost, latency, staticity, size):
    score = LCFUPolicy().score(
        _element(frequency, cost, latency, staticity, size), now=0.0
    )
    assert math.isfinite(score)
    assert score >= 0.0


@COMMON_SETTINGS
@given(
    cost=st.floats(0.001, 1.0, allow_nan=False),
    latency=st.floats(0.01, 10.0, allow_nan=False),
    staticity=st.integers(1, 10),
    size=st.integers(1, 1000),
    freq_low=st.integers(1, 100),
    bump=st.integers(1, 100),
)
def test_lcfu_monotone_in_frequency(cost, latency, staticity, size, freq_low, bump):
    policy = LCFUPolicy()
    low = policy.score(_element(freq_low, cost, latency, staticity, size), 0.0)
    high = policy.score(_element(freq_low + bump, cost, latency, staticity, size), 0.0)
    assert high >= low


# -- token bucket ------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    rate=st.floats(0.1, 100.0, allow_nan=False),
    burst=st.integers(1, 50),
    gaps=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=200),
)
def test_token_bucket_never_exceeds_rate_plus_burst(rate, burst, gaps):
    bucket = TokenBucket(rate=rate, burst=burst)
    now = 0.0
    granted = 0
    for gap in gaps:
        now += gap
        if bucket.try_acquire(now):
            granted += 1
    # Conservation: grants <= initial burst + refill over elapsed time.
    assert granted <= burst + rate * now + 1e-6


@COMMON_SETTINGS
@given(
    rate=st.floats(0.1, 10.0, allow_nan=False),
    burst=st.integers(1, 5),
    when=st.floats(0.0, 100.0, allow_nan=False),
)
def test_token_bucket_next_available_is_truthful(rate, burst, when):
    bucket = TokenBucket(rate=rate, burst=burst)
    bucket.try_acquire(when)
    available_at = bucket.next_available(when)
    assert available_at >= when
    assert bucket.try_acquire(available_at + 1e-9)


# -- precision curve -------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    st.lists(
        st.tuples(st.floats(0.0, 1.0, allow_nan=False), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_precision_curve_bounds_and_threshold_soundness(pairs):
    records = [EvalRecord(score=score, correct=correct) for score, correct in pairs]
    curve = precision_curve(records)
    assert curve, "non-empty input must give a non-empty curve"
    for threshold, precision in curve:
        assert 0.0 <= precision <= 1.0
        accepted = [record for record in records if record.score >= threshold]
        expected = sum(record.correct for record in accepted) / len(accepted)
        assert precision == pytest.approx(expected)
    # find_threshold must return either a satisfying threshold or the fallback.
    chosen = find_threshold(curve, target_precision=0.9, fallback=2.0)
    if chosen != 2.0:
        accepted = [record for record in records if record.score >= chosen]
        assert sum(r.correct for r in accepted) / len(accepted) >= 0.9


# -- zipf ------------------------------------------------------------------------------
@COMMON_SETTINGS
@given(n=st.integers(1, 500), s=st.floats(0.0, 3.0, allow_nan=False))
def test_zipf_probabilities_valid(n, s):
    sampler = ZipfSampler(n=n, s=s)
    probabilities = [sampler.probability(rank) for rank in range(n)]
    assert sum(probabilities) == pytest.approx(1.0)
    assert all(
        probabilities[i] >= probabilities[i + 1] - 1e-12 for i in range(n - 1)
    )


# -- memory pool -----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["agent", "judger"]),
            st.booleans(),
            st.floats(0.1, 20.0, allow_nan=False),
        ),
        max_size=100,
    )
)
def test_memory_pool_conservation(operations):
    pool = KVMemoryPool(64.0, {"agent": 40.0, "judger": 8.0})
    held = {"agent": 0.0, "judger": 0.0}
    for workload, is_alloc, amount in operations:
        if is_alloc:
            if pool.allocate(workload, amount):
                held[workload] += amount
        else:
            release = min(amount, held[workload])
            if release > 0:
                pool.release(workload, release)
                held[workload] -= release
    for workload, amount in held.items():
        assert pool.used_by(workload) == pytest.approx(amount, abs=1e-6)
    assert pool.dynamic_free >= -1e-9


# -- distributions -----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    mean=st.floats(0.01, 10.0, allow_nan=False),
    cv=st.floats(0.0, 2.0, allow_nan=False),
)
def test_lognormal_mean_cv_roundtrip(mean, cv):
    dist = LogNormal.from_mean_cv(mean=mean, cv=cv)
    assert dist.mean() == pytest.approx(mean, rel=1e-6)
