"""Tests for judger fine-tuning (§5) and the drift study."""

import numpy as np
import pytest

from repro.core import ThresholdRecalibrator
from repro.judger import SimulatedJudger


def _labelled_records(n=50):
    rng = np.random.default_rng(0)
    return [
        (f"q{i}", float(rng.beta(20, 1)), "F", "F") for i in range(n)
    ]


class TestFineTune:
    def test_requires_min_records(self):
        recalibrator = ThresholdRecalibrator(min_records=20, sample_size=5)
        judger = SimulatedJudger(seed=1, flip_rate=0.1)
        assert not recalibrator.fine_tune(judger)
        assert judger.flip_rate == 0.1

    def test_moves_parameters_toward_calibrated_values(self):
        recalibrator = ThresholdRecalibrator(min_records=10, sample_size=50)
        recalibrator.ingest(_labelled_records())
        judger = SimulatedJudger(seed=1, flip_rate=0.2)
        judger.neg_alpha, judger.neg_beta = 12.0, 2.0
        assert recalibrator.fine_tune(judger, decay=0.5)
        assert judger.flip_rate == pytest.approx(0.101)
        assert judger.neg_alpha == pytest.approx((12.0 + 0.8) / 2)
        assert judger.neg_beta == pytest.approx((2.0 + 20.0) / 2)

    def test_repeated_rounds_converge(self):
        recalibrator = ThresholdRecalibrator(min_records=10, sample_size=50)
        recalibrator.ingest(_labelled_records())
        judger = SimulatedJudger(seed=1, flip_rate=0.3)
        for _ in range(30):
            recalibrator.fine_tune(judger)
        assert judger.flip_rate == pytest.approx(0.002, abs=0.005)

    def test_judger_without_parameters_untouched(self):
        from repro.judger import HeuristicJudger

        recalibrator = ThresholdRecalibrator(min_records=10, sample_size=50)
        recalibrator.ingest(_labelled_records())
        assert not recalibrator.fine_tune(HeuristicJudger())

    def test_invalid_decay_rejected(self):
        recalibrator = ThresholdRecalibrator()
        with pytest.raises(ValueError):
            recalibrator.fine_tune(SimulatedJudger(), decay=1.0)


class TestForget:
    def test_forget_all(self):
        recalibrator = ThresholdRecalibrator(min_records=10, sample_size=50)
        recalibrator.ingest(_labelled_records())
        recalibrator.forget()
        assert recalibrator.validation_size == 0

    def test_forget_keep_last(self):
        recalibrator = ThresholdRecalibrator(min_records=10, sample_size=50)
        recalibrator.ingest(_labelled_records())
        recalibrator.forget(keep_last=7)
        assert recalibrator.validation_size == 7

    def test_negative_keep_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRecalibrator().forget(keep_last=-1)


class TestDriftStudy:
    def test_recalibration_restores_precision_under_drift(self):
        from repro.experiments.recalibration_overhead import run_drift

        result = run_drift(phase_tasks=250)
        rows = {row["configuration"]: row for row in result.rows}
        uncorrected = rows["no_recalibration"]
        corrected = rows["recalibration"]
        tuned = rows["recalibration_finetune"]
        # Drift hurts precision without Algorithm 1.
        assert uncorrected["phase2_hit_precision"] < 0.995
        # Recalibration restores it by tightening the threshold.
        assert corrected["phase2_hit_precision"] > uncorrected["phase2_hit_precision"]
        assert corrected["final_tau_lsm"] > 0.9
        # Fine-tuning additionally repairs the judger itself.
        assert tuned["final_neg_score_mean"] < 0.2
        assert tuned["phase2_hit_rate"] >= corrected["phase2_hit_rate"]
