"""Tests for AsteriaConfig validation and derived latencies."""

import pytest

from repro.core import AsteriaConfig


class TestValidation:
    def test_defaults_valid(self):
        config = AsteriaConfig()
        assert config.tau_sim == 0.7
        assert config.tau_lsm == 0.9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau_sim": 1.5},
            {"tau_lsm": -0.1},
            {"max_candidates": 0},
            {"capacity_items": 0},
            {"default_ttl": 0.0},
            {"ann_latency": -1.0},
            {"prefetch_confidence": 2.0},
            {"prefetch_max_per_event": 0},
            {"recalibration_interval": 0.0},
            {"recalibration_samples": 0},
            {"target_precision": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AsteriaConfig(**kwargs)

    def test_none_capacity_and_ttl_allowed(self):
        config = AsteriaConfig(capacity_items=None, default_ttl=None)
        assert config.capacity_items is None


class TestCacheCheckLatency:
    def test_no_judging_is_ann_only_cost(self):
        config = AsteriaConfig()
        assert config.cache_check_latency(judged=0) == pytest.approx(0.02)

    def test_one_candidate_matches_figure_11(self):
        config = AsteriaConfig()
        # 0.02 ANN + (0.02 base + 0.01 per candidate) = 0.05 total; the
        # judger part is the paper's 0.03 s.
        assert config.cache_check_latency(judged=1) == pytest.approx(0.05)

    def test_scales_with_candidates(self):
        config = AsteriaConfig()
        assert config.cache_check_latency(judged=3) == pytest.approx(0.07)

    def test_ann_only_mode_skips_judger_cost(self):
        config = AsteriaConfig(ann_only=True)
        assert config.cache_check_latency(judged=3) == pytest.approx(0.02)
