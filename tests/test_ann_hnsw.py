"""Tests for the from-scratch HNSW index."""

import numpy as np
import pytest

from repro.ann import FlatIndex, HNSWIndex


def unit_vectors(rng, n, dim=32):
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestHNSWBasics:
    def test_empty_search(self):
        assert HNSWIndex(16).search(np.ones(16), k=3) == []

    def test_single_item(self, rng):
        index = HNSWIndex(32, seed=1)
        vector = unit_vectors(rng, 1)[0]
        index.add(1, vector)
        hits = index.search(vector, k=1)
        assert hits[0].key == 1
        assert hits[0].score == pytest.approx(1.0, abs=1e-5)

    def test_duplicate_key_rejected(self, rng):
        index = HNSWIndex(32, seed=1)
        index.add(1, unit_vectors(rng, 1)[0])
        with pytest.raises(KeyError):
            index.add(1, unit_vectors(rng, 1)[0])

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            HNSWIndex(32).add(1, np.ones(8))

    def test_invalid_construction_params(self):
        with pytest.raises(ValueError):
            HNSWIndex(32, m=1)
        with pytest.raises(ValueError):
            HNSWIndex(32, m=16, ef_construction=4)
        with pytest.raises(ValueError):
            HNSWIndex(32, compaction_ratio=0.0)

    def test_len_and_contains(self, rng):
        index = HNSWIndex(32, seed=1)
        vectors = unit_vectors(rng, 5)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
        assert len(index) == 5
        assert 3 in index and 9 not in index


class TestHNSWRecall:
    def test_high_recall_vs_flat(self, rng):
        vectors = unit_vectors(rng, 400)
        hnsw = HNSWIndex(32, seed=2, ef_search=64)
        flat = FlatIndex(32)
        for key, vector in enumerate(vectors):
            hnsw.add(key, vector)
            flat.add(key, vector)
        recall_sum = 0.0
        queries = unit_vectors(rng, 40)
        for query in queries:
            truth = {h.key for h in flat.search(query, 10)}
            got = {h.key for h in hnsw.search(query, 10)}
            recall_sum += len(truth & got) / 10
        assert recall_sum / len(queries) > 0.9

    def test_results_sorted_best_first(self, rng):
        index = HNSWIndex(32, seed=2)
        for key, vector in enumerate(unit_vectors(rng, 100)):
            index.add(key, vector)
        hits = index.search(unit_vectors(rng, 1)[0], k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_given_seed(self, rng):
        vectors = unit_vectors(rng, 100)
        query = unit_vectors(rng, 1)[0]

        def build():
            index = HNSWIndex(32, seed=3)
            for key, vector in enumerate(vectors):
                index.add(key, vector)
            return [hit.key for hit in index.search(query, 10)]

        assert build() == build()


class TestHNSWDeletion:
    def test_tombstoned_item_not_returned(self, rng):
        index = HNSWIndex(32, seed=2)
        vectors = unit_vectors(rng, 50)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
        index.remove(7)
        assert 7 not in index
        hits = index.search(vectors[7], k=10)
        assert all(hit.key != 7 for hit in hits)

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            HNSWIndex(32).remove(1)

    def test_double_remove_rejected(self, rng):
        index = HNSWIndex(32, seed=2)
        index.add(1, unit_vectors(rng, 1)[0])
        index.remove(1)
        with pytest.raises(KeyError):
            index.remove(1)

    def test_entry_point_replaced_on_removal(self, rng):
        index = HNSWIndex(32, seed=2)
        vectors = unit_vectors(rng, 20)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
        # Remove items one by one; the index must stay searchable throughout.
        for key in range(19):
            index.remove(key)
            survivor_hits = index.search(vectors[19], k=1)
            assert survivor_hits, f"index unsearchable after removing {key}"
        assert index.search(vectors[19], k=1)[0].key == 19

    def test_compaction_keeps_recall(self, rng):
        index = HNSWIndex(32, seed=2, compaction_ratio=0.3)
        flat = FlatIndex(32)
        vectors = unit_vectors(rng, 200)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
            flat.add(key, vector)
        for key in range(150):
            index.remove(key)
            flat.remove(key)
        # Compaction has certainly run by now.
        assert index.tombstones / max(1, len(index) + index.tombstones) <= 0.5
        query = unit_vectors(rng, 1)[0]
        truth = {h.key for h in flat.search(query, 10)}
        got = {h.key for h in index.search(query, 10)}
        assert len(truth & got) >= 8

    def test_key_resurrection_uses_new_vector(self, rng):
        index = HNSWIndex(32, seed=2)
        old, new = unit_vectors(rng, 2)
        index.add(1, old)
        index.remove(1)
        index.add(1, new)
        assert index.search(new, k=1)[0].score == pytest.approx(1.0, abs=1e-5)
