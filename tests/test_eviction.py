"""Tests for eviction policies, LCFU in particular (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    FIFOPolicy,
    LCFUPolicy,
    LFUPolicy,
    LRUPolicy,
    SemanticElement,
    SizeAwareLFUPolicy,
    policy_by_name,
)


def element(**overrides) -> SemanticElement:
    defaults = dict(
        element_id=1,
        key="k",
        value="v",
        embedding=np.zeros(4, dtype=np.float32),
        staticity=6,
        frequency=3,
        retrieval_latency=0.4,
        retrieval_cost=0.005,
        size_tokens=64,
        created_at=0.0,
        last_accessed_at=50.0,
        expires_at=1000.0,
    )
    defaults.update(overrides)
    return SemanticElement(**defaults)


class TestLCFU:
    def test_expired_scores_zero(self):
        policy = LCFUPolicy()
        assert policy.score(element(expires_at=10.0), now=20.0) == 0.0

    def test_zero_size_scores_zero(self):
        policy = LCFUPolicy()
        assert policy.score(element(size_tokens=0), now=0.0) == 0.0

    def test_zero_frequency_scores_zero(self):
        # log(0 + 1) = 0: speculative/new entries are prime victims (§4.3).
        policy = LCFUPolicy()
        assert policy.score(element(frequency=0), now=0.0) == 0.0

    def test_matches_algorithm_2_formula(self):
        import math

        item = element(
            frequency=5, retrieval_cost=0.02, retrieval_latency=0.8,
            staticity=9, size_tokens=100,
        )
        expected = (
            math.log(6) * math.log(0.02 * 1e3 + 1) * math.log(1.8) * math.log(10)
        ) / 100
        assert LCFUPolicy().score(item, now=0.0) == pytest.approx(expected)

    def test_monotone_in_frequency(self):
        policy = LCFUPolicy()
        low = policy.score(element(frequency=1), now=0.0)
        high = policy.score(element(frequency=10), now=0.0)
        assert high > low

    def test_monotone_in_cost(self):
        policy = LCFUPolicy()
        cheap = policy.score(element(retrieval_cost=0.001), now=0.0)
        pricey = policy.score(element(retrieval_cost=0.05), now=0.0)
        assert pricey > cheap

    def test_monotone_in_staticity(self):
        policy = LCFUPolicy()
        ephemeral = policy.score(element(staticity=2), now=0.0)
        stable = policy.score(element(staticity=10), now=0.0)
        assert stable > ephemeral

    def test_larger_items_score_lower(self):
        policy = LCFUPolicy()
        small = policy.score(element(size_tokens=10), now=0.0)
        large = policy.score(element(size_tokens=1000), now=0.0)
        assert small > large

    def test_sub_dollar_cost_contributes_positively(self):
        # The *1e3 shift exists exactly because log(cost) < 0 for cost < $1.
        policy = LCFUPolicy()
        assert policy.score(element(retrieval_cost=0.005, frequency=1), now=0.0) > 0


class TestClassicPolicies:
    def test_lru_orders_by_recency(self):
        policy = LRUPolicy()
        older = element(last_accessed_at=10.0)
        newer = element(last_accessed_at=20.0)
        assert policy.score(older, 0.0) < policy.score(newer, 0.0)

    def test_lfu_orders_by_frequency(self):
        policy = LFUPolicy()
        rare = element(frequency=1)
        popular = element(frequency=9)
        assert policy.score(rare, 0.0) < policy.score(popular, 0.0)

    def test_lfu_recency_breaks_frequency_ties(self):
        policy = LFUPolicy()
        older = element(frequency=3, last_accessed_at=10.0)
        newer = element(frequency=3, last_accessed_at=20.0)
        assert policy.score(older, 0.0) < policy.score(newer, 0.0)

    def test_lfu_recency_never_outweighs_frequency(self):
        policy = LFUPolicy()
        frequent_old = element(frequency=4, last_accessed_at=0.0)
        rare_recent = element(frequency=3, last_accessed_at=900000.0)
        assert policy.score(frequent_old, 0.0) > policy.score(rare_recent, 0.0)

    def test_fifo_orders_by_creation(self):
        policy = FIFOPolicy()
        first = element(created_at=1.0)
        second = element(created_at=2.0)
        assert policy.score(first, 0.0) < policy.score(second, 0.0)

    def test_size_aware_lfu(self):
        policy = SizeAwareLFUPolicy()
        dense = element(frequency=4, size_tokens=10)
        bulky = element(frequency=4, size_tokens=1000)
        assert policy.score(dense, 0.0) > policy.score(bulky, 0.0)
        assert policy.score(element(size_tokens=0), 0.0) == 0.0


class TestRegistry:
    def test_all_policies_resolvable(self):
        for name in ("lcfu", "lru", "lfu", "fifo", "size-lfu"):
            assert policy_by_name(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            policy_by_name("arc")
