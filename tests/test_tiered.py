"""Tests for the two-tier (L1 + shared L2) engine."""

import pytest

from repro.core import AsteriaConfig, Query
from repro.factory import (
    build_remote,
    build_semantic_cache,
    build_tiered_engine,
)
from repro.sim import Simulator


def fleet(n_nodes=2, l1_capacity=16, seed=5):
    remote = build_remote(seed=3)
    l2 = build_semantic_cache(AsteriaConfig(capacity_items=256), seed=seed)
    nodes = [
        build_tiered_engine(
            remote, l2, l1_capacity=l1_capacity, seed=seed, name=f"node{i}"
        )
        for i in range(n_nodes)
    ]
    return remote, l2, nodes


class TestTieredLookupPath:
    def test_miss_populates_both_tiers(self):
        remote, l2, (node, _) = fleet()
        response = node.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        assert not response.served_from_cache
        assert len(node.l1) == 1
        assert len(l2) == 1

    def test_l1_hit_is_fast_and_local(self):
        remote, l2, (node, _) = fleet()
        node.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        response = node.handle(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert response.served_from_cache
        assert node.l1_hits == 1 and node.l2_hits == 0
        # No L2 round trip on an L1 hit.
        assert response.latency < node.l2_latency + 0.06

    def test_one_node_warms_the_fleet_via_l2(self):
        remote, l2, (node_a, node_b) = fleet()
        node_a.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        response = node_b.handle(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert response.served_from_cache
        assert node_b.l2_hits == 1
        assert remote.calls == 1  # Only node A ever went remote.

    def test_l2_hit_promotes_into_l1(self):
        remote, l2, (node_a, node_b) = fleet()
        node_a.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        node_b.handle(Query("mona lisa painter ok", fact_id="F"), 1.0)
        # Second request on node B now hits its own L1.
        node_b.handle(Query("tell me who painted mona lisa", fact_id="F"), 2.0)
        assert node_b.l1_hits == 1

    def test_l2_hit_latency_includes_the_hop(self):
        remote, l2, (node_a, node_b) = fleet()
        node_a.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        response = node_b.handle(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert response.latency >= node_b.l2_latency + 0.02

    def test_duplicate_l2_insert_suppressed(self):
        remote, l2, (node_a, node_b) = fleet()
        node_a.handle(Query("unique topic alpha", fact_id="A"), 0.0)
        # Node B misses everything for a different fact; both fetch remotely,
        # but the same fact is never double-inserted into L2.
        node_b.handle(Query("topic alpha unique", fact_id="A"), 0.0)
        entries = [e for e in l2.elements.values() if e.truth_key == "A"]
        assert len(entries) == 1

    def test_correctness_accounting(self):
        remote, l2, (node, _) = fleet()
        node.handle(Query("who won the world cup 2018", fact_id="A"), 0.0)
        response = node.handle(Query("who won the world cup 2022", fact_id="B"), 1.0)
        assert not response.served_from_cache
        assert node.metrics.served_incorrect == 0


class TestTieredProcessMode:
    def test_des_path_matches_analytic_hits(self):
        remote, l2, (node, _) = fleet()
        sim = Simulator()

        def run(query):
            process = sim.process(node.process(sim, query))
            sim.run()
            return process.value

        first = run(Query("who painted the mona lisa", fact_id="F"))
        second = run(Query("mona lisa painter ok", fact_id="F"))
        assert not first.served_from_cache
        assert second.served_from_cache
        assert node.l1_hits == 1

    def test_fleet_hit_rate_improves_with_shared_l2(self):
        """The fleet-scale claim: a shared tier converts one node's misses
        into the whole fleet's hits."""
        from repro.workloads import SkewedWorkload, build_dataset

        dataset = build_dataset("musique", seed=1)

        def fleet_hit_rate(shared: bool) -> float:
            remote = build_remote(dataset.universe, seed=3)
            nodes = []
            if shared:
                l2 = build_semantic_cache(
                    AsteriaConfig(capacity_items=256), seed=5
                )
                for index in range(4):
                    nodes.append(
                        build_tiered_engine(remote, l2, l1_capacity=8, seed=5)
                    )
            else:
                for index in range(4):
                    own_l2 = build_semantic_cache(
                        AsteriaConfig(capacity_items=8), seed=5
                    )
                    nodes.append(
                        build_tiered_engine(remote, own_l2, l1_capacity=8, seed=5)
                    )
            workload = SkewedWorkload(dataset, seed=2)
            now = 0.0
            for index, query in enumerate(workload.queries(240)):
                response = nodes[index % 4].handle(query, now)
                now += response.latency + 0.05
            hits = sum(node.metrics.hits for node in nodes)
            total = sum(node.metrics.requests for node in nodes)
            return hits / total

        assert fleet_hit_rate(shared=True) > fleet_hit_rate(shared=False) + 0.1
