"""Tests for the paraphrase generator."""

import pytest

from repro.embedding import HashingEmbedder, SimpleTokenizer, cosine_similarity
from repro.workloads import Paraphraser
from repro.workloads.paraphrase import DEFAULT_FILLERS, DEFAULT_TEMPLATES


class TestParaphraser:
    def test_variant_space_is_template_times_filler(self):
        paraphraser = Paraphraser()
        assert paraphraser.variants == len(DEFAULT_TEMPLATES) * len(DEFAULT_FILLERS)

    def test_deterministic(self):
        paraphraser = Paraphraser()
        assert paraphraser.phrase("height everest", 5) == paraphraser.phrase(
            "height everest", 5
        )

    def test_all_variants_distinct(self):
        paraphraser = Paraphraser()
        phrases = paraphraser.all_phrases("height everest")
        assert len(set(phrases)) == len(phrases)

    def test_variant_wraps_modulo(self):
        paraphraser = Paraphraser()
        assert paraphraser.phrase("x y", 0) == paraphraser.phrase(
            "x y", paraphraser.variants
        )

    def test_core_tokens_always_present(self):
        paraphraser = Paraphraser()
        for phrase in paraphraser.all_phrases("height everest"):
            assert "height" in phrase and "everest" in phrase

    def test_some_variant_reverses_word_order(self):
        paraphraser = Paraphraser()
        phrases = paraphraser.all_phrases("alpha beta")
        assert any("beta alpha" in phrase for phrase in phrases)

    def test_filler_words_are_all_stopwords(self):
        """The load-bearing invariant: filler must not perturb content."""
        tokenizer = SimpleTokenizer()
        paraphraser = Paraphraser()
        core_stems = set(tokenizer.content_tokens("placeholder core"))
        for phrase in paraphraser.all_phrases("placeholder core"):
            assert set(tokenizer.content_tokens(phrase)) == core_stems, phrase

    def test_variants_embed_above_coarse_threshold(self):
        embedder = HashingEmbedder(seed=7)
        paraphraser = Paraphraser()
        base = embedder.embed(paraphraser.phrase("height mount everest", 0))
        for variant in range(1, paraphraser.variants):
            other = embedder.embed(paraphraser.phrase("height mount everest", variant))
            assert cosine_similarity(base, other) >= 0.75, variant

    def test_empty_core_rejected(self):
        with pytest.raises(ValueError):
            Paraphraser().phrase("", 0)

    def test_template_without_slot_rejected(self):
        with pytest.raises(ValueError):
            Paraphraser(templates=("no slot here",))

    def test_variant_count_override(self):
        paraphraser = Paraphraser(variants=3)
        assert len(paraphraser.all_phrases("x y")) == 3

    def test_invalid_variant_count_rejected(self):
        with pytest.raises(ValueError):
            Paraphraser(variants=0)
        with pytest.raises(ValueError):
            Paraphraser(variants=10_000)
