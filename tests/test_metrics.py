"""Tests for latency stats and engine metrics."""

import pytest

from repro.core import EngineMetrics, LatencyStats


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p99 == 0.0
        assert stats.max == 0.0

    def test_mean_and_total(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.total == pytest.approx(6.0)

    def test_percentiles(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.add(float(value))
        assert stats.p50 == pytest.approx(50.5)
        assert stats.percentile(99) == pytest.approx(99.01)
        assert stats.max == 100.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-0.1)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_samples_copy_is_isolated(self):
        stats = LatencyStats()
        stats.add(1.0)
        samples = stats.samples()
        samples.append(99.0)
        assert stats.count == 1


class TestEngineMetrics:
    def test_hit_rate_excludes_bypasses(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.record_lookup("miss")
        metrics.record_lookup("bypass")
        assert metrics.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty_is_zero(self):
        assert EngineMetrics().hit_rate == 0.0

    def test_accuracy(self):
        metrics = EngineMetrics()
        metrics.served_correct = 9
        metrics.served_incorrect = 1
        assert metrics.accuracy == pytest.approx(0.9)

    def test_accuracy_empty_is_one(self):
        assert EngineMetrics().accuracy == 1.0

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            EngineMetrics().record_lookup("unknown")

    def test_reset_zeros_everything(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.total_latency.add(1.0)
        metrics.reset()
        assert metrics.requests == 0
        assert metrics.total_latency.count == 0

    def test_summary_round_trips_key_fields(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.total_latency.add(0.5)
        summary = metrics.summary()
        assert summary["requests"] == 1
        assert summary["hit_rate"] == 1.0
        assert summary["mean_latency"] == 0.5
