"""Tests for latency stats and engine metrics."""

import pytest

from repro.core import EngineMetrics, LatencyStats


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p99 == 0.0
        assert stats.max == 0.0

    def test_mean_and_total(self):
        stats = LatencyStats()
        for value in (1.0, 2.0, 3.0):
            stats.add(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.total == pytest.approx(6.0)

    def test_percentiles(self):
        stats = LatencyStats()
        for value in range(1, 101):
            stats.add(float(value))
        assert stats.p50 == pytest.approx(50.5)
        assert stats.percentile(99) == pytest.approx(99.01)
        assert stats.max == 100.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-0.1)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(101)

    def test_samples_copy_is_isolated(self):
        stats = LatencyStats()
        stats.add(1.0)
        samples = stats.samples()
        samples.append(99.0)
        assert stats.count == 1


class TestEngineMetrics:
    def test_hit_rate_excludes_bypasses(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.record_lookup("miss")
        metrics.record_lookup("bypass")
        assert metrics.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty_is_zero(self):
        assert EngineMetrics().hit_rate == 0.0

    def test_accuracy(self):
        metrics = EngineMetrics()
        metrics.served_correct = 9
        metrics.served_incorrect = 1
        assert metrics.accuracy == pytest.approx(0.9)

    def test_accuracy_empty_is_one(self):
        assert EngineMetrics().accuracy == 1.0

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            EngineMetrics().record_lookup("unknown")

    def test_reset_zeros_everything(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.total_latency.add(1.0)
        metrics.reset()
        assert metrics.requests == 0
        assert metrics.total_latency.count == 0

    def test_summary_round_trips_key_fields(self):
        metrics = EngineMetrics()
        metrics.record_lookup("hit")
        metrics.total_latency.add(0.5)
        summary = metrics.summary()
        assert summary["requests"] == 1
        assert summary["hit_rate"] == 1.0
        assert summary["mean_latency"] == 0.5


class TestMemoryEnvelope:
    """Satellite regression: a 10^6-request run must stay inside a fixed
    memory envelope. Every per-request sink is bounded — the latency
    reservoir, the request log, and the span store — so retained state is a
    function of the configured caps, never of run length."""

    N = 1_000_000

    def test_million_request_run_stays_bounded(self):
        import sys

        from repro.core.tracelog import TraceLog
        from repro.obs import Tracer

        class _Lookup:
            status = "hit"
            latency = 0.001
            candidates = 1
            judged = 1
            truth_match = True

        class _Response:
            lookup = _Lookup()
            degraded = None
            latency = 0.002
            fetch = None

        class _Query:
            text = "q"
            tool = "kb"

        stats = LatencyStats()
        log = TraceLog(max_records=10_000)
        tracer = Tracer(max_spans=10_000)
        query, response = _Query(), _Response()
        clock = tracer.clock
        for i in range(self.N):
            stats.add((i % 997) * 1e-6)
            log.record(i * 1e-3, query, response)
            t0 = clock()
            tracer.record_leaf("embed", t0)

        # Exact aggregates survive the bound ...
        assert stats.count == self.N
        expected = (
            (self.N // 997) * sum(range(997)) + sum(range(self.N % 997))
        ) * 1e-6
        assert stats.total == pytest.approx(expected)
        assert len(log) == 10_000
        assert log.dropped == self.N - 10_000
        assert len(tracer) == 10_000
        assert tracer.dropped == self.N - 10_000

        # ... while retained state stays at the configured caps.
        assert len(stats.samples()) == stats.max_samples
        assert len(log.records()) == 10_000
        assert len(tracer.spans()) == 10_000

        # Container-level envelope: the three sinks' retained stores sum to
        # low single-digit MB. An unbounded regression (list append per
        # request) would put any one of them at tens of MB.
        envelope = (
            sys.getsizeof(stats._samples)
            + sys.getsizeof(log._records)
            + sys.getsizeof(tracer._spans)
        )
        assert envelope < 4 * 1024 * 1024

    def test_ten_million_entry_arena_fill_stays_in_envelope(self):
        """A 10^7-entry int8 arena holds its stated envelope: codes + scales
        land at dim+4 bytes per row (120 MB at dim=8) with zero slot-
        bookkeeping overhead per virgin row, and the fill itself runs as
        chunked ``allocate_batch`` calls — seconds, not minutes."""
        import numpy as np

        from repro.core.arena import QuantizedArena

        entries = 10_000_000
        dim = 8
        arena = QuantizedArena(dim, initial_capacity=entries)
        rng = np.random.default_rng(0)
        chunk = rng.normal(size=(100_000, dim)).astype(np.float32)
        for _ in range(entries // chunk.shape[0]):
            arena.allocate_batch(chunk)

        assert len(arena) == entries
        assert arena.high_water == entries
        assert arena.grows == 0  # the stated capacity was honoured exactly
        # Stated envelope: (dim + 4) bytes per entry, under 128 MiB here —
        # the float32 tier would need 4 * dim = 305 MiB for the same fill.
        assert arena.memory_bytes() == entries * (dim + 4)
        assert arena.memory_bytes() < 128 * 1024 * 1024
        # Rows are still addressable at the far end of the matrix.
        assert arena.get(entries - 1).shape == (dim,)
