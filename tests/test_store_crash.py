"""Crash recovery: kill -9 a process mid-journal, restart, lose nothing
that was fsynced.

The victim runs in a real subprocess so the kill exercises the actual
durability boundary: Python's user-space file buffer dies with the
process, the fsynced prefix of the journal does not. With
``fsync_every=N`` the recovered cache must hold exactly the entries
admitted up to the last completed fsync batch — deterministically, since
the workload has no evictions.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The victim: attach a PersistentStore, admit entries one per line of
#: stdout (so the parent can kill at a precise point), never exit cleanly.
VICTIM = """
import sys
from repro.core.config import AsteriaConfig
from repro.core.types import FetchResult
from repro.core import Query
from repro.factory import build_semantic_cache

persist_dir, fsync_every, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = build_semantic_cache(
    AsteriaConfig(capacity_items=None),
    seed=9,
    persist_dir=persist_dir,
    fsync_every=fsync_every,
)
for index in range(n):
    cache.insert(
        Query(f"crash fact {index} ocelot", fact_id=f"F{index}", staticity=8),
        FetchResult(result=f"answer-{index}", latency=0.4, service_latency=0.4,
                    cost=0.005, size_tokens=16),
        now=float(index),
    )
    print(f"admitted {index}", flush=True)
print("DONE", flush=True)
import time
time.sleep(60)  # hold the dirty buffer; the parent kills us here
"""


def run_victim(persist_dir, fsync_every, n, kill_after):
    """Start the victim, SIGKILL it after ``kill_after`` admissions."""
    process = subprocess.Popen(
        [sys.executable, "-c", VICTIM, str(persist_dir), str(fsync_every), str(n)],
        stdout=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": REPO_SRC},
    )
    admitted = 0
    try:
        for line in process.stdout:
            if line.startswith("admitted"):
                admitted += 1
                if admitted >= kill_after:
                    break
            if line.startswith("DONE"):
                break
        process.kill()  # SIGKILL: no atexit, no flush, no checkpoint
        process.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()
    return admitted


def recover(persist_dir):
    from repro.core.config import AsteriaConfig
    from repro.factory import build_semantic_cache

    cache = build_semantic_cache(
        AsteriaConfig(capacity_items=None), seed=9, persist_dir=persist_dir
    )
    return cache, cache.restore_report


class TestCrashRecovery:
    def test_sigkill_loses_at_most_the_unfsynced_batch(self, tmp_path):
        fsync_every, total = 4, 10
        admitted = run_victim(tmp_path, fsync_every, total, kill_after=total)
        assert admitted == total
        cache, report = recover(tmp_path)
        # All 10 were admitted; the process died holding 10 % 4 = 2 records
        # in its user-space buffer. The two completed fsync batches (8
        # records) are the durability promise — and the OS may have the
        # tail too if the buffer happened to flush.
        durable_floor = (total // fsync_every) * fsync_every
        assert len(cache) >= durable_floor
        assert report.journal_admits == len(cache)
        recovered_ids = sorted(
            int(element.truth_key[1:]) for element in cache.elements.values()
        )
        # Recovery is a strict prefix of the admission order: no holes.
        assert recovered_ids == list(range(len(recovered_ids)))
        cache.persistent_store.close()

    def test_fsync_every_record_loses_nothing(self, tmp_path):
        total = 7
        run_victim(tmp_path, 1, total, kill_after=total)
        cache, report = recover(tmp_path)
        assert len(cache) == total
        assert not report.cold
        cache.persistent_store.close()

    def test_recovered_beats_snapshot_only_baseline(self, tmp_path):
        """The journal must add entries over what the snapshot alone holds
        (the CI persistence-smoke invariant)."""
        from repro.core.persistence import CacheSnapshot
        from repro.store.persist import SNAPSHOT_FILE

        run_victim(tmp_path, 1, 9, kill_after=9)
        snapshot_path = tmp_path / SNAPSHOT_FILE
        snapshot_records = len(CacheSnapshot.load(snapshot_path))
        cache, report = recover(tmp_path)
        # attach() checkpointed an *empty* snapshot before the victim's
        # inserts began, so every recovered entry came from the journal.
        assert snapshot_records == 0
        assert len(cache) == 9 > snapshot_records
        assert report.journal_admits == 9
        cache.persistent_store.close()

    def test_restart_after_crash_checkpoints_cleanly(self, tmp_path):
        """Recovery itself must leave a compacted, journal-from-scratch
        state: a second restart restores from the fresh snapshot."""
        run_victim(tmp_path, 1, 6, kill_after=6)
        first, report_one = recover(tmp_path)
        assert report_one.journal_admits == 6
        first.persistent_store.close()
        second, report_two = recover(tmp_path)
        assert report_two.snapshot_restored == 6
        assert report_two.journal_records == 0
        assert len(second) == 6
        second.persistent_store.close()

    def test_torn_tail_after_kill_is_dropped(self, tmp_path):
        """Simulate the kill-mid-write case directly: a torn final line in
        the journal is discarded, everything before it replays."""
        run_victim(tmp_path, 1, 5, kill_after=5)
        journal = tmp_path / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 999, "op": "admit", "id": 99, "rec')
        cache, report = recover(tmp_path)
        assert report.journal_truncated_tail
        assert len(cache) == 5
        cache.persistent_store.close()
