"""Self-healing proc tier: supervision, fault domains, warm recovery.

These tests SIGKILL real worker processes (directly or through the seeded
:class:`ProcFaultInjector`) and assert the contract the tentpole promises:
no raw :class:`WorkerError` ever escapes ``serve()``, healthy shards are
untouched by a sibling's death, a supervised worker comes back (warm when
persisted), and a crash-looping shard degrades permanently instead of
flapping forever.
"""

import asyncio
import os
import signal

from repro.core import Query
from repro.factory import build_proc_engine, build_remote
from repro.serving.proc import ProcFaultInjector

VALID_STATUSES = {"ok", "stale_hit", "failed", "overloaded", "deadline_exceeded"}

#: Fast supervisor knobs so recovery fits inside a test budget.
FAST = dict(
    supervisor_ping_interval=0.05,
    supervisor_ping_timeout=1.0,
    supervisor_backoff_base=0.01,
    supervisor_backoff_max=0.05,
    shard_open_seconds=0.1,
)


def _queries(n, population=8):
    return [
        Query(
            f"stress fact number {i % population} of the universe",
            fact_id=f"F{i % population}",
        )
        for i in range(n)
    ]


def _shard_queries(pool, shard, n):
    """``n`` distinct queries that route to ``shard``."""
    picked = []
    i = 0
    while len(picked) < n:
        text = f"fault domain probe {i} stays local"
        if pool.shard_for(text) == shard:
            picked.append(Query(text, fact_id=f"P{i}"))
        i += 1
    return picked


async def _await_restarts(engine, count, timeout=30.0):
    for _ in range(int(timeout / 0.05)):
        if engine.metrics.worker_restarts >= count:
            return
        await asyncio.sleep(0.05)
    raise AssertionError(
        f"worker_restarts stuck at {engine.metrics.worker_restarts}, "
        f"wanted {count} (supervisor={engine.pool.supervisor!r})"
    )


def test_supervisor_respawns_after_sigkill():
    faults = ProcFaultInjector(kill_shard=0, kill_at=10)
    engine = build_proc_engine(
        build_remote(seed=0), seed=0, workers=2, proc_faults=faults, **FAST
    )

    async def drive():
        outcomes = []
        async with engine:
            for i, query in enumerate(_queries(40)):
                outcomes.append(await engine.serve(query, now=i * 0.01))
            await _await_restarts(engine, 1)
            # Post-recovery traffic lands on the respawned worker.
            for i, query in enumerate(_queries(10)):
                outcomes.append(await engine.serve(query, now=1.0 + i * 0.01))
        return outcomes

    outcomes = asyncio.run(drive())
    assert faults.kills == 1
    assert engine.metrics.worker_restarts == 1
    assert all(o.status in VALID_STATUSES for o in outcomes)
    # The kill cost at most the degraded window, never the run.
    served = sum(o.status in ("ok", "stale_hit") for o in outcomes)
    assert served / len(outcomes) >= 0.9
    assert engine.pool.supervisor.state == ["up", "up"]


def test_healthy_shard_stats_unchanged_by_kill():
    """Shard 1 must not notice shard 0's death: its stats after an identical
    sequential workload are byte-identical with and without the kill."""

    def run(kill):
        faults = (
            ProcFaultInjector(kill_shard=0, kill_at=8) if kill else None
        )
        engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=2, proc_faults=faults, **FAST
        )

        async def drive():
            async with engine:
                for i, query in enumerate(_queries(30)):
                    outcome = await engine.serve(query, now=i * 0.01)
                    assert outcome.status in VALID_STATUSES
                if kill:
                    await _await_restarts(engine, 1)
                stats = await engine.pool.stats()
            return stats

        return asyncio.run(drive())

    baseline = run(kill=False)
    chaotic = run(kill=True)
    assert chaotic[1] == baseline[1]


def test_warm_restore_after_respawn_with_persist(tmp_path):
    """A persisted shard comes back warm: the journaled entries hit again
    after the SIGKILL+respawn; without --persist the same respawn is cold."""

    def run(persist_dir):
        engine = build_proc_engine(
            build_remote(seed=0),
            seed=0,
            workers=1,
            persist_dir=persist_dir,
            fsync_every=1,
            **FAST,
        )
        queries = _queries(12, population=12)

        async def drive():
            async with engine:
                for i, query in enumerate(queries):
                    await engine.serve(query, now=i * 0.01)
                primed_hits = engine.metrics.hits
                os.kill(engine.pool.processes[0].pid, signal.SIGKILL)
                await _await_restarts(engine, 1)
                for i, query in enumerate(queries):
                    await engine.serve(query, now=0.5 + i * 0.01)
                return engine.metrics.hits - primed_hits

        return asyncio.run(drive())

    warm_hits = run(str(tmp_path / "store"))
    cold_hits = run(None)
    assert warm_hits > 0  # the replayed journal answered the replays
    assert warm_hits > cold_hits  # ...and the lift is the persistence tier's


def test_crash_loop_cap_goes_permanent_degraded():
    engine = build_proc_engine(
        build_remote(seed=0),
        seed=0,
        workers=2,
        supervisor_max_restarts=0,  # first death is already the cap
        **FAST,
    )

    async def drive():
        async with engine:
            probes = _shard_queries(engine.pool, 0, 6)
            for i, query in enumerate(probes[:2]):
                assert (await engine.serve(query, now=i * 0.01)).status == "ok"
            os.kill(engine.pool.processes[0].pid, signal.SIGKILL)
            supervisor = engine.pool.supervisor
            for _ in range(200):
                if supervisor.permanent[0]:
                    break
                await asyncio.sleep(0.05)
            assert supervisor.permanent[0]
            assert supervisor.state[0] == "dead"
            # The shard is gone for good but its requests still resolve.
            outcomes = [
                await engine.serve(query, now=1.0 + i * 0.01)
                for i, query in enumerate(probes[2:])
            ]
        return outcomes

    outcomes = asyncio.run(drive())
    assert engine.metrics.worker_restarts == 0
    assert all(o.status in VALID_STATUSES for o in outcomes)
    assert engine.metrics.shard_down_fetches + engine.metrics.stale_hits > 0


def test_worker_error_never_escapes_without_supervision():
    """Satellite regression: a dying client fails every pending waiter with
    the *shared* connection-lost error, yet the engine accounts the shard
    failure exactly once and every concurrent request resolves degraded."""
    faults = ProcFaultInjector(kill_shard=0, drop_rate=1.0)
    engine = build_proc_engine(
        build_remote(seed=0),
        seed=0,
        workers=2,
        supervise=False,
        proc_faults=faults,
        shard_open_seconds=30.0,  # stay open: no half-open probes mid-test
    )

    async def drive():
        async with engine:
            probes = _shard_queries(engine.pool, 0, 4)
            # Reply frames for shard 0 are all dropped: these four park as
            # pending waiters on the shard client.
            tasks = [
                asyncio.ensure_future(engine.serve(query, now=0.0))
                for query in probes
            ]
            await asyncio.sleep(0.3)
            assert faults.kill_worker(engine.pool)
            # gather() without return_exceptions: an escaping WorkerError
            # would fail the whole drive.
            return await asyncio.gather(*tasks)

    outcomes = asyncio.run(drive())
    assert [o.status for o in outcomes] == ["ok"] * 4  # bypass fetches
    assert engine.metrics.shard_down_fetches == 4
    # One connection loss == one shard failure, not one per waiter.
    assert engine.shard_failures[0] == 1
    assert engine.metrics.worker_restarts == 0


def test_client_reconnects_once_after_server_drop():
    """Satellite: ProcClient built via connect() re-dials once when the link
    drops and replays the interrupted call."""
    from repro.serving.proc.client import ProcClient
    from repro.serving.proc.protocol import get_codec, read_frame, write_frame

    codec = get_codec("pickle")

    async def drive():
        connections = {"count": 0}

        async def handle(reader, writer):
            connections["count"] += 1
            flaky = connections["count"] == 1
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                request_id, op, body = codec.loads(payload)
                write_frame(writer, codec.dumps([request_id, True, "pong"]))
                await writer.drain()
                if flaky:
                    break  # first connection dies after one reply
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = await ProcClient.connect("127.0.0.1", port)
        try:
            assert await client.call("ping") == "pong"
            await asyncio.sleep(0.05)  # let the drop land
            assert await client.call("ping") == "pong"  # retried transparently
            assert client.reconnects == 1
            assert connections["count"] == 2
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    asyncio.run(drive())
