"""Tests for the exact-match baseline cache."""

import pytest

from repro.core import ExactCache, Query
from repro.core.types import FetchResult


def fetch(result="answer"):
    return FetchResult(
        result=result, latency=0.4, service_latency=0.4, cost=0.005, size_tokens=8
    )


class TestExactCache:
    def test_identical_text_hits(self):
        cache = ExactCache()
        cache.insert(Query("who painted the mona lisa"), fetch(), 0.0)
        element = cache.lookup(Query("who painted the mona lisa"), 1.0)
        assert element is not None
        assert element.frequency == 1

    def test_canonicalisation_ignores_case_and_spacing(self):
        cache = ExactCache()
        cache.insert(Query("Who Painted   the Mona Lisa"), fetch(), 0.0)
        assert cache.lookup(Query("who painted the mona lisa"), 1.0) is not None

    def test_paraphrase_misses(self):
        cache = ExactCache()
        cache.insert(Query("who painted the mona lisa"), fetch(), 0.0)
        assert cache.lookup(Query("mona lisa painter"), 1.0) is None

    def test_expired_entry_misses_and_purges(self):
        cache = ExactCache(default_ttl=10.0)
        cache.insert(Query("q"), fetch(), 0.0)
        assert cache.lookup(Query("q"), 11.0) is None
        assert len(cache) == 0
        assert cache.stats.expirations == 1

    def test_reinsert_same_key_refreshes(self):
        cache = ExactCache()
        cache.insert(Query("q"), fetch("old"), 0.0)
        cache.insert(Query("q"), fetch("new"), 5.0)
        element = cache.lookup(Query("q"), 6.0)
        assert element is not None and element.value.startswith("new")
        assert len(cache) == 1
        assert cache.stats.rejected_duplicates == 1

    def test_lru_eviction_default(self):
        cache = ExactCache(capacity_items=2)
        cache.insert(Query("a"), fetch(), 0.0)
        cache.insert(Query("b"), fetch(), 1.0)
        cache.lookup(Query("a"), 2.0)  # refresh a
        cache.insert(Query("c"), fetch(), 3.0)
        assert cache.lookup(Query("a"), 4.0) is not None
        assert cache.lookup(Query("b"), 4.0) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExactCache(capacity_items=0)

    def test_usage_counts_entries(self):
        cache = ExactCache()
        cache.insert(Query("a"), fetch(), 0.0)
        cache.insert(Query("b"), fetch(), 0.0)
        assert cache.usage() == 2
