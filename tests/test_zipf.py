"""Tests for the Zipf sampler."""

import numpy as np
import pytest

from repro.workloads import ZipfSampler


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(n=100, s=0.99)
        total = sum(sampler.probability(rank) for rank in range(100))
        assert total == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        sampler = ZipfSampler(n=50, s=0.99)
        probabilities = [sampler.probability(rank) for rank in range(50)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(n=10, s=0.0)
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(n=20, s=0.99)
        rng = np.random.default_rng(0)
        ranks = sampler.sample_many(rng, 1000)
        assert ranks.min() >= 0 and ranks.max() < 20

    def test_empirical_matches_analytic_head(self):
        sampler = ZipfSampler(n=100, s=0.99)
        rng = np.random.default_rng(1)
        ranks = sampler.sample_many(rng, 50000)
        empirical_top = float(np.mean(ranks == 0))
        assert empirical_top == pytest.approx(sampler.probability(0), rel=0.1)

    def test_head_mass_monotone(self):
        sampler = ZipfSampler(n=100, s=0.99)
        masses = [sampler.head_mass(k) for k in range(0, 101, 10)]
        assert masses == sorted(masses)
        assert sampler.head_mass(100) == pytest.approx(1.0)

    def test_head_dominates_at_high_skew(self):
        sampler = ZipfSampler(n=1000, s=0.99)
        assert sampler.head_mass(10) > 0.3  # Few head topics, most traffic.

    def test_single_sample_deterministic_per_seed(self):
        sampler = ZipfSampler(n=100, s=0.99)
        a = sampler.sample(np.random.default_rng(7))
        b = sampler.sample(np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(n=0)
        with pytest.raises(ValueError):
            ZipfSampler(n=10, s=-1.0)
        sampler = ZipfSampler(n=10)
        with pytest.raises(IndexError):
            sampler.probability(10)
        with pytest.raises(ValueError):
            sampler.head_mass(11)
        with pytest.raises(ValueError):
            sampler.sample_many(np.random.default_rng(0), -1)
