"""Tests for judge executors."""

import pytest

from repro.serving import (
    FixedLatencyExecutor,
    GpuDevice,
    KVMemoryPool,
    PartitionJudgeExecutor,
    PriorityAwareScheduler,
)
from repro.sim import Simulator


class TestFixedLatencyExecutor:
    def test_latency_formula(self, sim):
        executor = FixedLatencyExecutor(base=0.02, per_item=0.01)

        def run():
            yield from executor.run(sim, judged=3)

        sim.process(run())
        sim.run()
        assert sim.now == pytest.approx(0.05)

    def test_zero_judged_is_free(self, sim):
        executor = FixedLatencyExecutor()

        def run():
            yield from executor.run(sim, judged=0)

        sim.process(run())
        sim.run()
        assert sim.now == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FixedLatencyExecutor(base=-0.1)


class TestPartitionJudgeExecutor:
    def _scheduler(self, sim, share=0.2, speed_exponent=0.3):
        gpu = GpuDevice(sim)
        agent = gpu.partition("agent", 1.0 - share, slots=4)
        judger = gpu.partition(
            "judger", share, slots=2, speed_exponent=speed_exponent
        )
        memory = KVMemoryPool(80.0, {"agent": 56.0, "judger": 4.0})
        return PriorityAwareScheduler(sim, agent, judger, memory)

    def test_latency_reflects_partition_speed(self, sim):
        scheduler = self._scheduler(sim)
        executor = PartitionJudgeExecutor(
            scheduler, base_work=0.012, per_item_work=0.006
        )

        def run():
            yield from executor.run(sim, judged=1)

        sim.process(run())
        sim.run()
        expected = 0.018 / 0.2**0.3
        assert sim.now == pytest.approx(expected)
        # Calibration check: ~0.03 s on the co-located 20% partition.
        assert 0.025 < sim.now < 0.035

    def test_zero_judged_costs_nothing(self, sim):
        scheduler = self._scheduler(sim)
        executor = PartitionJudgeExecutor(scheduler)

        def run():
            yield from executor.run(sim, judged=0)

        sim.process(run())
        sim.run()
        assert sim.now == 0.0
        assert executor.batches == 0

    def test_batches_counted(self, sim):
        scheduler = self._scheduler(sim)
        executor = PartitionJudgeExecutor(scheduler)

        def run():
            yield from executor.run(sim, judged=2)
            yield from executor.run(sim, judged=1)

        sim.process(run())
        sim.run()
        assert executor.batches == 2

    def test_invalid_work_rejected(self, sim):
        scheduler = self._scheduler(sim)
        with pytest.raises(ValueError):
            PartitionJudgeExecutor(scheduler, base_work=-0.1)
