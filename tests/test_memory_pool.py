"""Tests for the KV memory pool."""

import pytest

from repro.serving import KVMemoryPool


@pytest.fixture
def pool():
    return KVMemoryPool(80.0, {"agent": 56.0, "judger": 4.0})


class TestKVMemoryPool:
    def test_dynamic_region_is_remainder(self, pool):
        assert pool.dynamic_gb == pytest.approx(20.0)
        assert pool.dynamic_free == pytest.approx(20.0)

    def test_allocate_uses_static_first(self, pool):
        assert pool.allocate("agent", 10.0)
        assert pool.static_free("agent") == pytest.approx(46.0)
        assert pool.dynamic_free == pytest.approx(20.0)

    def test_spill_into_dynamic(self, pool):
        assert pool.allocate("agent", 60.0)
        assert pool.static_free("agent") == 0.0
        assert pool.dynamic_free == pytest.approx(16.0)

    def test_allocation_fails_when_exhausted(self, pool):
        assert pool.allocate("agent", 76.0)  # 56 static + 20 dynamic
        assert not pool.allocate("agent", 0.1)
        assert not pool.allocate("judger", 4.1)
        assert pool.allocate("judger", 4.0)

    def test_failed_allocation_changes_nothing(self, pool):
        pool.allocate("agent", 70.0)
        before = pool.used_by("agent")
        assert not pool.allocate("agent", 50.0)
        assert pool.used_by("agent") == before

    def test_release_repays_dynamic_first(self, pool):
        pool.allocate("agent", 60.0)  # 56 static + 4 dynamic
        pool.release("agent", 5.0)
        assert pool.dynamic_free == pytest.approx(20.0)
        assert pool.static_free("agent") == pytest.approx(1.0)

    def test_release_more_than_held_rejected(self, pool):
        pool.allocate("agent", 1.0)
        with pytest.raises(ValueError):
            pool.release("agent", 2.0)

    def test_conservation_under_churn(self, pool):
        import numpy as np

        rng = np.random.default_rng(0)
        held = {"agent": 0.0, "judger": 0.0}
        for _ in range(500):
            workload = "agent" if rng.random() < 0.7 else "judger"
            if rng.random() < 0.6:
                amount = float(rng.uniform(0.1, 5.0))
                if pool.allocate(workload, amount):
                    held[workload] += amount
            elif held[workload] > 0:
                amount = float(rng.uniform(0.0, held[workload]))
                pool.release(workload, amount)
                held[workload] -= amount
        for workload, amount in held.items():
            assert pool.used_by(workload) == pytest.approx(amount, abs=1e-6)
        total_used = sum(held.values())
        total_free = (
            pool.static_free("agent") + pool.static_free("judger") + pool.dynamic_free
        )
        assert total_used + total_free == pytest.approx(80.0, abs=1e-6)

    def test_unknown_workload_rejected(self, pool):
        with pytest.raises(KeyError):
            pool.allocate("phantom", 1.0)

    def test_overcommitted_static_rejected(self):
        with pytest.raises(ValueError):
            KVMemoryPool(10.0, {"agent": 8.0, "judger": 4.0})

    def test_can_allocate_is_side_effect_free(self, pool):
        assert pool.can_allocate("agent", 70.0)
        assert pool.used_by("agent") == 0.0
