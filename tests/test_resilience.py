"""Tests for the fault-tolerance layer: breaker, stores, retries, engine."""

import numpy as np
import pytest

from repro.core import AsteriaConfig, Query
from repro.core.resilience import (
    CircuitBreaker,
    FetchFailed,
    NegativeCache,
    ResilienceManager,
    StaleStore,
)
from repro.factory import (
    build_asteria_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.network import (
    FaultInjector,
    RateLimitExceeded,
    RemoteDataService,
    RemoteUnavailable,
    RetryPolicy,
    TokenBucket,
)
from repro.network.remote import FetchResult


class TestCircuitBreaker:
    def test_stays_closed_below_min_samples(self):
        breaker = CircuitBreaker(min_samples=8)
        for i in range(7):
            breaker.record_failure(float(i))
        assert breaker.state == "closed"
        breaker.record_failure(7.0)
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_trips_at_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=0.5, window=4, min_samples=4)
        breaker.record_success(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "closed"
        breaker.record_failure(0.0)  # 2/4 failed == threshold
        assert breaker.state == "open"

    def test_open_refuses_until_cooldown_then_grants_probes(self):
        breaker = CircuitBreaker(
            window=4, min_samples=4, open_seconds=10.0, half_open_probes=2
        )
        for _ in range(4):
            breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)  # cooldown elapsed: probe 1
        assert breaker.state == "half_open"
        assert breaker.allow(10.1)  # probe 2
        assert not breaker.allow(10.2)  # probe budget spent
        assert breaker.probes == 2

    def test_probe_successes_close_and_clear_window(self):
        breaker = CircuitBreaker(
            window=4, min_samples=4, open_seconds=1.0, half_open_probes=2
        )
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(2.0) and breaker.allow(2.0)
        breaker.record_success(2.1)
        assert breaker.state == "half_open"
        breaker.record_success(2.2)
        assert breaker.state == "closed"
        assert breaker.closes == 1
        assert breaker.failure_rate == 0.0  # window cleared on close

    def test_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(window=4, min_samples=4, open_seconds=1.0)
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(2.0)
        breaker.record_failure(2.1)
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow(2.5)

    def test_straggler_outcomes_ignored_while_open(self):
        breaker = CircuitBreaker(window=4, min_samples=4, open_seconds=10.0)
        for _ in range(4):
            breaker.record_failure(0.0)
        breaker.record_failure(0.5)  # straggler from a pre-trip flight
        breaker.record_success(0.6)
        assert breaker.state == "open"
        assert breaker.failure_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=4, min_samples=5)
        with pytest.raises(ValueError):
            CircuitBreaker(open_seconds=0.0)


class TestNegativeCache:
    def test_put_check_expiry(self):
        negative = NegativeCache(ttl=2.0)
        negative.put("k", now=1.0)
        assert negative.check("k", 2.9)
        assert not negative.check("k", 3.0)  # expired exactly at now+ttl
        assert len(negative) == 0  # expired entries are dropped on check

    def test_discard_on_success(self):
        negative = NegativeCache(ttl=10.0)
        negative.put("k", 0.0)
        negative.discard("k")
        assert not negative.check("k", 0.1)

    def test_capacity_evicts_oldest(self):
        negative = NegativeCache(ttl=100.0, capacity=2)
        for i, key in enumerate("abc"):
            negative.put(key, float(i))
        assert not negative.check("a", 3.0)
        assert negative.check("b", 3.0) and negative.check("c", 3.0)


class TestStaleStore:
    def fetch(self, text: str) -> FetchResult:
        return FetchResult(
            result=text, latency=0.4, service_latency=0.4, cost=0.0
        )

    def test_put_get_returns_last_known_good(self):
        store = StaleStore()
        store.put("k", self.fetch("v1"), now=0.0)
        store.put("k", self.fetch("v2"), now=1.0)
        entry = store.get("k", now=100.0)
        assert entry.fetch.result == "v2"
        assert entry.stored_at == 1.0

    def test_max_age_bounds_staleness(self):
        store = StaleStore(max_age=5.0)
        store.put("k", self.fetch("v"), now=0.0)
        assert store.get("k", 5.0) is not None
        assert store.get("k", 5.1) is None
        assert len(store) == 0

    def test_capacity_evicts_lru(self):
        store = StaleStore(capacity=2)
        store.put("a", self.fetch("a"), 0.0)
        store.put("b", self.fetch("b"), 1.0)
        store.get("a", 2.0)  # refresh a's recency
        store.put("c", self.fetch("c"), 3.0)
        assert store.get("b", 4.0) is None
        assert store.get("a", 4.0) is not None


class TestFetchWithRetries:
    def manager(self) -> ResilienceManager:
        return ResilienceManager()  # default policy: 2 retries, 50 ms base

    def test_transient_faults_retried_with_backoff(self):
        manager = self.manager()
        calls = []

        def fetch(now):
            calls.append(now)
            if len(calls) < 3:
                raise RemoteUnavailable("flaky", latency=0.1)
            return FetchResult(
                result="ok", latency=0.4, service_latency=0.4, cost=0.0
            )

        fetch_result, overhead = manager.fetch_with_retries(fetch, start=10.0)
        assert fetch_result.result == "ok"
        # two failures (0.1 each) plus backoffs 0.05 and 0.1
        assert overhead == pytest.approx(0.35)
        assert calls == pytest.approx([10.0, 10.15, 10.35])

    def test_exhausted_retries_raise_fetch_failed_with_total_waste(self):
        manager = self.manager()

        def fetch(now):
            raise RemoteUnavailable("down", latency=0.1)

        with pytest.raises(FetchFailed) as info:
            manager.fetch_with_retries(fetch, start=0.0)
        assert info.value.latency == pytest.approx(0.45)  # 3 x 0.1 + 0.15
        assert isinstance(info.value.cause, RemoteUnavailable)

    def test_rate_limit_is_not_retried(self):
        manager = self.manager()
        calls = []

        def fetch(now):
            calls.append(now)
            raise RateLimitExceeded("throttled", latency=0.2)

        with pytest.raises(FetchFailed) as info:
            manager.fetch_with_retries(fetch, start=0.0)
        assert len(calls) == 1
        assert info.value.latency == pytest.approx(0.2)
        assert isinstance(info.value.cause, RateLimitExceeded)


def make_engine(fault_injector=None, config=None, resilience=None, seed=0):
    return build_asteria_engine(
        build_remote(latency=0.4, seed=seed, fault_injector=fault_injector),
        config=config,
        seed=seed,
        resilience=resilience,
    )


class _OnePermitLimiter:
    """Grants exactly one permit ever — a deterministic way to force the
    retry budget to exhaust, independent of worker scheduling order (the
    token bucket assumes monotonic time, which interleaved workers break)."""

    def __init__(self) -> None:
        self.granted = 0

    def try_acquire(self, now: float) -> bool:
        if self.granted == 0:
            self.granted += 1
            return True
        return False

    def next_available(self, now: float) -> float:
        return now + 60.0


class TestRateLimitRegression:
    """``RateLimitExceeded`` past the retry budget must degrade, not escape."""

    def limited_remote(self) -> RemoteDataService:
        return RemoteDataService(
            latency=0.4,
            rate_limiter=_OnePermitLimiter(),
            retry_policy=RetryPolicy(max_retries=0, jitter=0.0),
        )

    def test_token_bucket_exhaustion_degrades(self):
        """The real limiter shape, sequentially: second call is throttled
        past the zero-retry budget and must come back as a degraded
        response, not an exception."""
        remote = RemoteDataService(
            latency=0.4,
            rate_limiter=TokenBucket.per_minute(1),
            retry_policy=RetryPolicy(max_retries=0, jitter=0.0),
        )
        engine = build_asteria_engine(remote)
        first = engine.handle(Query("completely distinct alpha topic"), 0.0)
        assert first.degraded is None
        second = engine.handle(Query("another unrelated beta subject"), 0.5)
        assert second.degraded == "failed"
        assert second.result == ""
        assert engine.metrics.failed_requests == 1
        assert engine.metrics.fetch_failures == 1

    def test_worker_pool_degrades_instead_of_raising(self):
        engine = build_concurrent_engine(self.limited_remote(), workers=2)
        queries = [
            Query(f"unrelated subject number {i} entirely", fact_id=f"G{i}")
            for i in range(6)
        ]
        with engine:
            report = engine.run_closed_loop(queries, time_step=0.01)
        assert report.requests == 6
        assert report.failed >= 1
        assert report.served_fraction < 1.0
        assert engine.metrics.fetch_failures >= 1


class TestSyncEngineBreakerTransitions:
    def test_closed_open_halfopen_closed_cycle(self):
        """Deterministic breaker walk on the analytic engine: a blackout
        trips it, rejections follow, recovery probes close it."""
        resilience = ResilienceManager(
            breaker=CircuitBreaker(
                failure_threshold=0.5,
                window=8,
                min_samples=4,
                open_seconds=5.0,
                half_open_probes=2,
            ),
        )
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(0.0, 10.0)]),
            resilience=resilience,
        )
        for i in range(4):
            response = engine.handle(
                Query(f"unrelated subject number {i} entirely"), float(i)
            )
            assert response.degraded == "failed"
        assert resilience.breaker.state == "open"
        assert engine.metrics.fetch_failures == 4
        # 4 flights x 3 attempts each (2 retries) all hit the blackout.
        faults_so_far = engine.remote.fault_injector.total_faults
        assert faults_so_far == 12

        rejected = engine.handle(Query("one more distinct question"), 4.0)
        assert rejected.degraded == "failed"
        assert engine.metrics.breaker_open_rejects == 1
        # Refused up-front: no new flight reached the injector.
        assert engine.remote.fault_injector.total_faults == faults_so_far

        # Past the blackout and the cooldown: probes succeed and close it.
        for i, t in enumerate((20.0, 21.0)):
            probe = engine.handle(Query(f"fresh probe question {i} here"), t)
            assert probe.degraded is None
        assert resilience.breaker.state == "closed"
        assert resilience.breaker.closes == 1

    def test_degraded_outcomes_do_not_touch_hit_miss_stats(self):
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(0.0, 100.0)])
        )
        for i in range(3):
            engine.handle(Query(f"unrelated subject number {i} entirely"), float(i))
        # Like overloaded/deadline_exceeded, degraded outcomes bypass
        # record_lookup entirely: no request/hit/miss is counted.
        assert engine.metrics.requests == 0
        assert engine.metrics.hits == 0
        assert engine.metrics.misses == 0
        assert engine.metrics.failed_requests == 3
        assert engine.metrics.total_latency.count == 0
        assert engine.metrics.degraded_latency.count == 3


class TestStaleServing:
    def test_expired_entry_served_as_explicit_stale_hit(self):
        injector = FaultInjector(blackouts=[(4.0, 100.0)])
        engine = make_engine(
            fault_injector=injector, config=AsteriaConfig(default_ttl=1.0)
        )
        query = Query("who painted the mona lisa", fact_id="F")
        first = engine.handle(query, 0.0)
        assert first.degraded is None
        misses_before = engine.metrics.misses

        stale = engine.handle(query, 5.0)  # TTL expired, backend dark
        assert stale.degraded == "stale_hit"
        assert stale.result == first.result
        assert engine.metrics.stale_hits == 1
        assert engine.metrics.misses == misses_before  # not a counted miss

    def test_no_stale_fallback_yields_explicit_failure(self):
        engine = make_engine(
            fault_injector=FaultInjector(blackouts=[(4.0, 100.0)]),
            config=AsteriaConfig(default_ttl=1.0),
            resilience=ResilienceManager(stale_serve=False),
        )
        query = Query("who painted the mona lisa", fact_id="F")
        engine.handle(query, 0.0)
        response = engine.handle(query, 5.0)
        assert response.degraded == "failed"
        assert response.result == ""
        assert engine.metrics.stale_hits == 0

    def test_negative_cache_and_background_refresh(self):
        """A negative-cached key serves stale and revalidates in background;
        once the refresh lands, requests hit the cache again."""
        injector = FaultInjector(blackouts=[(4.9, 5.5)])
        engine = make_engine(
            fault_injector=injector, config=AsteriaConfig(default_ttl=1.0)
        )
        query = Query("who painted the mona lisa", fact_id="F")
        first = engine.handle(query, 0.0)

        failed_flight = engine.handle(query, 5.0)  # in the blackout
        assert failed_flight.degraded == "stale_hit"
        assert engine.metrics.fetch_failures == 1

        # Within negative TTL: refused up-front, served stale, refresh runs.
        negative = engine.handle(query, 6.0)
        assert negative.degraded == "stale_hit"
        assert engine.metrics.negative_cache_hits == 1
        assert engine.metrics.background_refreshes == 1

        # The background refresh re-admitted the entry: fresh hit again.
        recovered = engine.handle(query, 6.5)
        assert recovered.degraded is None
        assert recovered.served_from_cache
        assert recovered.result == first.result


class TestStatsParity:
    def test_disabled_faults_replay_baseline_exactly(self):
        """A zero-rate injector plus an attached manager must leave every
        metric byte-identical to a run without them."""
        rng = np.random.default_rng(0)
        ranks = np.minimum(rng.zipf(1.3, size=60), 32)
        queries = [
            Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
            for rank in ranks
        ]
        baseline = make_engine()
        shadowed = make_engine(
            fault_injector=FaultInjector(seed=123),
            resilience=ResilienceManager(
                breaker=CircuitBreaker(window=16, min_samples=8), seed=99
            ),
        )
        for i, query in enumerate(queries):
            base = baseline.handle(query, i * 0.5)
            shadow = shadowed.handle(query, i * 0.5)
            assert shadow.result == base.result
            assert shadow.latency == pytest.approx(base.latency)
        assert shadowed.metrics.summary() == baseline.metrics.summary()
        assert shadowed.metrics.stale_hits == 0
        assert shadowed.metrics.breaker_open_rejects == 0
        assert shadowed.metrics.negative_cache_hits == 0
        assert shadowed.metrics.background_refreshes == 0
        assert shadowed.metrics.failed_requests == 0
