"""Tests for cross-process trace propagation (:mod:`repro.obs.distributed`):
context capture, worker-side recording, grafting with clock offsets, the
proc engine end to end, the TCP front door, and the replication link."""

import asyncio
import socket
import threading

import pytest

from repro.core import Query
from repro.factory import build_asteria_engine, build_proc_engine, build_remote
from repro.obs import SamplingTracer, Tracer
from repro.obs.distributed import (
    WorkerTracer,
    graft_spans,
    make_span_sink,
    record_remote_leaf,
    trace_context,
)

WORKER_STAGES = ("embed", "ann_search", "judge")
#: Clock-offset estimation error budget: the hello ping/pong midpoint is
#: accurate to half the handshake RTT, well under 2ms on loopback.
OFFSET_TOL = 2e-3


def _queries(n, population=16):
    return [
        Query(f"stress fact number {i % population} of the universe",
              fact_id=f"F{i % population}")
        for i in range(n)
    ]


class TestTraceContext:
    def test_none_without_tracer_or_live_span(self):
        assert trace_context(None) is None
        tracer = Tracer()
        assert trace_context(tracer) is None  # nothing open

    def test_unsampled_sampling_tracer_yields_none(self):
        tracer = SamplingTracer(sample_every=10_000)
        assert trace_context(tracer) is None

    def test_captures_current_span_ids(self):
        tracer = Tracer()
        with tracer.request("request") as span:
            ctx = trace_context(tracer)
        assert ctx == [span.trace_id, span.span_id]
        assert trace_context(tracer) is None  # closed again


class TestWorkerTracer:
    def test_activate_none_is_untraced(self):
        tracer = WorkerTracer()
        with tracer.activate(None):
            assert tracer.live == 0
            assert not tracer.active()
            tracer.record_leaf("embed", tracer.clock())
        # The parentless leaf cannot be attributed and is dropped.
        assert tracer.drain_wire() == []

    def test_leaves_record_under_remote_parent_with_raw_clocks(self):
        clock = ManualClock(start=500.0)
        tracer = WorkerTracer(clock=clock)
        with tracer.activate([7, 42]):
            assert tracer.live == 1
            assert tracer.active()
            clock.now = 500.2
            tracer.record_leaf("embed", 500.1)
            clock.now = 500.4
            tracer.record_leaf("judge", 500.3, attrs={"passed": True})
        rows = tracer.drain_wire()
        assert [row[0] for row in rows] == ["embed", "judge"]
        for _name, trace_id, parent_id, start, end, _attrs in rows:
            assert (trace_id, parent_id) == (7, 42)
            # Raw worker-clock readings: no epoch subtraction on the wire.
            assert start > 499.0 and end > 499.0
        assert rows[1][5] == {"passed": True}
        assert tracer.drain_wire() == []  # drained

    def test_nested_activations_restore_outer_context(self):
        tracer = WorkerTracer()
        with tracer.activate([1, 10]):
            with tracer.activate([2, 20]):
                assert tracer.live == 2
                tracer.record_leaf("inner", tracer.clock())
            tracer.record_leaf("outer", tracer.clock())
        rows = tracer.drain_wire()
        assert [(row[1], row[2]) for row in rows] == [(2, 20), (1, 10)]
        assert tracer.live == 0


class TestGraftSpans:
    def test_rebases_labels_and_parents(self):
        router = Tracer()
        records = [
            ["embed", 7, 42, 10.0, 10.1, None],
            ["judge", 7, 42, 10.2, 10.5, {"passed": True}],
        ]
        epoch = router._epoch
        grafted = graft_spans(router, records, clock_offset=epoch - 10.0, shard=1)
        assert grafted == 2
        spans = router.spans()
        assert [s.name for s in spans] == ["embed", "judge"]
        for span in spans:
            assert span.trace_id == 7
            assert span.parent_id == 42
            assert span.thread_id == -2  # shard-1 lane
            assert span.attrs["shard"] == 1
        # clock_offset re-based the raw worker readings onto the router
        # timeline: 10.0 raw + (epoch - 10.0) - epoch == 0.0.
        assert spans[0].start == pytest.approx(0.0)
        assert spans[1].end == pytest.approx(0.5)
        assert spans[1].attrs == {"passed": True, "shard": 1}
        # Grafted ids are re-drawn locally and unique.
        assert len({s.span_id for s in spans}) == 2

    def test_none_tracer_or_empty_records_noop(self):
        assert graft_spans(None, [["embed", 1, 2, 0.0, 0.1, None]]) == 0
        assert graft_spans(Tracer(), []) == 0

    def test_ring_overflow_counts_dropped(self):
        router = Tracer(max_spans=2)
        records = [["embed", 1, 2, 0.0, 0.1, None]] * 4
        assert graft_spans(router, records, shard=0) == 4
        assert len(router.spans()) == 2
        assert router.dropped == 2

    def test_make_span_sink(self):
        router = Tracer()
        sink = make_span_sink(router)
        sink(3, [["embed", 1, 2, 5.0, 5.1, None]], clock_offset=router._epoch - 5.0)
        (span,) = router.spans()
        assert span.thread_id == -4
        assert span.attrs == {"shard": 3}
        assert span.start == pytest.approx(0.0)
        assert make_span_sink(None) is None


class TestRecordRemoteLeaf:
    def test_parents_under_remote_context(self):
        tracer = Tracer()
        t0 = tracer.clock()
        span = record_remote_leaf(
            tracer, [9, 90], "apply_diff", t0, attrs={"records": 3}
        )
        assert span.trace_id == 9
        assert span.parent_id == 90
        assert span.attrs == {"records": 3}
        assert span.end >= span.start >= 0.0
        assert tracer.spans() == [span]

    def test_noop_without_tracer_or_context(self):
        assert record_remote_leaf(None, [1, 2], "x", 0.0) is None
        tracer = Tracer()
        assert record_remote_leaf(tracer, None, "x", 0.0) is None
        assert tracer.spans() == []


def _serve_all(engine, queries):
    async def drive():
        async with engine:
            for i, query in enumerate(queries):
                outcome = await engine.serve(query, now=i * 0.01)
                assert outcome.ok, outcome

    asyncio.run(drive())


class TestProcEngineEndToEnd:
    def test_worker_stages_join_router_request_traces(self):
        engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=2,
            io_pause_scale=0.0, supervise=False,
        )
        tracer = Tracer()
        engine.set_tracer(tracer)
        _serve_all(engine, _queries(40))
        spans = tracer.spans()
        requests = [s for s in spans if s.name == "request"]
        worker = [s for s in spans if s.name in WORKER_STAGES]
        assert len(requests) == 40
        # Every request shipped its context; every pipeline stage came back.
        counts = {}
        for span in worker:
            counts[span.name] = counts.get(span.name, 0) + 1
        assert counts["embed"] == 40
        assert counts["ann_search"] == 40
        assert counts["judge"] > 0  # miss-path requests have no candidates
        request_ids = {s.span_id for s in requests}
        assert all(s.parent_id in request_ids for s in worker)
        # Worker spans render on synthetic shard lanes, labelled by shard.
        assert all(s.thread_id < 0 for s in worker)
        assert {s.attrs["shard"] for s in worker} == {0, 1}

    def test_clock_offsets_land_worker_spans_inside_their_requests(self):
        engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=2,
            io_pause_scale=0.0, supervise=False,
        )
        tracer = Tracer()
        engine.set_tracer(tracer)
        _serve_all(engine, _queries(40))
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        worker = [s for s in spans if s.name in WORKER_STAGES]
        assert worker
        for span in worker:
            parent = by_id[span.parent_id]
            # The ping/pong midpoint estimate re-bases worker clocks onto
            # the router's timeline; a wrong offset shows up as stage spans
            # drifting outside the request that contains them.
            assert span.start >= parent.start - OFFSET_TOL
            assert span.end <= parent.end + OFFSET_TOL

    def test_unsampled_requests_ship_no_context_and_no_spans(self):
        engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=2,
            io_pause_scale=0.0, supervise=False,
        )
        # The 1-in-N counter samples the very first request; the other 39
        # ship untraced frames, so no worker spans come back for them.
        tracer = SamplingTracer(sample_every=1_000_000)
        engine.set_tracer(tracer)
        _serve_all(engine, _queries(40))
        spans = tracer.spans()
        (request,) = [s for s in spans if s.name == "request"]
        assert {s.trace_id for s in spans} == {request.trace_id}
        worker = [s for s in spans if s.name in WORKER_STAGES]
        assert worker and all(s.parent_id == request.span_id for s in worker)

    def test_workers_one_replays_sync_engine_stage_counts(self):
        # One shard + concurrency 1 makes the worker-side pipeline replay
        # the in-process engine's decisions exactly: grafted stage counts
        # must match the sync engine's span counts stage for stage (the
        # parity run_breakdown.py gates on).
        queries = _queries(60)
        sync_engine = build_asteria_engine(build_remote(seed=0), seed=0)
        sync_tracer = Tracer()
        sync_engine.set_tracer(sync_tracer)
        for i, query in enumerate(queries):
            sync_engine.handle(query, now=i * 0.01)

        proc_engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=1,
            io_pause_scale=0.0, supervise=False,
        )
        proc_tracer = Tracer()
        proc_engine.set_tracer(proc_tracer)
        _serve_all(proc_engine, queries)

        sync_counts = {
            name: row["count"]
            for name, row in sync_tracer.stage_summary().items()
        }
        proc_counts = {
            name: row["count"]
            for name, row in proc_tracer.stage_summary().items()
        }
        for name in ("request",) + WORKER_STAGES:
            assert proc_counts.get(name) == sync_counts.get(name), name


class TestFrontDoor:
    def test_client_trace_adopts_server_and_worker_spans(self):
        from repro.serving.proc.client import ProcClient
        from repro.serving.proc.server import ProcServer

        engine = build_proc_engine(
            build_remote(seed=0), seed=0, workers=2,
            io_pause_scale=0.0, supervise=False,
        )
        server_tracer = Tracer()
        engine.set_tracer(server_tracer)
        server = ProcServer(engine, host="127.0.0.1", port=0)
        client_tracer = Tracer()

        async def drive():
            await server.start()
            client = await ProcClient.connect(
                "127.0.0.1", server.port, tracer=client_tracer
            )
            try:
                for i, query in enumerate(_queries(12, population=4)):
                    response = await client.serve(query, now=i * 0.01)
                    assert response["status"] == "ok"
            finally:
                await client.aclose()
                await server.shutdown()

        asyncio.run(drive())
        roots = [s for s in client_tracer.spans() if s.name == "client_request"]
        assert len(roots) == 12
        root_traces = {s.trace_id for s in roots}
        # The server adopted the shipped context: the router's request spans
        # and the grafted worker stages all carry the *client's* trace ids.
        server_spans = server_tracer.spans()
        requests = [s for s in server_spans if s.name == "request"]
        worker = [s for s in server_spans if s.name in WORKER_STAGES]
        assert len(requests) == 12
        assert {s.trace_id for s in requests} == root_traces
        assert worker and all(s.trace_id in root_traces for s in worker)
        root_ids = {s.span_id for s in roots}
        assert all(s.parent_id in root_ids for s in requests)


class TestReplicationLink:
    def test_apply_diff_parents_under_peer_repl_sync(self):
        from repro.core.config import AsteriaConfig
        from repro.store.replication import ReplicaNode
        from repro.store.replnet import replicate_session

        def make_node(node_id):
            engine = build_asteria_engine(
                build_remote(seed=11),
                config=AsteriaConfig(capacity_items=64),
                seed=11,
            )
            return engine, ReplicaNode(node_id, engine.cache)

        sock_a, sock_b = socket.socketpair()
        engine_a, node_a = make_node("A")
        engine_b, node_b = make_node("B")
        tracers = {"a": Tracer(), "b": Tracer()}
        reports = {}

        def run(name, node, engine, sock, offset):
            queries = [
                Query(f"replicated fact number {(i + offset) % 8} of the realm",
                      fact_id=f"F{(i + offset) % 8}")
                for i in range(24)
            ]
            workload = (
                (lambda now, query=query: engine.handle(query, now=now))
                for query in queries
            )
            reports[name] = replicate_session(
                node, sock, workload=workload, sync_interval=0.05,
                tracer=tracers[name],
            )

        threads = [
            threading.Thread(target=run, args=("a", node_a, engine_a, sock_a, 0)),
            threading.Thread(target=run, args=("b", node_b, engine_b, sock_b, 4)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert set(reports) == {"a", "b"}

        for mine, theirs in (("a", "b"), ("b", "a")):
            syncs = [s for s in tracers[mine].spans() if s.name == "repl_sync"]
            applies = [
                s for s in tracers[theirs].spans() if s.name == "apply_diff"
            ]
            assert syncs and applies
            # Every apply span hangs under one of the sender's repl_sync
            # spans: the context crossed the socket inside the diff message.
            sync_ids = {(s.trace_id, s.span_id) for s in syncs}
            sender_id = {"a": "A", "b": "B"}[mine]
            for span in applies:
                assert (span.trace_id, span.parent_id) in sync_ids
                assert span.attrs["from"] == sender_id
                assert span.attrs["records"] >= 0


class ManualClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now
