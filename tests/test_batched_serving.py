"""End-to-end batched serving parity (tentpole acceptance).

The shared embed+ANN stage-1 pass must be reachable from all three engines
and decision-identical to the sequential ``handle_batch``:

* asyncio: ``serve_batched`` accumulates a micro-batch window, flushes one
  ``prepare_batch`` pass, and completes each request through the scalar
  serve path;
* threads: ``handle_batched`` runs one ``lookup_batch`` pass per cache
  shard under that shard's lock;
* both replay the sync engine's per-query decisions and counter totals on a
  pinned-seed workload.

Windows hold *distinct* queries (repeats recur across windows, zipf-style):
a duplicate inside one window is the documented divergence point — the
async path single-flights it against the in-window admission while the sync
batch path re-looks it up — so parity is pinned on the regime the batching
optimisation actually targets.
"""

import asyncio
import dataclasses

import numpy as np

from repro.core import AsteriaConfig, Query
from repro.factory import (
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.serving.aio import STATUS_DEADLINE, STATUS_OK

SEED = 0
POPULATION = 16
WINDOW = 8
N_WINDOWS = 25
TIME_STEP = 0.05


def windowed_workload() -> list[list[Query]]:
    """Windows of WINDOW distinct queries; popularity recurs across windows."""
    rng = np.random.default_rng(SEED)
    windows = []
    for _ in range(N_WINDOWS):
        ranks = rng.choice(POPULATION, size=WINDOW, replace=False) + 1
        windows.append(
            [
                Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
                for rank in ranks
            ]
        )
    return windows


def int_counters(engine) -> dict[str, int]:
    return {
        name: value
        for name, value in dataclasses.asdict(engine.metrics).items()
        if isinstance(value, int)
    }


def run_sync_batches(windows):
    engine = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
    decisions = []
    for i, window in enumerate(windows):
        for response in engine.handle_batch(window, now=i * TIME_STEP):
            decisions.append((response.lookup.status, response.result))
    return engine, decisions


def test_async_batched_window_matches_sync_handle_batch():
    windows = windowed_workload()
    sync_engine, sync_decisions = run_sync_batches(windows)

    engine = build_async_engine(
        build_remote(seed=SEED),
        seed=SEED,
        shards=4,
        batch_window=0.05,
        batch_max=WINDOW,
    )

    async def drive():
        outcomes = []
        for i, window in enumerate(windows):
            # batch_max == window size: the last enqueue flushes the whole
            # window in one prepare_batch pass, no timer involved.
            outcomes.extend(
                await asyncio.gather(
                    *(
                        engine.serve_batched(query, now=i * TIME_STEP)
                        for query in window
                    )
                )
            )
        await engine.drain()
        return outcomes

    outcomes = asyncio.run(drive())
    assert all(outcome.status == STATUS_OK for outcome in outcomes)
    decisions = [
        (outcome.response.lookup.status, outcome.response.result)
        for outcome in outcomes
    ]
    assert decisions == sync_decisions
    assert int_counters(engine) == int_counters(sync_engine)


def test_async_partial_window_flushes_on_timer():
    engine = build_async_engine(
        build_remote(seed=SEED),
        seed=SEED,
        batch_window=0.005,
        batch_max=64,
    )

    async def drive():
        # One lone request can never fill batch_max — only the window timer
        # can release it.
        outcome = await engine.serve_batched(
            Query("stress fact number 1 of the universe", fact_id="F1")
        )
        await engine.drain()
        return outcome

    outcome = asyncio.run(drive())
    assert outcome.status == STATUS_OK
    assert outcome.response.lookup.status == "miss"


def test_async_deadline_expires_inside_window_wait():
    engine = build_async_engine(
        build_remote(seed=SEED),
        seed=SEED,
        batch_window=0.5,
        batch_max=64,
    )

    async def drive():
        outcome = await engine.serve_batched(
            Query("stress fact number 1 of the universe", fact_id="F1"),
            deadline=0.01,
        )
        # The late flush must tolerate the abandoned waiter.
        await engine.drain()
        return outcome

    outcome = asyncio.run(drive())
    assert outcome.status == STATUS_DEADLINE


def test_thread_batched_matches_sync_handle_batch():
    windows = windowed_workload()
    sync_engine, sync_decisions = run_sync_batches(windows)

    engine = build_concurrent_engine(
        build_remote(seed=SEED), seed=SEED, shards=4, workers=1
    )
    decisions = []
    with engine:
        for i, window in enumerate(windows):
            for response in engine.handle_batched(window, now=i * TIME_STEP):
                decisions.append((response.lookup.status, response.result))
    assert decisions == sync_decisions
    assert int_counters(engine) == int_counters(sync_engine)


def test_thread_batched_multiworker_smoke():
    windows = windowed_workload()
    engine = build_concurrent_engine(
        build_remote(seed=SEED), seed=SEED, shards=4, workers=4
    )
    total = 0
    with engine:
        for i, window in enumerate(windows):
            responses = engine.handle_batched(window, now=i * TIME_STEP)
            total += len(responses)
            assert all(
                response.lookup.status in ("hit", "miss") for response in responses
            )
    assert total == N_WINDOWS * WINDOW
    assert engine.metrics.requests == total
    assert engine.metrics.hits + engine.metrics.misses == total


def test_async_batched_mixed_with_bypass_tools():
    """Uncacheable tools ride through the window without joining stage 1."""
    engine = build_async_engine(
        build_remote(seed=SEED),
        AsteriaConfig(cacheable_tools=("search",)),
        seed=SEED,
        batch_window=0.005,
        batch_max=4,
    )

    async def drive():
        queries = [
            Query("stress fact number 1 of the universe", fact_id="F1"),
            Query("write to scratchpad", fact_id="F1", tool="file"),
            Query("stress fact number 2 of the universe", fact_id="F2"),
            Query("stress fact number 3 of the universe", fact_id="F3"),
        ]
        outcomes = await asyncio.gather(
            *(engine.serve_batched(query) for query in queries)
        )
        await engine.drain()
        return outcomes

    outcomes = asyncio.run(drive())
    assert [outcome.response.lookup.status for outcome in outcomes] == [
        "miss",
        "bypass",
        "miss",
        "miss",
    ]
