"""Tests for precision curves and threshold recalibration (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import EvalRecord, ThresholdRecalibrator, find_threshold, precision_curve


class TestPrecisionCurve:
    def test_empty_log_gives_empty_curve(self):
        assert precision_curve([]) == []

    def test_perfect_judger_flat_at_one(self):
        records = [EvalRecord(score=s, correct=True) for s in (0.5, 0.7, 0.9)]
        curve = precision_curve(records)
        assert all(precision == 1.0 for _, precision in curve)

    def test_known_mixture(self):
        records = [
            EvalRecord(0.2, False),
            EvalRecord(0.4, False),
            EvalRecord(0.6, True),
            EvalRecord(0.8, True),
        ]
        curve = dict(precision_curve(records))
        assert curve[0.2] == pytest.approx(0.5)   # all 4 accepted, 2 correct
        assert curve[0.6] == pytest.approx(1.0)   # top 2 accepted, both correct

    def test_duplicate_scores_collapsed(self):
        records = [EvalRecord(0.5, True), EvalRecord(0.5, False)]
        curve = precision_curve(records)
        assert len(curve) == 1
        assert curve[0][1] == pytest.approx(0.5)

    def test_thresholds_ascending(self):
        rng = np.random.default_rng(0)
        records = [
            EvalRecord(float(score), bool(rng.random() < score))
            for score in rng.random(200)
        ]
        curve = precision_curve(records)
        thresholds = [threshold for threshold, _ in curve]
        assert thresholds == sorted(thresholds)

    def test_invalid_score_rejected(self):
        with pytest.raises(ValueError):
            EvalRecord(score=1.2, correct=True)


class TestFindThreshold:
    def test_picks_smallest_satisfying_threshold(self):
        curve = [(0.2, 0.5), (0.5, 0.8), (0.8, 0.99), (0.9, 1.0)]
        assert find_threshold(curve, target_precision=0.99) == 0.8

    def test_falls_back_when_unreachable(self):
        curve = [(0.2, 0.5), (0.9, 0.7)]
        assert find_threshold(curve, target_precision=0.99, fallback=0.95) == 0.95

    def test_empty_curve_falls_back(self):
        assert find_threshold([], 0.9, fallback=0.9) == 0.9

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            find_threshold([], target_precision=0.0)


class TestThresholdRecalibrator:
    def _records(self, n, good_judger=True, seed=0):
        """(query_text, score, served_truth, fact_id) tuples."""
        rng = np.random.default_rng(seed)
        records = []
        for index in range(n):
            correct = bool(rng.random() < 0.8)
            if good_judger:
                score = float(rng.beta(20, 1)) if correct else float(rng.beta(1, 20))
            else:
                score = float(rng.random())
            truth = "F" if correct else "G"
            records.append((f"q{index}", score, truth, "F"))
        return records

    def test_ingest_respects_sample_size(self):
        recalibrator = ThresholdRecalibrator(sample_size=5)
        labelled = recalibrator.ingest(self._records(100))
        assert labelled == 5
        assert recalibrator.validation_size == 5

    def test_no_change_below_min_records(self):
        recalibrator = ThresholdRecalibrator(sample_size=5, min_records=50)
        recalibrator.ingest(self._records(20))
        assert recalibrator.recalibrate(current_threshold=0.9) == 0.9

    def test_good_judger_allows_moderate_threshold(self):
        recalibrator = ThresholdRecalibrator(
            target_precision=0.95, sample_size=100, min_records=50,
            rng=np.random.default_rng(1),
        )
        recalibrator.ingest(self._records(200, good_judger=True))
        threshold = recalibrator.recalibrate(current_threshold=0.9)
        assert threshold < 0.9  # Scores are well separated; relax safely.

    def test_bad_judger_forces_high_threshold(self):
        recalibrator = ThresholdRecalibrator(
            target_precision=0.99, sample_size=100, min_records=50,
            rng=np.random.default_rng(1),
        )
        recalibrator.ingest(self._records(200, good_judger=False))
        threshold = recalibrator.recalibrate(current_threshold=0.5)
        assert threshold > 0.5  # Random scores: only the top slice is pure.

    def test_default_ground_truth_compares_fact_ids(self):
        recalibrator = ThresholdRecalibrator(sample_size=2, min_records=1)
        recalibrator.ingest([("q", 0.95, "F", "F"), ("q2", 0.9, "F", "G")])
        records = recalibrator._validation_set
        assert [record.correct for record in records] == [True, False]

    def test_custom_ground_truth_used(self):
        always_wrong = lambda text, served, fact: False
        recalibrator = ThresholdRecalibrator(
            sample_size=1, min_records=1, ground_truth=always_wrong
        )
        recalibrator.ingest([("q", 0.99, "F", "F")])
        assert recalibrator._validation_set[0].correct is False

    def test_rounds_counted(self):
        recalibrator = ThresholdRecalibrator()
        recalibrator.recalibrate(0.9)
        recalibrator.recalibrate(0.9)
        assert recalibrator.rounds == 2

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRecalibrator(sample_size=0)
        with pytest.raises(ValueError):
            ThresholdRecalibrator(min_records=0)
