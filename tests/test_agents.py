"""Tests for agent tasks and the scripted think-act-observe loop."""

import pytest

from repro.agent import AgentLatencyModel, AgentTask, CodeAgent, SearchAgent
from repro.agent.model import AgentStats
from repro.agent.parser import extract_blocks
from repro.core import Query
from repro.factory import build_asteria_engine, build_remote, build_vanilla_engine
from repro.sim import Simulator


def make_task(n_hops=2, fact_prefix="F"):
    queries = tuple(
        Query(f"distinct topic number {i} zebra", fact_id=f"{fact_prefix}{i}")
        for i in range(n_hops)
    )
    return AgentTask(
        task_id="t1", question="test question", queries=queries, answer="42"
    )


class TestAgentTask:
    def test_hops(self):
        assert make_task(3).hops == 3

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError):
            AgentTask(task_id="t", question="q", queries=())


class TestAgentLatencyModel:
    def test_default_calibrated_to_figure_11(self):
        model = AgentLatencyModel()
        samples = [model.sample_step() for _ in range(200)]
        assert 0.55 < sum(samples) / len(samples) < 0.65
        assert min(samples) >= 0.2

    def test_constant_override(self):
        model = AgentLatencyModel(per_step=0.5)
        assert model.sample_step() == 0.5


class TestAnalyticExecution:
    def test_task_result_accounting(self):
        remote = build_remote()
        agent = SearchAgent(
            build_vanilla_engine(remote), AgentLatencyModel(per_step=0.6)
        )
        result = agent.run_task(make_task(2), now=0.0)
        assert result.steps == 2
        assert result.hits == 0
        assert result.inference_latency == pytest.approx(1.8)  # 2 hops + answer
        assert result.latency == pytest.approx(
            result.inference_latency + result.retrieval_latency
        )

    def test_answer_step_disabled(self):
        remote = build_remote()
        agent = SearchAgent(
            build_vanilla_engine(remote),
            AgentLatencyModel(per_step=0.6),
            answer_step=False,
        )
        result = agent.run_task(make_task(2))
        assert result.inference_latency == pytest.approx(1.2)

    def test_hits_counted(self):
        remote = build_remote()
        engine = build_asteria_engine(remote, seed=1)
        agent = SearchAgent(engine)
        task = AgentTask(
            task_id="t",
            question="q",
            queries=(
                Query("height of everest", fact_id="F"),
                Query("everest height please", fact_id="F"),
            ),
        )
        result = agent.run_task(task)
        assert result.hits == 1
        assert result.knowledge_correct

    def test_trajectory_rendering(self):
        remote = build_remote()
        agent = SearchAgent(
            build_vanilla_engine(remote), record_trajectory=True
        )
        result = agent.run_task(make_task(1))
        blocks = extract_blocks(result.trajectory)
        assert [block.tag for block in blocks] == [
            "think", "search", "info", "answer",
        ]

    def test_code_agent_uses_file_tag(self):
        remote = build_remote()
        agent = CodeAgent(build_vanilla_engine(remote), record_trajectory=True)
        result = agent.run_task(make_task(1))
        assert "<file>" in result.trajectory


class TestProcessExecution:
    def test_process_and_analytic_agree_on_structure(self):
        remote = build_remote()
        agent = SearchAgent(
            build_vanilla_engine(remote), AgentLatencyModel(per_step=0.6)
        )
        sim = Simulator()
        process = sim.process(agent.run_task_process(sim, make_task(2)))
        sim.run()
        result = process.value
        assert result.steps == 2
        assert result.latency == pytest.approx(sim.now)
        assert result.inference_latency == pytest.approx(1.8)


class TestAgentStats:
    def test_aggregates(self):
        stats = AgentStats()
        remote = build_remote()
        agent = SearchAgent(build_vanilla_engine(remote))
        for index in range(5):
            stats.add(agent.run_task(make_task(1, fact_prefix=f"T{index}-")))
        assert stats.tasks == 5
        assert stats.mean_latency > 0
        assert stats.accuracy == 1.0
        assert stats.throughput(horizon=10.0) == 0.5

    def test_empty_stats(self):
        stats = AgentStats()
        assert stats.mean_latency == 0.0
        assert stats.accuracy == 1.0
        assert stats.percentile_latency(99) == 0.0

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            AgentStats().throughput(0.0)
