"""Tests for the metrics timeline and cache truthiness."""

import pytest

from repro.core.timeline import MetricsTimeline


class TestMetricsTimeline:
    def test_windows_bucket_by_time(self):
        timeline = MetricsTimeline(window=60.0)
        timeline.observe(now=10.0, hit=True, latency=0.05)
        timeline.observe(now=59.9, hit=False, latency=0.45)
        timeline.observe(now=60.0, hit=True, latency=0.05)
        assert len(timeline) == 2
        first, second = timeline.windows()
        assert first.requests == 2 and second.requests == 1
        assert first.start == 0.0 and second.start == 60.0

    def test_hit_rate_series(self):
        timeline = MetricsTimeline(window=10.0)
        timeline.observe(now=1.0, hit=True, latency=0.1)
        timeline.observe(now=2.0, hit=False, latency=0.1)
        timeline.observe(now=15.0, hit=True, latency=0.1)
        assert timeline.series("hit_rate") == [(0.0, 0.5), (10.0, 1.0)]

    def test_latency_statistics(self):
        timeline = MetricsTimeline(window=10.0)
        for latency in (0.1, 0.2, 0.3, 10.0):
            timeline.observe(now=1.0, hit=True, latency=latency)
        window = timeline.windows()[0]
        assert window.mean_latency == pytest.approx(2.65)
        assert window.p95_latency == 10.0

    def test_api_calls_counted(self):
        timeline = MetricsTimeline(window=10.0)
        timeline.observe(now=1.0, hit=False, latency=0.4, api_call=True)
        timeline.observe(now=2.0, hit=True, latency=0.05)
        assert timeline.series("api_calls") == [(0.0, 1.0)]

    def test_empty_windows_skipped(self):
        timeline = MetricsTimeline(window=10.0)
        timeline.observe(now=1.0, hit=True, latency=0.1)
        timeline.observe(now=95.0, hit=True, latency=0.1)
        starts = [start for start, _ in timeline.series("requests")]
        assert starts == [0.0, 90.0]

    def test_observe_response(self):
        from repro.core import Query
        from repro.factory import build_asteria_engine, build_remote

        engine = build_asteria_engine(build_remote(), seed=1)
        timeline = MetricsTimeline(window=60.0)
        response = engine.handle(Query("some topic", fact_id="F"), 0.0)
        timeline.observe_response(0.0, response)
        window = timeline.windows()[0]
        assert window.requests == 1
        assert window.api_calls == 1  # miss fetched remotely

    def test_sparkline_shape(self):
        timeline = MetricsTimeline(window=10.0)
        for window_index, hits in enumerate((1, 2, 4)):
            for _ in range(hits):
                timeline.observe(now=window_index * 10.0 + 1, hit=True, latency=0.1)
        art = timeline.sparkline("requests")
        assert len(art) == 3
        assert art[-1] == "█"

    def test_empty_sparkline(self):
        assert MetricsTimeline().sparkline() == ""

    def test_unknown_metric_rejected(self):
        timeline = MetricsTimeline()
        timeline.observe(now=0.0, hit=True, latency=0.1)
        with pytest.raises(ValueError):
            timeline.series("qps")

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsTimeline(window=0.0)
        timeline = MetricsTimeline()
        with pytest.raises(ValueError):
            timeline.observe(now=-1.0, hit=True, latency=0.1)
        with pytest.raises(ValueError):
            timeline.observe(now=1.0, hit=True, latency=-0.1)


class TestCacheTruthiness:
    def test_empty_caches_are_truthy(self):
        from repro.core import AsteriaConfig, ExactCache
        from repro.factory import build_semantic_cache

        cache = build_semantic_cache(AsteriaConfig())
        assert len(cache) == 0
        assert bool(cache)  # `shared or fresh()` must not rebuild
        assert bool(ExactCache())
