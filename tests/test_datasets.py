"""Tests for the synthetic QA dataset builders."""

import pytest

from repro.workloads import build_dataset
from repro.workloads.datasets import DATASET_NAMES, PROFILES


class TestBuildDataset:
    def test_all_profiles_build(self):
        for name in PROFILES:
            dataset = build_dataset(name)
            assert len(dataset.universe) == dataset.profile.n_facts
            assert dataset.chains

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("nonexistent")

    def test_deterministic_per_seed(self):
        a = build_dataset("musique", seed=4)
        b = build_dataset("musique", seed=4)
        assert [f.fact_id for f in a.universe] == [f.fact_id for f in b.universe]
        assert [f.core for f in a.universe] == [f.core for f in b.universe]
        assert a.chains == b.chains

    def test_seed_changes_universe(self):
        a = build_dataset("musique", seed=1)
        b = build_dataset("musique", seed=2)
        assert [f.core for f in a.universe] != [f.core for f in b.universe]

    def test_dataset_names_excludes_accuracy_set(self):
        assert "strategyqa" not in DATASET_NAMES
        assert set(DATASET_NAMES) == {"zilliz_gpt", "hotpotqa", "musique", "two_wiki"}

    def test_profile_overrides(self):
        dataset = build_dataset("hotpotqa", premium_latency_scale=4.0, n_facts=30)
        assert len(dataset.universe) == 30
        premium = [f for f in dataset.universe if f.latency_scale == 4.0]
        assert premium

    def test_confusable_fraction_respected(self):
        dataset = build_dataset("musique")
        confusable = [f for f in dataset.universe if f.confusable_group]
        expected = dataset.profile.confusable_fraction * len(dataset.universe)
        assert abs(len(confusable) - expected) <= 2

    def test_confusable_pairs_share_all_but_one_token(self):
        dataset = build_dataset("musique")
        groups = {}
        for fact in dataset.universe:
            if fact.confusable_group:
                groups.setdefault(fact.confusable_group, []).append(fact)
        assert groups
        for members in groups.values():
            assert len(members) == 2
            a_tokens = set(members[0].core.split())
            b_tokens = set(members[1].core.split())
            assert len(a_tokens ^ b_tokens) == 2  # exactly the qualifiers

    def test_premium_facts_have_cost_and_latency(self):
        dataset = build_dataset("hotpotqa")
        premium = [f for f in dataset.universe if f.cost is not None]
        assert premium
        assert all(f.latency_scale > 1.0 for f in premium)

    def test_chain_hops_within_profile_bounds(self):
        dataset = build_dataset("musique")
        for chain in dataset.chains:
            assert (
                dataset.profile.min_hops <= len(chain) <= dataset.profile.max_hops
            )

    def test_chains_reference_real_facts(self):
        dataset = build_dataset("two_wiki")
        for chain in dataset.chains:
            for fact_id in chain:
                assert fact_id in dataset.universe

    def test_query_for_carries_annotations(self):
        dataset = build_dataset("hotpotqa")
        fact = dataset.universe.by_rank(0)
        query = dataset.query_for(fact, variant=3)
        assert query.fact_id == fact.fact_id
        assert query.staticity == fact.staticity
        assert fact.core.split()[0] in query.text or fact.core.split()[-1] in query.text

    def test_capacity_for_uses_nominal_questions(self):
        dataset = build_dataset("musique")
        assert dataset.capacity_for(0.4) == int(0.4 * 250)
        assert dataset.capacity_for(0.001) == 1
        with pytest.raises(ValueError):
            dataset.capacity_for(0.0)

    def test_base_em_per_profile(self):
        assert build_dataset("strategyqa").base_em == 0.79
        assert build_dataset("musique").base_em < build_dataset("zilliz_gpt").base_em

    def test_distinct_cores(self):
        dataset = build_dataset("hotpotqa")
        cores = [f.core for f in dataset.universe]
        assert len(set(cores)) == len(cores)
