"""Acceptance: ``workers=1`` proc engine replays the single-process engine.

Same seed, same pinned zipf trace, sequential serving on both sides: every
response payload, every simulated latency, every counter, and the cache
stats must match the plain :class:`AsteriaEngine` exactly. The worker does
the embed/ANN/judge/insert work in another process, the router does the
fetch — if any of the wire conversions, the frame batching preamble, or the
piggybacked stats accounting diverged from the in-process path, this test
is where it shows.
"""

import asyncio

import numpy as np

from repro.core import Query
from repro.core.config import AsteriaConfig
from repro.factory import build_asteria_engine, build_proc_engine, build_remote

SEED = 3
N_QUERIES = 220
POPULATION = 48
TIME_STEP = 0.01
#: Small enough that the pinned trace forces evictions through the policy.
CONFIG = AsteriaConfig(capacity_items=24)


def _trace():
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(1.2, size=N_QUERIES), POPULATION)
    return [
        Query(f"pinned fact number {rank} of the corpus", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _run_sync(queries):
    engine = build_asteria_engine(build_remote(seed=SEED), config=CONFIG, seed=SEED)
    responses = [
        engine.handle(query, now=i * TIME_STEP) for i, query in enumerate(queries)
    ]
    return engine, responses


def _run_proc(queries):
    engine = build_proc_engine(build_remote(seed=SEED), config=CONFIG, seed=SEED, workers=1)

    async def drive():
        async with engine:
            return [
                await engine.serve(query, now=i * TIME_STEP)
                for i, query in enumerate(queries)
            ]

    outcomes = asyncio.run(drive())
    return engine, outcomes


def test_single_worker_proc_engine_replays_sync_engine_exactly():
    queries = _trace()
    sync_engine, sync_responses = _run_sync(queries)
    proc_engine, proc_outcomes = _run_proc(queries)

    # Per-request equivalence: payload and simulated latency.
    assert len(sync_responses) == len(proc_outcomes) == N_QUERIES
    for sync_response, outcome in zip(sync_responses, proc_outcomes):
        assert outcome.ok
        assert outcome.response.result == sync_response.result
        assert outcome.response.latency == sync_response.latency

    # Counter equivalence: every EngineMetrics field the summary exposes.
    assert proc_engine.metrics.summary() == sync_engine.metrics.summary()

    # Cache-side equivalence via the piggybacked shard stats.
    sync_stats = sync_engine.cache.stats
    proc_stats = proc_engine.cache.stats
    assert proc_stats.inserts == sync_stats.inserts
    assert proc_stats.evictions == sync_stats.evictions
    assert proc_stats.expirations == sync_stats.expirations
    assert proc_stats.rejected_duplicates == sync_stats.rejected_duplicates
    assert proc_engine.cache.usage() == sync_engine.cache.usage()

    # The pinned trace actually exercised the interesting paths.
    assert sync_engine.metrics.hits > 0
    assert sync_engine.metrics.misses > 0
    assert sync_stats.evictions > 0


def test_warm_restarted_proc_engine_replays_sync_engine_exactly(tmp_path):
    """Durability acceptance: a proc engine stopped gracefully mid-trace and
    rebuilt from its snapshot+journal must continue making the decisions the
    never-restarted sync engine makes — same payloads, same latencies, same
    cumulative cache stats.

    The same remote object serves both proc halves so its latency rng stays
    on the sync engine's timeline; everything cache-side must come back from
    disk.
    """
    queries = _trace()
    split = N_QUERIES // 2
    sync_engine, sync_responses = _run_sync(queries)

    remote = build_remote(seed=SEED)

    async def drive(engine, chunk, offset):
        async with engine:
            return [
                await engine.serve(query, now=(offset + i) * TIME_STEP)
                for i, query in enumerate(chunk)
            ]

    first = build_proc_engine(
        remote, config=CONFIG, seed=SEED, workers=1, persist_dir=tmp_path
    )
    outcomes = asyncio.run(drive(first, queries[:split], 0))
    first_hits = first.metrics.hits
    # Graceful shutdown checkpointed the worker's shard store; the restart
    # below restores from that snapshot on the original timeline.
    second = build_proc_engine(
        remote, config=CONFIG, seed=SEED, workers=1, persist_dir=tmp_path
    )
    outcomes += asyncio.run(drive(second, queries[split:], split))

    assert len(outcomes) == N_QUERIES
    for sync_response, outcome in zip(sync_responses, outcomes):
        assert outcome.ok
        assert outcome.response.result == sync_response.result
        assert outcome.response.latency == sync_response.latency

    # Router metrics reset at restart; the halves must sum to the sync run.
    assert first_hits + second.metrics.hits == sync_engine.metrics.hits

    # Cache stats are cumulative across the restart (restored with the
    # snapshot), so the final counters match the uninterrupted run.
    sync_stats = sync_engine.cache.stats
    warm_stats = second.cache.stats
    assert warm_stats.inserts == sync_stats.inserts
    assert warm_stats.evictions == sync_stats.evictions
    assert warm_stats.expirations == sync_stats.expirations
    assert warm_stats.rejected_duplicates == sync_stats.rejected_duplicates
    assert second.cache.usage() == sync_engine.cache.usage()

    # The restart actually restored state rather than starting cold.
    assert first_hits > 0
    assert second.metrics.hits > 0
    assert sync_stats.evictions > 0
