"""Tests for the discrete-event simulator and processes."""

import pytest

from repro.sim import Interrupt, Simulator, Timeout


class TestScheduling:
    def test_run_empty_returns_current_time(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_same_time_callbacks_fire_in_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.5, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(10.0, lambda: log.append("late"))
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0

    def test_run_until_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_peek_shows_next_timestamp(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(4.2, lambda: None)
        assert sim.peek() == 4.2

    def test_step_executes_one_callback(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(2.0, lambda: log.append(2))
        assert sim.step()
        assert log == [1]
        assert sim.now == 1.0


class TestProcesses:
    def test_process_return_value_via_event(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(worker())
        sim.run()
        assert process.value == "result"

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_processes_interleave(self):
        sim = Simulator()
        log = []

        def worker(name, period, count):
            for _ in range(count):
                yield sim.timeout(period)
                log.append((sim.now, name))

        sim.process(worker("a", 1.0, 3))
        sim.process(worker("b", 1.5, 2))
        sim.run()
        # At t=3.0 both fire; "b" scheduled its timeout earlier (t=1.5 vs
        # t=2.0), so insertion order puts it first.
        assert log == [
            (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"),
        ]

    def test_yielding_a_generator_spawns_child_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "from child"

        def parent():
            value = yield child()
            return value

        process = sim.process(parent())
        sim.run()
        assert process.value == "from child"

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_unhandled_process_failure_propagates(self):
        sim = Simulator()

        def crasher():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(crasher())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_waited_on_failure_is_catchable(self):
        sim = Simulator()

        def crasher():
            yield sim.timeout(1.0)
            raise ValueError("caught me")

        def parent():
            try:
                yield sim.process(crasher())
            except ValueError:
                return "handled"

        process = sim.process(parent())
        sim.run()
        assert process.value == "handled"

    def test_is_alive_lifecycle(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)

        process = sim.process(worker())
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        sim = Simulator()
        seen = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                seen.append((sim.now, interrupt.cause))

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt("wake up")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert seen == [(1.0, "wake up")]

    def test_interrupting_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_stale_wakeup_after_interrupt_is_ignored(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(2.0)
                log.append("timeout fired")
            except Interrupt:
                log.append("interrupted")
            yield sim.timeout(5.0)
            log.append("second sleep done")

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        # The abandoned 2.0s timeout must not resume the process mid-sleep.
        assert log == ["interrupted", "second sleep done"]
        assert sim.now == 6.0


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []

            def worker(name, period):
                for _ in range(5):
                    yield sim.timeout(period)
                    log.append((round(sim.now, 9), name))

            sim.process(worker("x", 0.3))
            sim.process(worker("y", 0.7))
            sim.run()
            return log

        assert trace() == trace()
