"""Tests for the JSONL write-ahead journal (`repro.store.journal`)."""

import json

import pytest

from repro.ann import FlatIndex
from repro.core import AsteriaCache, CacheSnapshot, Query, Sine
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger
from repro.store import (
    JournaledBackend,
    JournalWriter,
    read_journal,
    replay_journal,
)


def fetch(result="answer"):
    return FetchResult(
        result=result, latency=0.4, service_latency=0.4, cost=0.005,
        size_tokens=16,
    )


def make_cache(capacity=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    return AsteriaCache(sine, capacity_items=capacity, default_ttl=3600.0)


def journaled_cache(path, capacity=None, fsync_every=8, log_touches=True):
    cache = make_cache(capacity=capacity)
    writer = JournalWriter(path, fsync_every=fsync_every)
    cache.wrap_backend(
        lambda inner: JournaledBackend(inner, writer, log_touches=log_touches)
    )
    return cache, writer


def run_workload(cache, n=12, hits=True):
    """Inserts (forcing evictions under a small capacity) plus a few hits."""
    for index in range(n):
        cache.insert(
            Query(f"distinct topic {index} pelican", fact_id=f"F{index}",
                  staticity=8),
            fetch(result=f"answer-{index}"),
            now=float(index),
        )
        if hits and index >= 2:
            cache.lookup(
                Query(f"distinct topic {index - 1} pelican",
                      fact_id=f"F{index - 1}"),
                float(index) + 0.5,
            )


class TestJournalWriter:
    def test_records_are_sequenced(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        cache, writer = journaled_cache(path)
        run_workload(cache, n=4, hits=False)
        writer.flush()
        records, truncated = read_journal(path)
        assert not truncated
        assert [record["seq"] for record in records] == list(
            range(1, len(records) + 1)
        )
        assert all(record["op"] == "admit" for record in records)

    def test_fsync_batching_counts(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        cache, writer = journaled_cache(path, fsync_every=4, log_touches=False)
        run_workload(cache, n=10, hits=False)
        # 10 admits at fsync_every=4 -> exactly two batch-triggered fsyncs,
        # with 2 records pending in the user-space buffer.
        assert writer.appended == 10
        assert writer.fsyncs == 2
        assert writer.durable_seq == 8
        writer.flush()
        assert writer.fsyncs == 3
        assert writer.durable_seq == 10

    def test_sequence_resumes_after_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        writer = JournalWriter(path, fsync_every=1)
        writer.append({"op": "touch", "id": 1, "f": 2, "a": 3.0})
        writer.append({"op": "touch", "id": 1, "f": 3, "a": 4.0})
        writer.close()
        resumed = JournalWriter(path, fsync_every=1)
        assert resumed.append({"op": "touch", "id": 1, "f": 4, "a": 5.0}) == 3
        resumed.close()
        records, _ = read_journal(path)
        assert [record["seq"] for record in records] == [1, 2, 3]

    def test_truncate_resets_log_and_sequence(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        writer = JournalWriter(path, fsync_every=1)
        writer.append({"op": "touch", "id": 1, "f": 2, "a": 3.0})
        writer.truncate()
        assert writer.seq == 0
        assert read_journal(path) == ([], False)
        assert writer.append({"op": "touch", "id": 1, "f": 2, "a": 3.0}) == 1
        writer.close()

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JournalWriter(tmp_path / "wal.jsonl", fsync_every=0)


class TestReadJournal:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        cache, writer = journaled_cache(path, fsync_every=1)
        run_workload(cache, n=3, hits=False)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "op": "adm')  # the kill -9 tear
        records, truncated = read_journal(path)
        assert truncated
        assert len(records) == 3

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"seq": 1, "op": "touch", "id": 1, "f": 1, "a": 1.0}\n'
            '{"seq": 2, "op": "tou\n'
            '{"seq": 3, "op": "touch", "id": 1, "f": 2, "a": 2.0}\n'
        )
        with pytest.raises(ValueError):
            read_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == ([], False)


class TestReplay:
    def _journal_for(self, tmp_path, n=12, capacity=6):
        path = tmp_path / "wal.jsonl"
        live, writer = journaled_cache(path, capacity=capacity)
        run_workload(live, n=n)
        writer.close()
        records, truncated = read_journal(path)
        assert not truncated
        return live, records

    def test_replay_reproduces_membership_and_state(self, tmp_path):
        live, records = self._journal_for(tmp_path)
        recovered = make_cache(capacity=6)
        report = replay_journal(recovered, records)
        assert report["admits"] > 0 and report["evicts"] > 0
        assert sorted(recovered.elements) == sorted(live.elements)
        for element_id, element in live.elements.items():
            twin = recovered.elements[element_id]
            assert twin.key == element.key
            assert twin.value == element.value
            assert twin.frequency == element.frequency
            assert twin.last_accessed_at == element.last_accessed_at
            assert twin.expires_at == element.expires_at

    def test_replay_twice_is_byte_identical_to_once(self, tmp_path):
        """The idempotence satellite: the same WAL applied twice must leave
        the cache byte-for-byte identical to a single application."""
        _, records = self._journal_for(tmp_path)
        once = make_cache(capacity=6)
        replay_journal(once, records)
        twice = make_cache(capacity=6)
        first = replay_journal(twice, records)
        second = replay_journal(twice, records)
        assert first["applied"] == len(records)
        assert second["applied"] == 0
        assert second["skipped"] == len(records)
        snap_once = CacheSnapshot.of(once, now=100.0).to_json()
        snap_twice = CacheSnapshot.of(twice, now=100.0).to_json()
        assert snap_twice == snap_once

    def test_replay_does_not_enforce_capacity(self, tmp_path):
        """Membership comes from the journal's own evict records, not from
        re-running the policy — a replay into a smaller-capacity config must
        not silently drop entries the log says were present."""
        _, records = self._journal_for(tmp_path, capacity=6)
        admits_only = [record for record in records if record["op"] == "admit"]
        unbounded = make_cache(capacity=2)
        replay_journal(unbounded, admits_only)
        assert len(unbounded) == len(admits_only)

    def test_touch_replay_sets_absolute_state(self, tmp_path):
        cache = make_cache()
        element = cache.insert(Query("topic one", fact_id="F"), fetch(), 0.0)
        records = [
            {"seq": 1, "op": "touch", "id": element.element_id, "f": 7, "a": 42.0}
        ]
        replay_journal(cache, records)
        assert element.frequency == 7
        assert element.last_accessed_at == 42.0

    def test_journal_lines_are_strict_json(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        cache, writer = journaled_cache(path, fsync_every=1)
        run_workload(cache, n=5)
        writer.close()
        for line in path.read_text().splitlines():
            json.loads(
                line,
                parse_constant=lambda token: pytest.fail(
                    f"non-strict JSON token {token!r} in journal"
                ),
            )
