"""Tests for structured request tracing."""

import pytest

from repro.core import Query, TraceLog
from repro.factory import build_asteria_engine, build_remote


def traced_engine():
    engine = build_asteria_engine(build_remote(), seed=1)
    engine.trace = TraceLog()
    return engine


class TestTraceRecording:
    def test_records_miss_then_hit(self):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height please", fact_id="F"), 5.0)
        records = engine.trace.records()
        assert [record["status"] for record in records] == ["miss", "hit"]
        assert records[0]["cost"] > 0 and records[1]["cost"] == 0.0
        assert records[1]["judged"] >= 1
        assert records[1]["now"] == 5.0

    def test_no_trace_attached_is_free(self):
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.handle(Query("q", fact_id="F"), 0.0)
        assert engine.trace is None

    def test_bound_drops_oldest(self):
        log = TraceLog(max_records=2)
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.trace = log
        for index in range(4):
            engine.handle(Query(f"topic {index} unique zz", fact_id=f"T{index}"), 0.0)
        assert len(log) == 2
        assert log.dropped == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceLog(max_records=0)
        with pytest.raises(ValueError):
            TraceLog().slowest(0)


class TestTracePersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height ok", fact_id="F"), 1.0)
        path = tmp_path / "trace.jsonl"
        engine.trace.save_jsonl(path)
        loaded = TraceLog.load_jsonl(path)
        assert loaded.records() == engine.trace.records()

    def test_empty_log_roundtrip(self, tmp_path):
        log = TraceLog()
        path = tmp_path / "empty.jsonl"
        log.save_jsonl(path)
        assert len(TraceLog.load_jsonl(path)) == 0


class TestTraceAnalysis:
    def test_summary(self):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height ok", fact_id="F"), 1.0)
        summary = engine.trace.summary()
        assert summary["requests"] == 2
        assert summary["by_status"] == {"miss": 1, "hit": 1}
        assert summary["hit_rate"] == 0.5
        assert summary["wrong_servings"] == 0
        assert summary["total_cost"] > 0

    def test_empty_summary(self):
        assert TraceLog().summary() == {"requests": 0}

    def test_slowest_orders_by_latency(self):
        engine = traced_engine()
        engine.handle(Query("alpha unique topic", fact_id="A"), 0.0)  # remote
        engine.handle(Query("alpha topic unique ok", fact_id="A"), 1.0)  # hit
        slowest = engine.trace.slowest(1)
        assert slowest[0]["status"] == "miss"
