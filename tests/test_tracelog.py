"""Tests for structured request tracing."""

import pytest

from repro.core import Query, TraceLog
from repro.factory import build_asteria_engine, build_remote


def traced_engine():
    engine = build_asteria_engine(build_remote(), seed=1)
    engine.trace = TraceLog()
    return engine


class TestTraceRecording:
    def test_records_miss_then_hit(self):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height please", fact_id="F"), 5.0)
        records = engine.trace.records()
        assert [record["status"] for record in records] == ["miss", "hit"]
        assert records[0]["cost"] > 0 and records[1]["cost"] == 0.0
        assert records[1]["judged"] >= 1
        assert records[1]["now"] == 5.0

    def test_no_trace_attached_is_free(self):
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.handle(Query("q", fact_id="F"), 0.0)
        assert engine.trace is None

    def test_bound_drops_oldest(self):
        log = TraceLog(max_records=2)
        engine = build_asteria_engine(build_remote(), seed=1)
        engine.trace = log
        for index in range(4):
            engine.handle(Query(f"topic {index} unique zz", fact_id=f"T{index}"), 0.0)
        assert len(log) == 2
        assert log.dropped == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceLog(max_records=0)
        with pytest.raises(ValueError):
            TraceLog().slowest(0)


class TestTracePersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height ok", fact_id="F"), 1.0)
        path = tmp_path / "trace.jsonl"
        engine.trace.save_jsonl(path)
        loaded = TraceLog.load_jsonl(path)
        assert loaded.records() == engine.trace.records()

    def test_empty_log_roundtrip(self, tmp_path):
        log = TraceLog()
        path = tmp_path / "empty.jsonl"
        log.save_jsonl(path)
        assert len(TraceLog.load_jsonl(path)) == 0


class TestOutcomeConservation:
    """Satellite: every request the serving layer resolves or rejects must
    appear in the log under exactly one outcome, and the per-outcome totals
    must agree with the :class:`EngineMetrics` counters."""

    def _assert_conserved(self, log, metrics):
        by_outcome = log.summary()["by_outcome"]
        assert by_outcome.get("hit", 0) == metrics.hits
        assert by_outcome.get("miss", 0) == metrics.misses
        assert by_outcome.get("bypass", 0) == metrics.bypasses
        assert by_outcome.get("stale_hit", 0) == metrics.stale_hits
        assert by_outcome.get("failed", 0) == metrics.failed_requests
        assert by_outcome.get("overloaded", 0) == metrics.overloaded
        assert by_outcome.get("deadline_exceeded", 0) == metrics.deadline_exceeded
        finished = (
            metrics.requests
            + metrics.stale_hits
            + metrics.failed_requests
            + metrics.overloaded
            + metrics.deadline_exceeded
        )
        assert sum(by_outcome.values()) == len(log) == finished

    def test_blackout_run_conserves_degraded_outcomes(self):
        """A mid-run blackout produces stale hits and explicit failures; the
        log must account for every one of them."""
        from repro.core.config import AsteriaConfig
        from repro.core.resilience import CircuitBreaker, ResilienceManager
        from repro.network import FaultInjector

        engine = build_asteria_engine(
            build_remote(
                seed=0,
                fault_injector=FaultInjector(blackouts=[(1.0, 2.0)], seed=0),
            ),
            # A short TTL forces warm keys to re-fetch during the blackout:
            # the fetch fails, the last-known-good copy serves stale.
            config=AsteriaConfig(default_ttl=0.5),
            seed=0,
            resilience=ResilienceManager(
                breaker=CircuitBreaker(
                    failure_threshold=1.0, window=1024, min_samples=1024
                ),
                stale_serve=True,
                seed=0,
            ),
        )
        engine.trace = TraceLog()
        for i in range(300):
            if 100 <= i < 200 and i % 10 == 0:
                # Cold keys first seen mid-blackout: no stale fallback.
                rank = 100 + i
            else:
                # Warm keys recur throughout and expire into re-fetches.
                rank = (i * 7) % 12
            engine.handle(
                Query(f"stress fact number {rank} of it", fact_id=f"F{rank}"),
                now=i * 0.01,
            )
        metrics = engine.metrics
        assert metrics.stale_hits > 0  # warm keys degraded to stale
        assert metrics.failed_requests > 0  # cold keys had no fallback
        self._assert_conserved(engine.trace, metrics)

    def test_async_rejections_conserved(self):
        """Overloaded and deadline-exceeded requests never produce a
        response, but must still land in the log via record_rejected."""
        import asyncio

        from repro.factory import build_async_engine
        from repro.serving.aio import run_closed_loop

        engine = build_async_engine(
            build_remote(seed=0),
            seed=0,
            shards=2,
            max_inflight=1,
            io_pause_scale=0.002,
        )
        engine.engine.trace = TraceLog()
        # Unique queries -> every request is a miss with a real (wall) pause.
        queries = [Query(f"unique topic {i} zz", fact_id=f"U{i}") for i in range(24)]

        async def drive():
            await run_closed_loop(engine, queries, concurrency=8)
            # A second wave under an impossible deadline: misses must pause
            # ~0.6-1 ms of wall time, so a 10 us budget always expires.
            for i, query in enumerate(queries[:4]):
                await engine.serve(
                    Query(f"deadline topic {i} zz", fact_id=f"D{i}"),
                    now=1.0 + i * 0.01,
                    deadline=1e-5,
                )
            await engine.drain()

        asyncio.run(drive())
        metrics = engine.metrics
        assert metrics.overloaded > 0
        assert metrics.deadline_exceeded > 0
        self._assert_conserved(engine.engine.trace, metrics)

    def test_hedged_fetches_carry_schema_flag(self):
        """Responses resolved by a hedged fetch are marked in the log so
        postmortems can attribute tail-latency rescues."""

        class _Lookup:
            status = "miss"
            latency = 0.002
            candidates = 1
            judged = 0
            truth_match = None

        class _Fetch:
            cost = 0.005
            retries = 0
            hedged = True

        class _Response:
            lookup = _Lookup()
            degraded = None
            latency = 0.4
            fetch = _Fetch()

        log = TraceLog()
        log.record(0.0, Query("q", fact_id="F"), _Response())
        (entry,) = log.records()
        assert entry["hedged"] is True
        assert entry["outcome"] == "miss"


class TestTraceAnalysis:
    def test_summary(self):
        engine = traced_engine()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height ok", fact_id="F"), 1.0)
        summary = engine.trace.summary()
        assert summary["requests"] == 2
        assert summary["by_status"] == {"miss": 1, "hit": 1}
        assert summary["hit_rate"] == 0.5
        assert summary["wrong_servings"] == 0
        assert summary["total_cost"] > 0

    def test_empty_summary(self):
        assert TraceLog().summary() == {"requests": 0}

    def test_slowest_orders_by_latency(self):
        engine = traced_engine()
        engine.handle(Query("alpha unique topic", fact_id="A"), 0.0)  # remote
        engine.handle(Query("alpha topic unique ok", fact_id="A"), 1.0)  # hit
        slowest = engine.trace.slowest(1)
        assert slowest[0]["status"] == "miss"
