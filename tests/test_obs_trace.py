"""Tests for :mod:`repro.obs.trace` — span trees, context propagation across
threads and event loops, leaf recording, exports, and the retention bound."""

import asyncio
import json
import threading

import pytest

from repro.core import Query
from repro.factory import (
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.obs import SamplingTracer, Tracer
from repro.obs.trace import STAGES, Span, _SKIP_SPAN
from repro.serving.aio import run_closed_loop


def make_clock(step: float = 1.0):
    """A deterministic monotonic clock advancing ``step`` per call."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestSpanTree:
    def test_request_root_and_nested_child(self):
        tracer = Tracer(clock=make_clock())
        with tracer.request(tool="kb") as root:
            with tracer.span("admit", size=3) as child:
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["admit", "request"]
        assert root.parent_id is None
        assert root.trace_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.attrs == {"size": 3}
        assert child.start >= root.start
        assert child.end <= root.end
        assert root.duration > 0

    def test_request_ignores_inherited_parent(self):
        """A pooled thread's leftover context must never reparent the next
        request: request() always opens a fresh root."""
        tracer = Tracer(clock=make_clock())
        with tracer.request() as outer:
            with tracer.request() as inner:
                pass
        assert inner.parent_id is None
        assert inner.trace_id != outer.trace_id

    def test_context_resets_after_exit(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.request() as root:
            assert tracer.current() is root
        assert tracer.current() is None

    def test_set_merges_attrs(self):
        tracer = Tracer()
        with tracer.span("judge") as span:
            span.set(judged=4)
            span.set(matched=True)
        assert span.attrs == {"judged": 4, "matched": True}

    def test_exception_still_finishes_and_resets(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.request():
                raise RuntimeError("boom")
        assert tracer.current() is None
        assert [s.name for s in tracer.spans()] == ["request"]


class TestRecordLeaf:
    def test_leaf_parents_under_current_span(self):
        tracer = Tracer(clock=make_clock())
        with tracer.request() as root:
            t0 = tracer.clock()
            tracer.record_leaf("embed", t0, {"batch": 2})
        leaf, request = tracer.spans()
        assert leaf.name == "embed"
        assert leaf.trace_id == root.trace_id
        assert leaf.parent_id == root.span_id
        assert leaf.thread_id == root.thread_id
        assert leaf.attrs == {"batch": 2}
        assert leaf.end > leaf.start
        assert request.name == "request"

    def test_leaf_without_parent_is_its_own_root(self):
        tracer = Tracer(clock=make_clock())
        t0 = tracer.clock()
        tracer.record_leaf("evict", t0)
        (leaf,) = tracer.spans()
        assert leaf.parent_id is None
        assert leaf.trace_id == leaf.span_id
        assert leaf.thread_id == threading.get_ident()

    def test_leaf_does_not_become_current(self):
        """Leaves never install themselves: the *parent* stays current, so a
        later stage in the same request still parents correctly."""
        tracer = Tracer()
        with tracer.request() as root:
            tracer.record_leaf("embed", tracer.clock())
            assert tracer.current() is root
            tracer.record_leaf("ann_search", tracer.clock())
        embed, ann, _ = tracer.spans()
        assert embed.parent_id == root.span_id
        assert ann.parent_id == root.span_id

    def test_materialization_is_deterministic(self):
        """spans() builds Span objects lazily from pending leaf tuples;
        repeated calls must agree on every id and timestamp."""
        tracer = Tracer(clock=make_clock())
        with tracer.request():
            for _ in range(3):
                tracer.record_leaf("embed", tracer.clock())
        first = [
            (s.name, s.trace_id, s.span_id, s.parent_id, s.start, s.end)
            for s in tracer.spans()
        ]
        second = [
            (s.name, s.trace_id, s.span_id, s.parent_id, s.start, s.end)
            for s in tracer.spans()
        ]
        assert first == second
        # Leaf ids were drawn at record time, so they are strictly
        # increasing in recording order (the root drew its id earlier, at
        # open, but lands in the deque last when it finishes).
        leaf_ids = [row[2] for row in first if row[0] == "embed"]
        assert leaf_ids == sorted(leaf_ids)

    def test_leaf_timestamps_are_epoch_relative(self):
        clock = make_clock(step=0.5)
        tracer = Tracer(clock=clock)  # epoch = 0.5
        t0 = tracer.clock()  # 1.0
        tracer.record_leaf("embed", t0)  # end = 1.5
        (leaf,) = tracer.spans()
        assert leaf.start == pytest.approx(0.5)
        assert leaf.end == pytest.approx(1.0)
        assert leaf.duration == pytest.approx(0.5)


class TestRetentionBound:
    def test_deque_bounds_and_counts_drops(self):
        tracer = Tracer(max_spans=4)
        for _ in range(10):
            tracer.record_leaf("embed", tracer.clock())
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert len(tracer.spans()) == 4

    def test_context_manager_spans_also_bounded(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.request():
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_max_spans_validated(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)


class TestThreadPropagation:
    def test_threads_are_isolated(self):
        """Each thread's contextvar is independent: concurrent requests on
        different threads never cross-parent."""
        tracer = Tracer()
        barrier = threading.Barrier(2)
        roots = {}

        def serve(key):
            with tracer.request(worker=key) as root:
                barrier.wait(timeout=5)
                tracer.record_leaf("embed", tracer.clock())
                roots[key] = root

        threads = [
            threading.Thread(target=serve, args=(k,)) for k in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        spans = tracer.spans()
        leaves = [s for s in spans if s.name == "embed"]
        assert len(leaves) == 2
        for leaf in leaves:
            root = next(s for s in spans if s.span_id == leaf.parent_id)
            assert root.trace_id == leaf.trace_id
            assert root.thread_id == leaf.thread_id
        assert roots["a"].trace_id != roots["b"].trace_id


class TestAsyncPropagation:
    def test_spawned_task_inherits_request_root(self):
        """Tasks snapshot their context at creation — the single-flight
        leader pattern: work spawned inside request A keeps A's root even
        after the creating scope has moved on."""
        tracer = Tracer()

        async def main():
            async def leader_work():
                await asyncio.sleep(0)
                with tracer.span("remote_fetch"):
                    await asyncio.sleep(0)

            with tracer.request() as root:
                task = asyncio.create_task(leader_work())
            # The request scope is closed; the task still carries its root.
            await task
            return root

        root = asyncio.run(main())
        fetch = next(s for s in tracer.spans() if s.name == "remote_fetch")
        assert fetch.trace_id == root.trace_id
        assert fetch.parent_id == root.span_id

    def test_concurrent_tasks_on_one_loop_stay_isolated(self):
        tracer = Tracer()

        async def serve(key):
            with tracer.request(client=key) as root:
                await asyncio.sleep(0)
                tracer.record_leaf("embed", tracer.clock())
                await asyncio.sleep(0)
            return root

        async def main():
            return await asyncio.gather(*(serve(k) for k in range(4)))

        roots = asyncio.run(main())
        assert len({r.trace_id for r in roots}) == 4
        by_id = {r.span_id: r for r in roots}
        leaves = [s for s in tracer.spans() if s.name == "embed"]
        assert len(leaves) == 4
        for leaf in leaves:
            assert by_id[leaf.parent_id].trace_id == leaf.trace_id


class TestExport:
    def _traced(self):
        tracer = Tracer(clock=make_clock())
        with tracer.request(tool="kb"):
            tracer.record_leaf("embed", tracer.clock())
            with tracer.span("admit"):
                pass
        return tracer

    def test_jsonl_rows_parse_and_cover_all_spans(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert count == len(rows) == 3
        for row in rows:
            assert {"name", "trace_id", "span_id", "start", "end"} <= set(row)
            assert row["end"] >= row["start"]

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        count = tracer.export_chrome(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert count == len(complete) == 3
        assert len(meta) == 1  # one thread lane
        names = {e["name"] for e in complete}
        assert names == {"request", "embed", "admit"}
        for event in complete:
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]

    def test_empty_exports(self, tmp_path):
        tracer = Tracer()
        assert tracer.export_jsonl(tmp_path / "t.jsonl") == 0
        assert tracer.export_chrome(tmp_path / "t.json") == 0
        assert json.loads((tmp_path / "t.json").read_text())["traceEvents"] == []

    def test_stage_summary_aggregates_by_name(self):
        tracer = self._traced()
        summary = tracer.stage_summary()
        assert set(summary) == {"request", "embed", "admit"}
        assert summary["embed"]["count"] == 1
        assert summary["request"]["total"] >= summary["admit"]["total"]


class TestSamplingTracer:
    def test_sample_schedule_is_deterministic_modulo(self):
        tracer = SamplingTracer(sample_every=4)
        decisions = [tracer.sample() for _ in range(12)]
        assert decisions == [True, False, False, False] * 3
        assert tracer.sampled == 3
        assert tracer.skipped == 9

    def test_sample_every_one_keeps_everything(self):
        tracer = SamplingTracer(sample_every=1)
        assert all(tracer.sample() for _ in range(5))
        assert tracer.skipped == 0

    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            SamplingTracer(sample_every=0)

    def test_base_tracer_always_samples_and_is_live(self):
        tracer = Tracer()
        assert tracer.live is True
        assert all(tracer.sample() for _ in range(3))

    def test_request_opens_real_root_and_maintains_live(self):
        """request() is only reached after sample() said yes, so it always
        records — and the ``live`` pre-filter counts open sampled roots."""
        tracer = SamplingTracer(sample_every=100)
        assert tracer.live == 0
        with tracer.request(tool="kb") as root:
            assert tracer.live == 1
            assert tracer.active()
            with tracer.span("admit"):
                pass
            tracer.record_leaf("embed", tracer.clock())
        assert tracer.live == 0
        assert not tracer.active()
        spans = tracer.spans()
        assert {s.name for s in spans} == {"request", "admit", "embed"}
        for span in spans:
            assert span.trace_id == root.trace_id

    def test_stages_outside_sampled_context_record_nothing(self):
        tracer = SamplingTracer(sample_every=100)
        span = tracer.span("admit")
        assert span is _SKIP_SPAN
        with span:
            span.set(size=3)
        tracer.record_leaf("embed", tracer.clock())
        assert len(tracer) == 0
        assert not tracer.active()

    def test_sync_engine_thins_spans_but_keeps_metrics_exact(self):
        queries = _queries(40)
        baseline = build_asteria_engine(build_remote(seed=0), seed=0)
        for i, query in enumerate(queries):
            baseline.handle(query, now=i * 0.01)

        engine = build_asteria_engine(build_remote(seed=0), seed=0)
        tracer = SamplingTracer(sample_every=10)
        engine.set_tracer(tracer)
        for i, query in enumerate(queries):
            engine.handle(query, now=i * 0.01)

        spans = tracer.spans()
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == len(queries) // 10
        _check_forest(spans, expected_roots=len(roots))
        assert tracer.sampled == len(roots)
        assert tracer.skipped == len(queries) - len(roots)
        # Sampling thins the span record only; the engine's counters see
        # every request.
        assert engine.metrics.requests == baseline.metrics.requests == len(queries)
        assert engine.metrics.hits == baseline.metrics.hits
        assert engine.metrics.misses == baseline.metrics.misses

    def test_thread_pool_schedule_holds_across_workers(self):
        engine = build_concurrent_engine(
            build_remote(seed=0), seed=0, shards=2, workers=4
        )
        tracer = SamplingTracer(sample_every=8)
        engine.set_tracer(tracer)
        queries = _queries(32)
        with engine:
            engine.handle_concurrent(queries, now=0.0)
        spans = tracer.spans()
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == len(queries) // 8
        _check_forest(spans, expected_roots=len(roots))
        assert tracer.live == 0

    def test_async_engine_samples_one_in_n(self):
        engine = build_async_engine(build_remote(seed=0), seed=0, shards=2)
        tracer = SamplingTracer(sample_every=5)
        engine.set_tracer(tracer)
        queries = _queries(20)
        asyncio.run(run_closed_loop(engine, queries, concurrency=4))
        roots = [s for s in tracer.spans() if s.name == "request"]
        assert len(roots) == len(queries) // 5
        assert tracer.live == 0


def _queries(n: int, population: int = 8) -> list[Query]:
    return [
        Query(f"stress fact number {i % population}", fact_id=f"F{i % population}")
        for i in range(n)
    ]


def _check_forest(spans, expected_roots: int) -> None:
    """Every span must belong to a well-formed request tree."""
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == expected_roots
    for span in spans:
        assert span.name in STAGES
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.trace_id == span.trace_id


class TestEngineIntegration:
    def test_sync_engine_emits_expected_stage_tree(self):
        engine = build_asteria_engine(build_remote(seed=0), seed=0)
        tracer = Tracer()
        engine.set_tracer(tracer)
        queries = _queries(12)
        for i, query in enumerate(queries):
            engine.handle(query, now=i * 0.01)
        spans = tracer.spans()
        _check_forest(spans, expected_roots=len(queries))
        names = {s.name for s in spans}
        # Misses fetch + admit; repeats hit after embed/ann/judge.
        assert {"request", "embed", "ann_search", "judge", "remote_fetch",
                "admit"} <= names
        for root in (s for s in spans if s.name == "request"):
            assert root.attrs and "outcome" in root.attrs

    def test_untraced_engine_records_nothing(self):
        engine = build_asteria_engine(build_remote(seed=0), seed=0)
        assert engine.tracer is None
        engine.handle(_queries(1)[0], now=0.0)

    def test_handle_batch_traces_under_one_root_per_query(self):
        engine = build_asteria_engine(build_remote(seed=0), seed=0)
        tracer = Tracer()
        engine.set_tracer(tracer)
        engine.handle_batch(_queries(6), now=0.0)
        spans = tracer.spans()
        roots = [s for s in spans if s.parent_id is None]
        assert roots  # batch roots present
        _check_forest(spans, expected_roots=len(roots))

    def test_thread_pool_spans_form_valid_forest(self):
        engine = build_concurrent_engine(
            build_remote(seed=0), seed=0, shards=2, workers=4
        )
        tracer = Tracer()
        engine.set_tracer(tracer)
        queries = _queries(32)
        with engine:
            engine.handle_concurrent(queries, now=0.0)
        spans = tracer.spans()
        roots = [s for s in spans if s.parent_id is None]
        # One root per request (stale refreshes would add more; clean remote
        # here, so exactly the request roots).
        assert len(roots) == len(queries)
        _check_forest(spans, expected_roots=len(roots))
        # Children stay on their root's thread lane.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.thread_id == by_id[span.parent_id].thread_id

    def test_async_engine_spans_survive_awaits_and_coalescing(self):
        engine = build_async_engine(build_remote(seed=0), seed=0, shards=2)
        tracer = Tracer()
        engine.set_tracer(tracer)
        # Identical queries in flight together force single-flight
        # leader/follower handoff.
        queries = [Query("stress fact number 0", fact_id="F0") for _ in range(8)]
        asyncio.run(run_closed_loop(engine, queries, concurrency=8))
        spans = tracer.spans()
        _check_forest(spans, [s.parent_id for s in spans].count(None))
        assert len([s for s in spans if s.name == "request"]) == len(queries)
        # The coalesced fetch ran once, inside the leader's request tree.
        fetches = [s for s in spans if s.name == "remote_fetch"]
        assert len(fetches) == 1
        assert fetches[0].parent_id is not None
