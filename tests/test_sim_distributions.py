"""Tests for latency distributions and the config-spec builder."""

import numpy as np
import pytest

from repro.sim import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    TruncatedNormal,
    Uniform,
    distribution_from_spec,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConstant:
    def test_always_returns_value(self, rng):
        dist = Constant(0.3)
        assert all(dist.sample(rng) == 0.3 for _ in range(10))
        assert dist.mean() == 0.3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Constant(-0.1)


class TestUniform:
    def test_samples_within_bounds(self, rng):
        dist = Uniform(0.3, 0.5)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(0.3 <= s <= 0.5 for s in samples)

    def test_mean(self):
        assert Uniform(0.3, 0.5).mean() == pytest.approx(0.4)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Uniform(0.5, 0.3)


class TestExponential:
    def test_empirical_mean_close(self, rng):
        dist = Exponential(2.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestTruncatedNormal:
    def test_floor_enforced(self, rng):
        dist = TruncatedNormal(mu=0.1, sigma=1.0, floor=0.05)
        samples = [dist.sample(rng) for _ in range(500)]
        assert min(samples) >= 0.05

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            TruncatedNormal(mu=1.0, sigma=-0.1)


class TestLogNormal:
    def test_from_mean_cv_hits_target_mean(self, rng):
        dist = LogNormal.from_mean_cv(mean=0.4, cv=0.3)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.4, rel=0.05)
        assert dist.mean() == pytest.approx(0.4, rel=1e-6)

    def test_all_samples_positive(self, rng):
        dist = LogNormal.from_mean_cv(mean=1.0, cv=1.0)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            LogNormal.from_mean_cv(mean=0.0, cv=0.5)


class TestEmpirical:
    def test_resamples_observed_values(self, rng):
        dist = Empirical([0.1, 0.2, 0.3])
        assert all(dist.sample(rng) in (0.1, 0.2, 0.3) for _ in range(50))

    def test_mean(self):
        assert Empirical([1.0, 2.0, 3.0]).mean() == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Empirical([0.1, -0.2])


class TestSpecBuilder:
    def test_passthrough_distribution(self):
        dist = Constant(1.0)
        assert distribution_from_spec(dist) is dist

    def test_bare_number_becomes_constant(self):
        dist = distribution_from_spec(0.3)
        assert isinstance(dist, Constant)
        assert dist.value == 0.3

    def test_uniform_spec(self):
        dist = distribution_from_spec({"kind": "uniform", "low": 0.3, "high": 0.5})
        assert isinstance(dist, Uniform)

    def test_lognormal_mean_cv_spec(self):
        dist = distribution_from_spec({"kind": "lognormal", "mean": 0.4, "cv": 0.2})
        assert isinstance(dist, LogNormal)
        assert dist.mean() == pytest.approx(0.4, rel=1e-6)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            distribution_from_spec({"kind": "zeta"})

    def test_non_spec_type_rejected(self):
        with pytest.raises(TypeError):
            distribution_from_spec("0.3")
