"""Tests for the exact flat index."""

import numpy as np
import pytest

from repro.ann import FlatIndex


def unit(rng, dim=16):
    vector = rng.standard_normal(dim).astype(np.float32)
    return vector / np.linalg.norm(vector)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFlatIndexBasics:
    def test_empty_search_returns_nothing(self):
        assert FlatIndex(8).search(np.ones(8), k=3) == []

    def test_add_and_find_self(self, rng):
        index = FlatIndex(16)
        vector = unit(rng)
        index.add(1, vector)
        hits = index.search(vector, k=1)
        assert hits[0].key == 1
        assert hits[0].score == pytest.approx(1.0, abs=1e-5)

    def test_duplicate_key_rejected(self, rng):
        index = FlatIndex(16)
        index.add(1, unit(rng))
        with pytest.raises(KeyError):
            index.add(1, unit(rng))

    def test_wrong_dim_rejected(self, rng):
        index = FlatIndex(16)
        with pytest.raises(ValueError):
            index.add(1, np.ones(8))

    def test_contains_and_len(self, rng):
        index = FlatIndex(16)
        index.add(5, unit(rng))
        assert 5 in index and 6 not in index
        assert len(index) == 1

    def test_remove(self, rng):
        index = FlatIndex(16)
        index.add(1, unit(rng))
        index.remove(1)
        assert len(index) == 0
        assert index.search(unit(rng), k=1) == []

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            FlatIndex(16).remove(99)

    def test_k_must_be_positive(self, rng):
        index = FlatIndex(16)
        index.add(1, unit(rng))
        with pytest.raises(ValueError):
            index.search(unit(rng), k=0)

    def test_vector_roundtrip(self, rng):
        index = FlatIndex(16)
        vector = unit(rng)
        index.add(1, vector)
        assert np.allclose(index.vector(1), vector, atol=1e-6)

    def test_vectors_normalised_on_insert(self):
        index = FlatIndex(4)
        index.add(1, np.array([2.0, 0.0, 0.0, 0.0]))
        assert np.allclose(index.vector(1), [1.0, 0.0, 0.0, 0.0])


class TestFlatIndexSearch:
    def test_results_sorted_by_score(self, rng):
        index = FlatIndex(16)
        for key in range(20):
            index.add(key, unit(rng))
        hits = index.search(unit(rng), k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_matches_brute_force(self, rng):
        dim = 16
        vectors = {key: unit(rng, dim) for key in range(100)}
        index = FlatIndex(dim)
        for key, vector in vectors.items():
            index.add(key, vector)
        query = unit(rng, dim)
        expected = sorted(
            vectors, key=lambda key: -float(np.dot(vectors[key], query))
        )[:5]
        got = [hit.key for hit in index.search(query, k=5)]
        assert got == expected

    def test_k_larger_than_population(self, rng):
        index = FlatIndex(16)
        for key in range(3):
            index.add(key, unit(rng))
        assert len(index.search(unit(rng), k=10)) == 3

    def test_slot_reuse_after_remove(self, rng):
        index = FlatIndex(16, initial_capacity=2)
        index.add(1, unit(rng))
        index.add(2, unit(rng))
        index.remove(1)
        vector = unit(rng)
        index.add(3, vector)
        hits = index.search(vector, k=1)
        assert hits[0].key == 3

    def test_growth_beyond_initial_capacity(self, rng):
        index = FlatIndex(16, initial_capacity=2)
        for key in range(50):
            index.add(key, unit(rng))
        assert len(index) == 50
        assert len(index.search(unit(rng), k=50)) == 50

    def test_removed_keys_never_returned(self, rng):
        index = FlatIndex(16)
        vectors = {key: unit(rng) for key in range(30)}
        for key, vector in vectors.items():
            index.add(key, vector)
        for key in range(0, 30, 2):
            index.remove(key)
        hits = index.search(unit(rng), k=30)
        assert all(hit.key % 2 == 1 for hit in hits)

    def test_churn_consistency(self, rng):
        """Interleaved add/remove keeps exact top-1 behaviour."""
        index = FlatIndex(8)
        live = {}
        for step in range(300):
            if live and step % 3 == 0:
                victim = sorted(live)[step % len(live)]
                index.remove(victim)
                del live[victim]
            else:
                vector = unit(rng, 8)
                index.add(step, vector)
                live[step] = vector
        query = unit(rng, 8)
        expected = max(live, key=lambda key: float(np.dot(live[key], query)))
        assert index.search(query, k=1)[0].key == expected

    def test_tie_break_prefers_smaller_key(self):
        """Equal scores rank by key ascending, scalar and batch alike."""
        index = FlatIndex(4)
        shared = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)
        for key in (9, 3, 7):
            index.add(key, shared)
        assert [hit.key for hit in index.search(shared, k=3)] == [3, 7, 9]
        assert [
            hit.key for hit in index.search_batch(shared[None, :], 3)[0]
        ] == [3, 7, 9]


class TestFlatIndexRemoveRecycling:
    """Slot recycling and high-water-mark behaviour under churn."""

    def _assert_free_list_integrity(self, index):
        """Free slots + live slots partition the matrix capacity exactly."""
        arena = index._arena
        capacity = arena._matrix.shape[0]
        # Unallocated capacity = released slots + the untouched fresh region.
        free = list(arena._free) + list(range(arena._next_fresh, capacity))
        live = set(index._slot_to_key)
        assert len(free) == len(set(free)), "duplicate slots in the free list"
        assert not (set(free) & live), "a slot is both free and live"
        assert len(free) + len(live) == capacity
        assert all(slot < arena._high_water for slot in live)
        # Freed slots must be zeroed so they can never score above 0.
        for slot in free:
            assert not arena._matrix[slot].any()

    def test_high_water_sinks_past_trailing_removes(self, rng):
        index = FlatIndex(16)
        vectors = {key: unit(rng) for key in range(10)}
        for key, vector in vectors.items():
            index.add(key, vector)
        assert index._arena._high_water == 10
        for key in (9, 8, 7):  # a trailing run of slots
            index.remove(key)
        assert index._arena._high_water == 7
        self._assert_free_list_integrity(index)
        # Search still exact over the survivors.
        query = unit(rng)
        expected = sorted(
            (key for key in vectors if key < 7),
            key=lambda key: (-float(np.dot(vectors[key], query)), key),
        )[:3]
        assert [hit.key for hit in index.search(query, k=3)] == expected

    def test_readd_after_trailing_remove_matches_brute_force(self, rng):
        """Remove a trailing run, re-add fresh keys, and scores stay exact."""
        index = FlatIndex(16, initial_capacity=4)
        vectors = {key: unit(rng) for key in range(12)}  # forces _grow twice
        for key, vector in vectors.items():
            index.add(key, vector)
        for key in (11, 10, 9, 8):
            index.remove(key)
            del vectors[key]
        assert index._arena._high_water == 8
        for key in range(100, 106):  # recycle the freed trailing slots
            vectors[key] = unit(rng)
            index.add(key, vectors[key])
        self._assert_free_list_integrity(index)
        queries = np.stack([unit(rng) for _ in range(5)])
        got = index.search_batch(queries, 4)
        for row, query in enumerate(queries):
            expected = sorted(
                vectors,
                key=lambda key: (-float(np.dot(vectors[key], query)), key),
            )[:4]
            assert [hit.key for hit in got[row]] == expected
            for hit in got[row]:
                assert hit.score == pytest.approx(
                    float(np.dot(vectors[hit.key], query)), abs=1e-5
                )

    def test_interleaved_churn_with_search_batch(self, rng):
        """add/remove/search_batch interleaved: free list and results stay
        consistent through grows, recycles, and high-water sinking."""
        index = FlatIndex(8, initial_capacity=2)
        live = {}
        next_key = 0
        for step in range(40):
            for _ in range(3):
                vector = unit(rng, 8)
                index.add(next_key, vector)
                live[next_key] = vector
                next_key += 1
            if step % 2 == 1:
                victims = sorted(live)[-2:]  # bias toward trailing slots
                for victim in victims:
                    index.remove(victim)
                    del live[victim]
            self._assert_free_list_integrity(index)
            queries = np.stack([unit(rng, 8), unit(rng, 8)])
            for row, hits in enumerate(index.search_batch(queries, 3)):
                expected = sorted(
                    live,
                    key=lambda key: (
                        -float(np.dot(live[key], queries[row])),
                        key,
                    ),
                )[: min(3, len(live))]
                assert [hit.key for hit in hits] == expected
