"""Tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity_immediately(self, sim):
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        sim.run()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.in_use == 2
        assert resource.queue_length == 1

    def test_release_admits_next_waiter(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def holder(name, hold):
            request = resource.request()
            yield request
            order.append((sim.now, name))
            yield sim.timeout(hold)
            resource.release(request)

        sim.process(holder("a", 1.0))
        sim.process(holder("b", 1.0))
        sim.run()
        assert order == [(0.0, "a"), (1.0, "b")]

    def test_priority_order(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def holder(name, priority):
            yield sim.timeout(0.1)  # Let the blocker grab the slot first.
            request = resource.request(priority=priority)
            yield request
            order.append(name)
            resource.release(request)

        def blocker():
            request = resource.request()
            yield request
            yield sim.timeout(1.0)
            resource.release(request)

        sim.process(blocker())
        sim.process(holder("low", priority=5))
        sim.process(holder("high", priority=1))
        sim.run()
        assert order == ["high", "low"]

    def test_release_ungranted_request_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()
        waiting = resource.request()
        with pytest.raises(RuntimeError):
            resource.release(waiting)

    def test_cancel_removes_from_queue(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        waiting = resource.request()
        waiting.cancel()
        resource.release(held)
        sim.run()
        assert not waiting.triggered
        assert resource.in_use == 0

    def test_cancel_granted_request_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        granted = resource.request()
        with pytest.raises(RuntimeError):
            granted.cancel()


class TestStore:
    def test_put_then_get_returns_fifo(self, sim):
        store = Store(sim)
        store.put("first")
        store.put("second")
        got = []

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert got == ["first", "second"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(2.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, "late")]

    def test_waiting_getters_served_in_order(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        def producer():
            yield sim.timeout(1.0)
            store.put(1)
            store.put(2)

        sim.process(consumer("a"))
        sim.process(consumer("b"))
        sim.process(producer())
        sim.run()
        assert got == [("a", 1), ("b", 2)]

    def test_len_counts_buffered_items(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put("x")
        assert len(store) == 1
