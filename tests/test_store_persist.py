"""Tests for `repro.store.persist` (snapshot+journal durability) plus the
file-backend restore path and the simulated remote store's accounting."""

import pytest

from repro.core import Query
from repro.core.config import AsteriaConfig
from repro.factory import (
    build_asteria_engine,
    build_concurrent_engine,
    build_remote,
    build_semantic_cache,
)
from repro.store import SimulatedRemoteStore
from repro.store.filestore import FileStoreBackend, restore_file_backend
from repro.store.persist import shard_directory

SEED = 5
CONFIG = AsteriaConfig(capacity_items=16)


def trace(n=120, population=24, offset=0):
    return [
        Query(f"persisted fact number {(i + offset) % population} of the land",
              fact_id=f"F{(i + offset) % population}")
        for i in range(n)
    ]


def run_engine(engine, queries, start=0):
    return [
        engine.handle(query, now=(start + i) * 0.01)
        for i, query in enumerate(queries)
    ]


class TestPersistentStore:
    def test_cold_start_report(self, tmp_path):
        cache = build_semantic_cache(CONFIG, seed=SEED, persist_dir=tmp_path)
        assert cache.restore_report.cold
        assert cache.restore_report.restored_items == 0
        cache.persistent_store.close()

    def test_warm_restart_restores_membership_and_stats(self, tmp_path):
        engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            persist_dir=tmp_path,
        )
        run_engine(engine, trace())
        first = engine.cache
        stats_before = first.stats
        members_before = {
            element.truth_key: (element.frequency, element.last_accessed_at)
            for element in first.elements.values()
        }
        first.persistent_store.flush()
        # No close/checkpoint: recovery must come from snapshot + journal.
        warm = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            persist_dir=tmp_path,
        )
        report = warm.cache.restore_report
        assert not report.cold
        assert report.journal_applied > 0  # the journal actually replayed
        assert report.restored_items == len(first)
        members_after = {
            element.truth_key: (element.frequency, element.last_accessed_at)
            for element in warm.cache.elements.values()
        }
        assert members_after == members_before
        assert warm.cache.stats.inserts == stats_before.inserts
        assert warm.cache.stats.evictions == stats_before.evictions
        assert warm.cache._next_id == first._next_id

    def test_warm_restart_improves_first_window_hit_rate(self, tmp_path):
        cold_engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            persist_dir=tmp_path,
        )
        run_engine(cold_engine, trace())
        cold_engine.cache.persistent_store.close(checkpoint=True)
        warm_engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            persist_dir=tmp_path,
        )
        window = trace(n=40)
        run_engine(warm_engine, window, start=200)
        fresh_engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
        )
        run_engine(fresh_engine, window)
        assert warm_engine.metrics.hits > fresh_engine.metrics.hits

    def test_checkpoint_compacts_journal(self, tmp_path):
        cache = build_semantic_cache(CONFIG, seed=SEED, persist_dir=tmp_path)
        store = cache.persistent_store
        from repro.core.types import FetchResult

        for index in range(6):
            cache.insert(
                Query(f"distinct topic {index} heron", fact_id=f"F{index}"),
                FetchResult(result="a", latency=0.4, service_latency=0.4,
                            cost=0.005, size_tokens=16),
                now=float(index),
            )
        store.flush()
        assert store.writer.seq == 6
        store.checkpoint()
        assert store.writer.seq == 0
        assert store.journal_path.read_text() == ""
        # The snapshot carries everything the journal used to.
        fresh = build_semantic_cache(CONFIG, seed=SEED, persist_dir=tmp_path)
        assert fresh.restore_report.restored_items == 6
        assert fresh.restore_report.journal_records == 0

    def test_double_attach_rejected(self, tmp_path):
        cache = build_semantic_cache(CONFIG, seed=SEED, persist_dir=tmp_path)
        with pytest.raises(RuntimeError):
            cache.persistent_store.attach(cache)

    def test_store_stats_shape(self, tmp_path):
        cache = build_semantic_cache(CONFIG, seed=SEED, persist_dir=tmp_path)
        stats = cache.persistent_store.stats()
        assert stats["directory"] == str(tmp_path)
        assert stats["journal"]["fsync_every"] == 8


class TestShardedPersistence:
    def test_thread_engine_warm_restart(self, tmp_path):
        engine = build_concurrent_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            shards=2, workers=2, persist_dir=tmp_path,
        )
        with engine:
            report = engine.run_closed_loop(trace(), time_step=0.01)
        assert report.requests == 120
        per_shard = [len(shard) for shard in engine.cache.shards]
        engine.cache.persistent_store.close(checkpoint=True)
        assert (tmp_path / "shard_00" / "snapshot.json").exists()
        assert (tmp_path / "shard_01" / "snapshot.json").exists()
        warm = build_concurrent_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            shards=2, workers=2, persist_dir=tmp_path,
        )
        reports = warm.cache.restore_reports
        assert [r.restored_items for r in reports] == per_shard
        assert not any(r.cold for r in reports)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        engine = build_concurrent_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            shards=2, workers=2, persist_dir=tmp_path,
        )
        engine.cache.persistent_store.close(checkpoint=True)
        with pytest.raises(ValueError):
            build_concurrent_engine(
                build_remote(seed=SEED), config=CONFIG, seed=SEED,
                shards=3, workers=2, persist_dir=tmp_path,
            )

    def test_shard_directory_naming(self, tmp_path):
        assert shard_directory(tmp_path, 0).name == "shard_00"
        assert shard_directory(tmp_path, 11).name == "shard_11"


class TestFileBackendRestore:
    def test_round_trip(self, tmp_path):
        engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            backend="filestore", backend_dir=tmp_path,
        )
        run_engine(engine, trace())
        engine.cache.backend.flush()  # persist lazy hit-state rewrites
        live = {
            element.truth_key: (element.frequency, element.value)
            for element in engine.cache.elements.values()
        }
        fresh = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            backend="filestore", backend_dir=tmp_path,
        )
        restored = restore_file_backend(fresh.cache)
        assert restored == len(live)
        recovered = {
            element.truth_key: (element.frequency, element.value)
            for element in fresh.cache.elements.values()
        }
        assert recovered == live

    def test_requires_file_backend_and_empty_cache(self, tmp_path):
        plain = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
        with pytest.raises(TypeError):
            restore_file_backend(plain.cache)
        filed = build_asteria_engine(
            build_remote(seed=SEED), seed=SEED,
            backend="filestore", backend_dir=tmp_path,
        )
        run_engine(filed, trace(n=5))
        with pytest.raises(ValueError):
            restore_file_backend(filed.cache)


class TestSimulatedRemoteStore:
    def test_latency_accounting(self, tmp_path):
        engine = build_asteria_engine(
            build_remote(seed=SEED), config=CONFIG, seed=SEED,
            backend=lambda arena: SimulatedRemoteStore(
                FileStoreBackend(tmp_path, arena=arena),
                write_latency=0.08, read_latency=0.02,
            ),
        )
        run_engine(engine, trace(n=60))
        remote = engine.cache.backend
        assert isinstance(remote, SimulatedRemoteStore)
        stats = remote.stats()["remote"]
        puts = engine.cache.stats.inserts
        deletes = (
            engine.cache.stats.evictions + engine.cache.stats.expirations
        )
        assert stats["simulated_seconds"]["put"] == pytest.approx(0.08 * puts)
        assert stats["simulated_seconds"]["delete"] == pytest.approx(
            0.08 * deletes
        )
        assert remote.total_simulated_seconds == pytest.approx(
            sum(stats["simulated_seconds"].values())
        )
        assert stats["remote_ops"] == remote.remote_ops > 0
