"""Tests for time-varying knowledge and the freshness study."""

import pytest

from repro.core import Query
from repro.network import RemoteDataService
from repro.workloads import build_dataset
from repro.workloads.facts import Fact, FactUniverse


def universe():
    return FactUniverse(
        "u",
        [
            Fact(fact_id="stable", core="capital france", answer="paris",
                 staticity=10),
            Fact(fact_id="volatile", core="price copper", answer="level",
                 staticity=2),
        ],
    )


class TestResolveAt:
    def test_epoch_period_doubles_with_staticity(self):
        assert FactUniverse.epoch_period(3) == 2 * FactUniverse.epoch_period(2)

    def test_epoch_period_validation(self):
        with pytest.raises(ValueError):
            FactUniverse.epoch_period(0)

    def test_stable_fact_never_changes_in_horizon(self):
        facts = universe()
        query = Query("q", fact_id="stable")
        assert facts.resolve_at(query, 0.0) == facts.resolve_at(query, 20000.0)
        assert facts.resolve_at(query, 0.0) == facts.resolve(query)

    def test_volatile_fact_changes_per_epoch(self):
        facts = universe()
        query = Query("q", fact_id="volatile")
        period = FactUniverse.epoch_period(2)
        first = facts.resolve_at(query, 0.0)
        second = facts.resolve_at(query, period + 1.0)
        third = facts.resolve_at(query, 2 * period + 1.0)
        assert first != second != third
        assert "[rev 1]" in second and "[rev 2]" in third

    def test_within_epoch_stable(self):
        facts = universe()
        query = Query("q", fact_id="volatile")
        period = FactUniverse.epoch_period(2)
        assert facts.resolve_at(query, 1.0) == facts.resolve_at(query, period - 1.0)

    def test_unknown_fact_falls_back(self):
        facts = universe()
        result = facts.resolve_at(Query("mystery", fact_id="zzz"), 100.0)
        assert "mystery" in result

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            universe().resolve_at(Query("q", fact_id="stable"), -1.0)


class TestTimeAwareRemote:
    def test_fetch_at_uses_completion_time(self):
        facts = universe()
        service = RemoteDataService(
            latency=0.1, time_resolver=facts.time_resolver()
        )
        query = Query("q", fact_id="volatile")
        period = FactUniverse.epoch_period(2)
        early = service.fetch_at(query, now=0.0)
        late = service.fetch_at(query, now=period + 5.0)
        assert early.result != late.result

    def test_des_fetch_uses_sim_time(self):
        from repro.sim import Simulator

        facts = universe()
        service = RemoteDataService(
            latency=0.1, time_resolver=facts.time_resolver()
        )
        period = FactUniverse.epoch_period(2)
        sim = Simulator()
        holder = {}

        def client():
            yield sim.timeout(period + 1.0)
            holder["late"] = yield from service.fetch(sim, Query("q", fact_id="volatile"))

        sim.process(client())
        sim.run()
        assert "[rev 1]" in holder["late"].result


class TestFreshnessStudy:
    def test_staticity_ttl_dominates_on_staleness(self):
        from repro.experiments import freshness_study

        result = freshness_study.run(n_queries=800)
        rows = {row["aging"]: row for row in result.rows}
        no_ttl = rows["no_ttl"]
        fixed = rows["fixed_ttl"]
        scaled = rows["staticity_ttl"]
        # Immortal entries serve the most stale knowledge.
        assert no_ttl["stale_serve_rate"] > fixed["stale_serve_rate"]
        # Staticity-aware aging is far fresher than a fixed TTL.
        assert scaled["stale_serve_rate"] < 0.6 * fixed["stale_serve_rate"]
        # Freshness costs refetches, in the expected order.
        assert no_ttl["api_calls"] <= fixed["api_calls"] <= scaled["api_calls"]
