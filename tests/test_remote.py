"""Tests for the remote data service."""

import numpy as np
import pytest

from repro.core.types import Query
from repro.network import (
    RateLimitExceeded,
    RemoteDataService,
    RetryPolicy,
    TokenBucket,
)
from repro.sim import Simulator


class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base=0.5, multiplier=2.0, max_delay=4.0, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay(k, rng) for k in range(5)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_jitter_added(self):
        policy = RetryPolicy(base=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        delay = policy.delay(0, rng)
        assert 1.0 <= delay <= 1.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=0.1, base=0.5)


class TestAnalyticFetch:
    def test_unthrottled_fetch_is_service_time_only(self):
        service = RemoteDataService(latency=0.4)
        result = service.fetch_at(Query("q"), now=0.0)
        assert result.latency == pytest.approx(0.4)
        assert result.retries == 0
        assert not result.rate_limited

    def test_fee_charged_per_successful_call(self):
        service = RemoteDataService(latency=0.4, cost_per_call=0.005)
        service.fetch_at(Query("a"))
        service.fetch_at(Query("b"))
        assert service.cost_meter.api_cost == pytest.approx(0.010)
        assert service.calls == 2

    def test_query_cost_overrides_service_fee(self):
        service = RemoteDataService(latency=0.4, cost_per_call=0.005)
        result = service.fetch_at(Query("a", cost=0.02))
        assert result.cost == 0.02

    def test_latency_scale_metadata_respected(self):
        service = RemoteDataService(latency=0.4)
        scaled = service.fetch_at(Query("a", metadata={"latency_scale": 3.0}))
        assert scaled.service_latency == pytest.approx(1.2)

    def test_throttled_fetch_counts_retries(self):
        service = RemoteDataService(
            latency=0.1,
            rate_limiter=TokenBucket(rate=1.0, burst=1),
            retry_policy=RetryPolicy(jitter=0.0),
        )
        service.fetch_at(Query("a"), now=0.0)
        result = service.fetch_at(Query("b"), now=0.0)
        assert result.rate_limited
        assert result.retries >= 1
        assert result.latency > 0.1
        assert service.retry_ratio > 0.0

    def test_retry_budget_exhaustion_raises(self):
        # Analytic fetches jump to the limiter's next availability, so
        # exhaustion needs real contention: two simulated clients racing for
        # one slow-refilling token with a zero retry budget.
        sim = Simulator()
        service = RemoteDataService(
            latency=0.1,
            rate_limiter=TokenBucket(rate=0.001, burst=1),
            retry_policy=RetryPolicy(jitter=0.0, max_retries=0),
        )

        def client(index):
            yield from service.fetch(sim, Query(f"q{index}"))

        sim.process(client(0))
        sim.process(client(1))
        with pytest.raises(RateLimitExceeded):
            sim.run()

    def test_default_resolver_deterministic(self):
        service = RemoteDataService(latency=0.1)
        a = service.fetch_at(Query("q", fact_id="F")).result
        b = service.fetch_at(Query("q", fact_id="F")).result
        assert a == b

    def test_custom_resolver_used(self):
        service = RemoteDataService(latency=0.1, resolver=lambda q: f"<<{q.text}>>")
        assert service.fetch_at(Query("hello")).result == "<<hello>>"


class TestProcessFetch:
    def test_process_fetch_advances_sim_clock(self):
        sim = Simulator()
        service = RemoteDataService(latency=0.4)
        holder = {}

        def client():
            holder["result"] = yield from service.fetch(sim, Query("q"))

        sim.process(client())
        sim.run()
        assert sim.now == pytest.approx(0.4)
        assert holder["result"].latency == pytest.approx(0.4)

    def test_shared_limiter_serialises_concurrent_clients(self):
        sim = Simulator()
        service = RemoteDataService(
            latency=0.1, rate_limiter=TokenBucket(rate=1.0, burst=1)
        )
        finish_times = []

        def client(index):
            yield from service.fetch(sim, Query(f"q{index}"))
            finish_times.append(sim.now)

        for index in range(3):
            sim.process(client(index))
        sim.run()
        # Three fetches through a 1/s bucket must spread over >= 2 seconds.
        assert max(finish_times) - min(finish_times) > 1.5
        assert service.retries > 0

    def test_analytic_and_process_agree_without_throttle(self):
        analytic = RemoteDataService(latency=0.3, rng=np.random.default_rng(1))
        process_mode = RemoteDataService(latency=0.3, rng=np.random.default_rng(1))
        a = analytic.fetch_at(Query("q"))
        sim = Simulator()
        holder = {}

        def client():
            holder["result"] = yield from process_mode.fetch(sim, Query("q"))

        sim.process(client())
        sim.run()
        assert holder["result"].latency == pytest.approx(a.latency)
