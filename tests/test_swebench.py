"""Tests for the SWE-bench-style coding workload."""

import pytest

from repro.workloads import SWEBenchWorkload, TABLE2_ACCESS_FREQUENCIES
from repro.workloads.swebench import _HEAD_FILES, build_repo_universe


class TestRepoUniverse:
    def test_head_and_tail_files_present(self):
        universe = build_repo_universe(n_tail_files=40)
        assert len(universe) == len(_HEAD_FILES) + 40
        for path in _HEAD_FILES:
            assert path in universe

    def test_files_are_free_to_fetch(self):
        universe = build_repo_universe()
        assert all(fact.cost == 0.0 for fact in universe)

    def test_file_sizes_realistic(self):
        universe = build_repo_universe(mean_file_tokens=400)
        sizes = [fact.answer_tokens for fact in universe]
        assert min(sizes) >= 50
        assert 200 < sum(sizes) / len(sizes) < 600

    def test_deterministic(self):
        a = build_repo_universe(seed=1)
        b = build_repo_universe(seed=1)
        assert [f.answer_tokens for f in a] == [f.answer_tokens for f in b]


class TestSWEBenchWorkload:
    def test_every_issue_reads_the_core_file(self):
        workload = SWEBenchWorkload(seed=3)
        issues = workload.issues(100)
        core = _HEAD_FILES[0]
        touched = sum(
            any(query.fact_id == core for query in issue.queries) for issue in issues
        )
        assert touched / len(issues) > 0.95

    def test_frequencies_match_table2(self):
        workload = SWEBenchWorkload(seed=3)
        issues = workload.issues(800)
        frequencies = workload.empirical_file_frequencies(issues)
        for path, expected in zip(_HEAD_FILES, TABLE2_ACCESS_FREQUENCIES):
            measured = frequencies.get(path, 0.0)
            assert measured == pytest.approx(expected, abs=0.06), path

    def test_issues_bounded_in_size(self):
        workload = SWEBenchWorkload(seed=3, max_files_per_issue=4)
        for issue in workload.issues(50):
            assert 1 <= issue.hops <= 4

    def test_file_queries_use_file_tool(self):
        workload = SWEBenchWorkload(seed=3)
        issue = workload.next_issue(0)
        assert all(query.tool == "file" for query in issue.queries)

    def test_query_phrasing_varies(self):
        workload = SWEBenchWorkload(seed=3)
        core = _HEAD_FILES[0]
        texts = set()
        for issue in workload.issues(60):
            for query in issue.queries:
                if query.fact_id == core:
                    texts.add(query.text)
        assert len(texts) > 3  # Same file, many phrasings.

    def test_deterministic(self):
        a = SWEBenchWorkload(seed=3).issues(10)
        b = SWEBenchWorkload(seed=3).issues(10)
        assert [
            [query.text for query in issue.queries] for issue in a
        ] == [[query.text for query in issue.queries] for issue in b]

    def test_empty_frequency_map_for_no_issues(self):
        assert SWEBenchWorkload(seed=3).empirical_file_frequencies([]) == {}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SWEBenchWorkload(max_files_per_issue=0)
        with pytest.raises(ValueError):
            SWEBenchWorkload(seed=3).issues(-1)
