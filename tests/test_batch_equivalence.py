"""Batch paths must be indistinguishable from N scalar calls.

The batched fast path (``embed_batch`` → ``search_batch`` → ``lookup_batch``
→ ``handle_batch``) exists purely for throughput; these tests pin the
contract that it changes *nothing* observable: same embeddings, same hits,
same matches and verdicts, same metrics deltas. Heap-based eviction is
likewise pinned to the eviction order of the old full-scan implementation.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.ann import FlatIndex, HNSWIndex, IVFIndex, PQIndex
from repro.core import AsteriaConfig, Query
from repro.core.eviction import LCFUPolicy, LFUPolicy, LRUPolicy
from repro.embedding import CachedEmbedder, HashingEmbedder
from repro.factory import build_asteria_engine, build_remote


def _unit_vectors(n: int, dim: int = 64, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


TEXTS = [
    "height of mount everest",
    "what is the height of mount everest",
    "population of iceland today",
    "",
    "gdp of france in 2024",
    "height of mount everest",  # duplicate on purpose
    "the the the",  # stopwords only
    "boiling point of water at sea level",
]


# -- embedding ---------------------------------------------------------------


def test_embed_batch_matches_scalar():
    batch_embedder = HashingEmbedder(seed=3)
    scalar_embedder = HashingEmbedder(seed=3)
    batch = batch_embedder.embed_batch(TEXTS)
    singles = np.stack([scalar_embedder.embed(text) for text in TEXTS])
    assert batch.dtype == np.float32
    assert batch.shape == (len(TEXTS), batch_embedder.dim)
    # Rows agree to float32 summation order (the batch GEMM may associate
    # additions differently than the one-row kernel); unit norm is exact.
    assert np.allclose(batch, singles, atol=1e-6)
    norms = np.linalg.norm(batch, axis=1)
    assert np.allclose(norms[norms > 0], 1.0, atol=1e-6)


def test_embed_batch_edge_cases():
    embedder = HashingEmbedder(seed=3)
    empty = embedder.embed_batch([])
    assert empty.shape == (0, embedder.dim)
    single = embedder.embed_batch(["one lonely text"])
    assert np.array_equal(single[0], embedder.embed("one lonely text"))


def test_cached_embed_batch_matches_scalar_replay():
    inner_a = HashingEmbedder(seed=3)
    inner_b = HashingEmbedder(seed=3)
    batched = CachedEmbedder(inner_a)
    scalar = CachedEmbedder(inner_b)
    # Pre-populate one entry so the batch mixes hits and misses.
    batched.embed(TEXTS[0])
    scalar.embed(TEXTS[0])

    batch = batched.embed_batch(TEXTS)
    singles = np.stack([scalar.embed(text) for text in TEXTS])

    assert np.allclose(batch, singles, atol=1e-6)
    assert batched.hits == scalar.hits
    assert batched.misses == scalar.misses
    assert list(batched._cache) == list(scalar._cache)  # LRU order too


def test_cached_embed_batch_respects_lru_capacity():
    batched = CachedEmbedder(HashingEmbedder(seed=3), max_entries=3)
    scalar = CachedEmbedder(HashingEmbedder(seed=3), max_entries=3)
    texts = [f"text number {i}" for i in range(6)]
    batch = batched.embed_batch(texts)
    singles = np.stack([scalar.embed(text) for text in texts])
    assert np.allclose(batch, singles, atol=1e-6)
    assert list(batched._cache) == list(scalar._cache)
    assert (batched.hits, batched.misses) == (scalar.hits, scalar.misses)


# -- ANN search --------------------------------------------------------------


@pytest.mark.parametrize(
    "make_index",
    [
        lambda: FlatIndex(64),
        lambda: HNSWIndex(64, seed=5, ef_search=16),
        lambda: IVFIndex(64, nlist=4, nprobe=2, seed=5),
        lambda: PQIndex(64, m=8, k=16, train_threshold=64, seed=5),
    ],
    ids=["flat", "hnsw", "ivf", "pq"],
)
def test_search_batch_equals_scalar_searches(make_index):
    index = make_index()
    vectors = _unit_vectors(300, seed=11)
    for key, vector in enumerate(vectors):
        index.add(key, vector)
    queries = _unit_vectors(17, seed=12)

    batch = index.search_batch(queries, 5)
    assert len(batch) == len(queries)
    for query, batch_hits in zip(queries, batch):
        scalar_hits = index.search(query, 5)
        assert [hit.key for hit in batch_hits] == [hit.key for hit in scalar_hits]
        assert np.allclose(
            [hit.score for hit in batch_hits],
            [hit.score for hit in scalar_hits],
            atol=1e-6,
        )


def test_search_batch_edge_cases():
    index = FlatIndex(64)
    queries = _unit_vectors(4, seed=1)
    # Empty batch and empty index both yield empty per-query lists.
    assert index.search_batch(np.zeros((0, 64), dtype=np.float32), 3) == []
    assert index.search_batch(queries, 3) == [[], [], [], []]
    index.add(9, queries[0])
    single = index.search_batch(queries[:1], 3)
    assert len(single) == 1 and single[0][0].key == 9
    with pytest.raises(ValueError):
        index.search_batch(queries[0], 3)  # 1-D input is a bug, not a batch
    with pytest.raises(ValueError):
        index.search_batch(queries, 0)


def test_flat_search_sliced_to_high_water_mark():
    """The scalar path must score live rows only, not reserved capacity."""
    index = FlatIndex(8, initial_capacity=1024)
    assert index._arena._high_water == 0
    vectors = _unit_vectors(6, dim=8, seed=2)
    for key, vector in enumerate(vectors):
        index.add(key, vector)
    assert index._arena._high_water == 6
    index.remove(5)
    index.remove(4)
    assert index._arena._high_water == 4  # mark sinks past trailing free slots
    index.remove(0)
    assert index._arena._high_water == 4  # interior hole does not lower it
    hits = index.search(vectors[1], 10)
    assert sorted(hit.key for hit in hits) == [1, 2, 3]
    index.add(40, vectors[4])  # reuses the lowest free slot
    assert index._arena._high_water == 4


# -- sine / cache / engine ---------------------------------------------------


def _fleet_queries(n: int) -> list[Query]:
    return [
        Query(f"ok the height of mountain number {i % (n // 2)} please", fact_id=f"F{i % (n // 2)}")
        for i in range(n)
    ]


def _warm_engine(seed: int = 7, config: AsteriaConfig | None = None):
    engine = build_asteria_engine(build_remote(), config, seed=seed)
    for i in range(8):
        engine.handle(
            Query(f"height of mountain number {i}", fact_id=f"F{i}"), 0.0
        )
    return engine


def test_sine_lookup_batch_equals_scalar_retrieve():
    engine = _warm_engine()
    cache = engine.cache
    sine = cache.sine
    queries = _fleet_queries(10)
    batch = sine.lookup_batch(queries, cache.elements)
    for query, batch_result in zip(queries, batch):
        scalar_result = sine.retrieve(query, cache.elements)
        match_id = batch_result.match.element_id if batch_result.match else None
        scalar_id = scalar_result.match.element_id if scalar_result.match else None
        assert match_id == scalar_id
        assert [hit.key for hit in batch_result.candidates] == [
            hit.key for hit in scalar_result.candidates
        ]
        assert [verdict.score for verdict in batch_result.verdicts] == [
            verdict.score for verdict in scalar_result.verdicts
        ]
        assert batch_result.ann_considered == scalar_result.ann_considered
    assert sine.lookup_batch([], cache.elements) == []


def test_cache_lookup_batch_equals_scalar_lookups():
    engine_a = _warm_engine()
    engine_b = _warm_engine()
    queries = _fleet_queries(10)

    batch = engine_a.cache.lookup_batch(queries, now=5.0)
    singles = [engine_b.cache.lookup(query, now=5.0) for query in queries]

    for batch_result, scalar_result in zip(batch, singles):
        batch_id = batch_result.match.element_id if batch_result.match else None
        scalar_id = scalar_result.match.element_id if scalar_result.match else None
        assert batch_id == scalar_id
    # Hit bookkeeping (frequency, recency) replayed identically.
    freq_a = {e.key: e.frequency for e in engine_a.cache.elements.values()}
    freq_b = {e.key: e.frequency for e in engine_b.cache.elements.values()}
    assert freq_a == freq_b


def _snapshot_metrics(engine):
    metrics = engine.metrics
    return {
        "requests": metrics.requests,
        "hits": metrics.hits,
        "misses": metrics.misses,
        "bypasses": metrics.bypasses,
        "served_correct": metrics.served_correct,
        "served_incorrect": metrics.served_incorrect,
        "evictions": metrics.evictions,
        "expirations": metrics.expirations,
        "prefetch_hits": metrics.prefetch_hits,
        "total_latency_sum": metrics.total_latency.total,
        "hit_latency_sum": metrics.hit_latency.total,
        "miss_latency_sum": metrics.miss_latency.total,
        "check_latency_sum": metrics.cache_check_latency.total,
    }


def _responses_equal(batch_responses, scalar_responses):
    assert len(batch_responses) == len(scalar_responses)
    for batch_response, scalar_response in zip(batch_responses, scalar_responses):
        assert batch_response.result == scalar_response.result
        assert batch_response.latency == scalar_response.latency
        assert batch_response.lookup.status == scalar_response.lookup.status
        assert batch_response.lookup.judged == scalar_response.lookup.judged
        assert (
            batch_response.lookup.candidates == scalar_response.lookup.candidates
        )
        assert (
            batch_response.lookup.element_id == scalar_response.lookup.element_id
        )


@pytest.mark.parametrize("config", [None, AsteriaConfig(ann_only=True)], ids=["full", "ann_only"])
def test_handle_batch_equals_scalar_handles_hits(config):
    engine_a = _warm_engine(config=copy.deepcopy(config))
    engine_b = _warm_engine(config=copy.deepcopy(config))
    queries = _fleet_queries(12)

    batch_responses = engine_a.handle_batch(queries, now=5.0)
    scalar_responses = [engine_b.handle(query, now=5.0) for query in queries]

    _responses_equal(batch_responses, scalar_responses)
    assert _snapshot_metrics(engine_a) == _snapshot_metrics(engine_b)


def test_handle_batch_with_mid_batch_misses_and_inserts():
    """Misses admit new elements mid-batch; later duplicates must hit the
    fresh entry exactly as the scalar sequence would."""
    engine_a = _warm_engine(seed=9)
    engine_b = _warm_engine(seed=9)
    queries = []
    for i in range(4):
        queries.append(Query(f"brand new topic number {i} kangaroo", fact_id=f"N{i}"))
        queries.append(Query(f"brand new topic number {i} kangaroo", fact_id=f"N{i}"))

    batch_responses = engine_a.handle_batch(queries, now=10.0)
    scalar_responses = [engine_b.handle(query, now=10.0) for query in queries]

    _responses_equal(batch_responses, scalar_responses)
    assert _snapshot_metrics(engine_a) == _snapshot_metrics(engine_b)
    assert engine_a.cache.stats.inserts == engine_b.cache.stats.inserts


def test_handle_batch_with_capacity_evictions():
    config = AsteriaConfig(capacity_items=6)
    engine_a = _warm_engine(seed=4, config=copy.deepcopy(config))
    engine_b = _warm_engine(seed=4, config=copy.deepcopy(config))
    queries = [
        Query(f"unseen churny topic number {i} wombat", fact_id=f"C{i}")
        for i in range(10)
    ]
    batch_responses = engine_a.handle_batch(queries, now=20.0)
    scalar_responses = [engine_b.handle(query, now=20.0) for query in queries]
    _responses_equal(batch_responses, scalar_responses)
    assert _snapshot_metrics(engine_a) == _snapshot_metrics(engine_b)
    assert sorted(e.key for e in engine_a.cache.elements.values()) == sorted(
        e.key for e in engine_b.cache.elements.values()
    )


def test_handle_batch_edge_cases_and_bypass():
    config = AsteriaConfig(cacheable_tools=("search",))
    engine_a = _warm_engine(config=copy.deepcopy(config))
    engine_b = _warm_engine(config=copy.deepcopy(config))
    assert engine_a.handle_batch([], now=3.0) == []
    queries = [
        Query("ok the height of mountain number 1 please", fact_id="F1"),
        Query("read the deployment config file", tool="file", fact_id="X1"),
    ]
    batch_responses = engine_a.handle_batch(queries, now=3.0)
    scalar_responses = [engine_b.handle(query, now=3.0) for query in queries]
    assert batch_responses[1].lookup.status == "bypass"
    _responses_equal(batch_responses, scalar_responses)
    assert _snapshot_metrics(engine_a) == _snapshot_metrics(engine_b)
    single = engine_a.handle_batch(
        [Query("ok the height of mountain number 2 please", fact_id="F2")], now=4.0
    )
    scalar = engine_b.handle(
        Query("ok the height of mountain number 2 please", fact_id="F2"), now=4.0
    )
    _responses_equal(single, [scalar])


# -- heap eviction order -----------------------------------------------------


def _scan_eviction_order(cache, now):
    """The old full-scan order: ascending (score, element_id)."""
    return [
        element_id
        for _, element_id in sorted(
            (cache.policy.score(element, now), element_id)
            for element_id, element in cache.elements.items()
        )
    ]


@pytest.mark.parametrize(
    "policy", [LCFUPolicy(), LRUPolicy(), LFUPolicy()], ids=["lcfu", "lru", "lfu"]
)
def test_heap_eviction_matches_scan_order(policy):
    engine = build_asteria_engine(build_remote(), seed=13)
    cache = engine.cache
    cache.policy = policy
    # Build a population with varied frequency/recency/cost profiles.
    for i in range(12):
        engine.handle(Query(f"seed topic number {i} platypus", fact_id=f"S{i}"), float(i))
    for i in range(6):
        for _ in range(i % 4):
            engine.handle(
                Query(f"ok seed topic number {i} platypus", fact_id=f"S{i}"),
                30.0 + i,
            )
    now = 50.0
    expected = _scan_eviction_order(cache, now)

    cache.capacity_items = 4
    victims = []
    original_remove = cache.remove

    def tracking_remove(element_id, reason="delete"):
        victims.append(element_id)
        return original_remove(element_id, reason=reason)

    cache.remove = tracking_remove
    cache._enforce_capacity(now)
    cache.remove = original_remove

    survivors = len(cache.elements)
    assert survivors == 4
    assert victims == expected[: len(victims)]


def test_heap_eviction_survives_policy_swap_and_restore():
    """Out-of-band score changes (policy swap) must not corrupt order."""
    engine = build_asteria_engine(build_remote(), AsteriaConfig(capacity_items=50), seed=13)
    cache = engine.cache
    for i in range(12):
        engine.handle(Query(f"seed topic number {i} walrus", fact_id=f"W{i}"), float(i))
    cache.policy = LRUPolicy()  # heap entries now hold stale LCFU scores
    now = 40.0
    expected = _scan_eviction_order(cache, now)
    cache.capacity_items = 3
    victims = []
    original_remove = cache.remove

    def tracking_remove(element_id, reason="delete"):
        victims.append(element_id)
        return original_remove(element_id, reason=reason)

    cache.remove = tracking_remove
    cache._enforce_capacity(now)
    cache.remove = original_remove
    assert victims == expected[: len(victims)]
    assert len(cache.elements) == 3


# -- __slots__ ---------------------------------------------------------------


def test_hot_dataclasses_are_slotted():
    from repro.ann.base import SearchHit
    from repro.core.engine import EngineResponse
    from repro.core.sine import SineResult
    from repro.core.types import CacheLookup, FetchResult
    from repro.judger.base import JudgeRequest, JudgeVerdict

    hit = SearchHit(score=0.5, key=1)
    verdict = JudgeVerdict(score=0.5)
    request = JudgeRequest(query_text="a", cached_query="b")
    fetch = FetchResult(result="r", latency=0.1, service_latency=0.1, cost=0.0)
    lookup = CacheLookup(status="miss", result=None, latency=0.0)
    response = EngineResponse(result="r", latency=0.1, lookup=lookup)
    result = SineResult(match=None)
    query = Query("q")
    for instance in (hit, verdict, request, fetch, lookup, response, result, query):
        assert not hasattr(instance, "__dict__"), type(instance).__name__
