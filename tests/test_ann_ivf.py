"""Tests for the IVF index."""

import numpy as np
import pytest

from repro.ann import FlatIndex, IVFIndex


def clustered_vectors(rng, n_clusters=8, per_cluster=30, dim=32):
    """Unit vectors with genuine cluster structure (IVF's good case)."""
    centers = rng.standard_normal((n_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    vectors = []
    for center in centers:
        noisy = center + 0.15 * rng.standard_normal((per_cluster, dim))
        noisy /= np.linalg.norm(noisy, axis=1, keepdims=True)
        vectors.append(noisy)
    return np.vstack(vectors).astype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestIVFLifecycle:
    def test_untrained_below_threshold(self, rng):
        index = IVFIndex(32, nlist=4, train_threshold=100)
        for key in range(10):
            index.add(key, rng.standard_normal(32))
        assert not index.is_trained

    def test_trains_at_threshold(self, rng):
        index = IVFIndex(32, nlist=4, train_threshold=16)
        for key in range(16):
            index.add(key, rng.standard_normal(32))
        assert index.is_trained

    def test_untrained_search_is_exact(self, rng):
        index = IVFIndex(32, nlist=4, train_threshold=1000)
        flat = FlatIndex(32)
        for key in range(50):
            vector = rng.standard_normal(32)
            index.add(key, vector)
            flat.add(key, vector)
        query = rng.standard_normal(32)
        assert [h.key for h in index.search(query, 5)] == [
            h.key for h in flat.search(query, 5)
        ]

    def test_duplicate_key_rejected(self, rng):
        index = IVFIndex(32)
        index.add(1, rng.standard_normal(32))
        with pytest.raises(KeyError):
            index.add(1, rng.standard_normal(32))

    def test_remove_before_and_after_training(self, rng):
        index = IVFIndex(32, nlist=4, train_threshold=20)
        for key in range(30):
            index.add(key, rng.standard_normal(32))
        index.remove(0)
        index.remove(29)
        assert len(index) == 28
        assert 0 not in index and 29 not in index

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            IVFIndex(32).remove(1)

    def test_retrain_refits(self, rng):
        index = IVFIndex(32, nlist=4, train_threshold=20)
        for key in range(40):
            index.add(key, rng.standard_normal(32))
        for key in range(30):
            index.remove(key)
        index.retrain()
        assert index.is_trained
        assert len(index) == 10


class TestIVFRecall:
    def test_high_recall_on_clustered_data(self, rng):
        vectors = clustered_vectors(rng)
        index = IVFIndex(32, nlist=8, nprobe=3, train_threshold=64, seed=1)
        flat = FlatIndex(32)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
            flat.add(key, vector)
        recall_sum = 0.0
        queries = 30
        for _ in range(queries):
            base = vectors[rng.integers(len(vectors))]
            query = base + 0.05 * rng.standard_normal(32)
            truth = {h.key for h in flat.search(query, 10)}
            got = {h.key for h in index.search(query, 10)}
            recall_sum += len(truth & got) / 10
        assert recall_sum / queries > 0.8

    def test_full_probe_equals_exact(self, rng):
        vectors = clustered_vectors(rng, n_clusters=4, per_cluster=20)
        index = IVFIndex(32, nlist=4, nprobe=4, train_threshold=50, seed=1)
        flat = FlatIndex(32)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
            flat.add(key, vector)
        query = vectors[7]
        assert [h.key for h in index.search(query, 5)] == [
            h.key for h in flat.search(query, 5)
        ]

    def test_deleted_items_not_returned(self, rng):
        vectors = clustered_vectors(rng, n_clusters=4, per_cluster=20)
        index = IVFIndex(32, nlist=4, train_threshold=50, seed=1)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
        index.remove(7)
        hits = index.search(vectors[7], 10)
        assert all(hit.key != 7 for hit in hits)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            IVFIndex(0)
        with pytest.raises(ValueError):
            IVFIndex(32, nlist=0)
        with pytest.raises(ValueError):
            IVFIndex(32, nprobe=0)
