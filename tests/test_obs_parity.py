"""Metrics parity across the four serving stacks (satellite).

The same pinned-seed workload replayed through the sequential engine, the
thread-pool engine (one worker), the asyncio engine (sequential awaits),
and the multi-process engine (four shard workers, sequential awaits) must
expose identical counter totals — hits, misses, stale_hits, fetch_failures —
through the shared :class:`MetricsRegistry`. A blackout window in the middle
of the run forces the degraded paths (stale serving, fetch failure) so the
parity claim covers them too, not just clean lookups. For the proc engine,
parity additionally proves the piggybacked shard-stats aggregation is exact:
its cache counters come from worker replies, not an in-process store.
"""

import asyncio

import numpy as np

from repro.core import Query
from repro.core.resilience import CircuitBreaker, ResilienceManager
from repro.factory import (
    build_asteria_engine,
    build_async_engine,
    build_concurrent_engine,
    build_proc_engine,
    build_remote,
)
from repro.network import FaultInjector
from repro.obs import EngineInstrument, MetricsRegistry

SEED = 0
N_QUERIES = 300
POPULATION = 16
TIME_STEP = 0.01
#: Simulated-time blackout covering queries 100..199 — after the cache has
#: warmed, so misses inside it can degrade to stale hits.
BLACKOUT = (1.0, 2.0)

#: The counters the satellite pins across engines.
PARITY_SERIES = (
    ("repro_lookups_total", {"status": "hit"}),
    ("repro_lookups_total", {"status": "miss"}),
    ("repro_lookups_total", {"status": "bypass"}),
    ("repro_outcomes_total", {"outcome": "stale_hit"}),
    ("repro_outcomes_total", {"outcome": "failed"}),
    ("repro_events_total", {"event": "fetch_failures"}),
)


def workload() -> list[Query]:
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(1.3, size=N_QUERIES), POPULATION)
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _remote():
    """A fresh remote with the same deterministic, schedule-driven faults.

    Blackout faults consume no randomness and trigger purely on the
    simulated clock, so every engine sees the identical fault sequence.
    """
    return build_remote(
        seed=SEED, fault_injector=FaultInjector(blackouts=[BLACKOUT], seed=SEED)
    )


def _resilience() -> ResilienceManager:
    # A wide-open breaker keeps every fetch attempt flowing, so failure
    # accounting is driven by the blackout schedule alone.
    return ResilienceManager(
        breaker=CircuitBreaker(
            failure_threshold=1.0, window=1024, min_samples=1024
        ),
        stale_serve=True,
        seed=SEED,
    )


def run_sync(queries):
    engine = build_asteria_engine(_remote(), seed=SEED, resilience=_resilience())
    for i, query in enumerate(queries):
        engine.handle(query, now=i * TIME_STEP)
    return engine


def run_thread(queries):
    engine = build_concurrent_engine(
        _remote(), seed=SEED, shards=4, workers=1, resilience=_resilience()
    )
    with engine:
        for i, query in enumerate(queries):
            engine.handle(query, now=i * TIME_STEP)
    return engine


def run_async(queries):
    engine = build_async_engine(
        _remote(), seed=SEED, shards=4, resilience=_resilience()
    )

    async def drive():
        for i, query in enumerate(queries):
            await engine.serve(query, now=i * TIME_STEP)
            # Drain per request so stale-refresh admissions land at the same
            # sequence points as the sync engine's inline refresh — their
            # completion order otherwise depends on event-loop scheduling.
            await engine.drain()

    asyncio.run(drive())
    return engine


def run_proc(queries):
    # workers=4 matches the other arms' shards=4: the shard count shapes
    # per-shard ANN candidate sets, so parity needs the same partitioning.
    engine = build_proc_engine(
        _remote(), seed=SEED, workers=4, resilience=_resilience()
    )

    async def drive():
        async with engine:
            for i, query in enumerate(queries):
                await engine.serve(query, now=i * TIME_STEP)
                await engine.drain()  # same rule as run_async

    asyncio.run(drive())
    return engine


def test_pinned_workload_exposes_identical_counters_across_engines():
    queries = workload()
    registry = MetricsRegistry()
    engines = {
        "sync": run_sync(queries),
        "thread": run_thread(queries),
        "async": run_async(queries),
        "proc": run_proc(queries),
    }
    for label, engine in engines.items():
        EngineInstrument(registry, label).sync(engine.metrics, cache=engine.cache)

    for name, labels in PARITY_SERIES:
        family = registry.get(name)
        values = {
            label: family.value(engine=label, **labels) for label in engines
        }
        assert len(set(values.values())) == 1, (name, labels, values)

    # The workload actually exercised both the clean and degraded paths —
    # parity over all-zero counters would prove nothing.
    lookups = registry.get("repro_lookups_total")
    outcomes = registry.get("repro_outcomes_total")
    assert lookups.value(engine="sync", status="hit") > 0
    assert lookups.value(engine="sync", status="miss") > 0
    degraded = outcomes.value(
        engine="sync", outcome="stale_hit"
    ) + outcomes.value(engine="sync", outcome="failed")
    assert degraded > 0

    # Latency histograms mirror per-engine with exact counts: every resolved
    # request contributes exactly one total-latency sample.
    latency = registry.get("repro_request_latency_seconds")
    for label, engine in engines.items():
        assert latency.count(engine=label, kind="total") == (
            engine.metrics.requests
        )
