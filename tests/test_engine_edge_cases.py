"""Edge-case tests across engine variants: recalibration in DES mode,
rate-limited baselines, tiered TTL, persistence with approximate indexes."""

import pytest

from repro.core import AsteriaConfig, CacheSnapshot, Query
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_remote,
    build_semantic_cache,
    build_tiered_engine,
)
from repro.sim import Simulator


class TestRecalibrationInProcessMode:
    def test_recalibration_fires_during_des_run(self):
        config = AsteriaConfig(
            recalibration_enabled=True,
            recalibration_interval=5.0,
            recalibration_samples=3,
        )
        engine = build_asteria_engine(build_remote(), config, seed=1)
        sim = Simulator()

        def traffic():
            for step in range(30):
                yield from engine.process(
                    sim, Query("height of everest ok", fact_id="F")
                )
                yield sim.timeout(1.0)

        sim.process(traffic())
        sim.run()
        assert engine.metrics.recalibrations >= 2

    def test_finetune_in_des_mode(self):
        config = AsteriaConfig(
            recalibration_enabled=True,
            recalibration_interval=2.0,
            recalibration_samples=10,
            finetune_enabled=True,
        )
        engine = build_asteria_engine(build_remote(), config, seed=1)
        engine.recalibrator.min_records = 5
        engine.cache.sine.judger.flip_rate = 0.2
        sim = Simulator()

        def traffic():
            for step in range(40):
                yield from engine.process(
                    sim, Query("height of everest ok", fact_id="F")
                )
                yield sim.timeout(0.5)

        sim.process(traffic())
        sim.run()
        assert engine.cache.sine.judger.flip_rate < 0.2


class TestExactEngineUnderThrottle:
    def test_exact_process_respects_shared_limiter(self):
        remote = build_remote(rate_limit_per_minute=60, seed=1)
        remote.rate_limiter.__init__(rate=1.0, burst=1)  # 1/s, tiny burst
        engine = build_exact_engine(remote)
        sim = Simulator()
        responses = []

        def client(index):
            response = yield from engine.process(sim, Query(f"distinct {index}"))
            responses.append(response)

        for index in range(4):
            sim.process(client(index))
        sim.run()
        assert len(responses) == 4
        assert remote.retries > 0
        assert max(response.latency for response in responses) > 2.0


class TestTieredEdgeCases:
    def test_expired_l2_entry_not_promoted(self):
        remote = build_remote(seed=3)
        l2 = build_semantic_cache(AsteriaConfig(default_ttl=5.0), seed=5)
        node = build_tiered_engine(
            remote, l2, l1_capacity=4,
            config=AsteriaConfig(default_ttl=5.0), seed=5,
        )
        node.handle(Query("height of everest", fact_id="F"), 0.0)
        # L1 also expired by now; everything must refetch.
        response = node.handle(Query("everest height ok", fact_id="F"), 100.0)
        assert not response.served_from_cache
        assert remote.calls == 2

    def test_l1_eviction_keeps_l2_copy(self):
        remote = build_remote(seed=3)
        l2 = build_semantic_cache(AsteriaConfig(capacity_items=64), seed=5)
        node = build_tiered_engine(remote, l2, l1_capacity=1, seed=5)
        node.handle(Query("first unique topic", fact_id="A"), 0.0)
        node.handle(Query("second unique topic", fact_id="B"), 1.0)  # evicts A from L1
        assert len(node.l1) == 1
        response = node.handle(Query("first topic unique ok", fact_id="A"), 2.0)
        assert response.served_from_cache
        assert node.l2_hits == 1
        assert remote.calls == 2  # no third fetch


class TestPersistenceAcrossIndexKinds:
    @pytest.mark.parametrize("index_kind", ["flat", "hnsw", "ivf", "pq"])
    def test_snapshot_restores_into_any_index(self, index_kind):
        source = build_asteria_engine(build_remote(), seed=1)
        source.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        source.handle(Query("height of everest please", fact_id="G"), 1.0)
        snapshot = CacheSnapshot.of(source.cache)
        target = build_asteria_engine(
            build_remote(), seed=1, index_kind=index_kind
        )
        restored = snapshot.restore_into(target.cache, now=1.0)
        assert restored == 2
        response = target.handle(Query("mona lisa painter ok", fact_id="F"), 2.0)
        assert response.served_from_cache, index_kind


class TestMixedFeatureInteractions:
    def test_coalescing_plus_doorkeeper(self):
        """A coalesced flash crowd under a doorkeeper: one fetch, and the
        leader's admission decision governs."""
        from repro.core import DoorkeeperAdmission

        config = AsteriaConfig(coalesce_misses=True)
        engine = build_asteria_engine(build_remote(), config, seed=1)
        engine.admission = DoorkeeperAdmission(window=1000.0)
        sim = Simulator()
        for _ in range(3):
            sim.process(engine.process(sim, Query("height of everest", fact_id="F")))
        sim.run()
        assert engine.remote.calls == 1
        assert len(engine.cache) == 0  # leader's first miss: refused
        # The next wave recurs -> admitted.
        sim2 = Simulator()
        for _ in range(2):
            sim2.process(engine.process(sim2, Query("everest height ok", fact_id="F")))
        sim2.run()
        assert len(engine.cache) == 1

    def test_bypass_tool_with_prefetch_enabled(self):
        config = AsteriaConfig(
            cacheable_tools=("search",), prefetch_enabled=True
        )
        engine = build_asteria_engine(build_remote(), config, seed=1)
        engine.handle(Query("write file output", tool="file"), 0.0)
        engine.handle(Query("height of everest", tool="search", fact_id="F"), 1.0)
        assert engine.metrics.bypasses == 1
        assert len(engine.cache) == 1

    def test_ttl_scaling_with_snapshot_roundtrip(self):
        config = AsteriaConfig(default_ttl=1000.0, staticity_ttl_scaling=True)
        source = build_asteria_engine(build_remote(), config, seed=1)
        source.handle(
            Query("price of copper today", fact_id="V", staticity=2), 0.0
        )
        element = next(iter(source.cache.elements.values()))
        snapshot = CacheSnapshot.of(source.cache, now=0.0)
        target = build_asteria_engine(build_remote(), config, seed=1)
        snapshot.restore_into(target.cache, now=50.0)
        twin = next(iter(target.cache.elements.values()))
        # Scaled expiry preserved relative to the new clock.
        assert twin.expires_at - 50.0 == pytest.approx(element.expires_at)
