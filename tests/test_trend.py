"""Tests for the trend-driven workload generator."""

import pytest

from repro.workloads import TrendEvent, TrendWorkload, build_dataset


@pytest.fixture
def dataset():
    return build_dataset("hotpotqa", seed=1)


class TestTrendEvent:
    def test_rate_zero_before_start(self):
        event = TrendEvent(topic="t", start=100.0, magnitude=5.0)
        assert event.rate_at(99.0) == 0.0

    def test_rate_peaks_at_start_and_decays(self):
        event = TrendEvent(topic="t", start=100.0, magnitude=5.0, decay=50.0)
        assert event.rate_at(100.0) == pytest.approx(5.0)
        assert event.rate_at(150.0) == pytest.approx(5.0 / 2.718281828, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrendEvent(topic="t", start=-1.0, magnitude=1.0)
        with pytest.raises(ValueError):
            TrendEvent(topic="t", start=0.0, magnitude=1.0, decay=0.0)


class TestTrendWorkload:
    def test_arrivals_time_ordered_and_bounded(self, dataset):
        workload = TrendWorkload(dataset, duration=120.0, base_rate=0.5, seed=2)
        arrivals = workload.timed_queries()
        times = [at for at, _ in arrivals]
        assert times == sorted(times)
        assert all(0 <= at < 120.0 for at in times)

    def test_deterministic(self, dataset):
        a = TrendWorkload(dataset, duration=60.0, seed=2).timed_queries()
        b = TrendWorkload(dataset, duration=60.0, seed=2).timed_queries()
        assert [(t, q.text) for t, q in a] == [(t, q.text) for t, q in b]

    def test_rate_includes_events(self, dataset):
        event = TrendEvent(topic=dataset.universe.topics()[0], start=10.0, magnitude=4.0)
        workload = TrendWorkload(
            dataset, events=[event], duration=60.0, base_rate=1.0, seed=2
        )
        assert workload.rate_at(5.0) == pytest.approx(1.0)
        assert workload.rate_at(10.0) == pytest.approx(5.0)

    def test_event_surges_its_topic(self, dataset):
        topic = dataset.universe.topics()[0]
        event = TrendEvent(topic=topic, start=30.0, magnitude=8.0, decay=30.0)
        workload = TrendWorkload(
            dataset, events=[event], duration=90.0, base_rate=0.5, seed=2
        )
        arrivals = workload.timed_queries()
        fact_topic = {fact.fact_id: fact.topic for fact in dataset.universe}
        before = sum(
            1 for at, q in arrivals if at < 30.0 and fact_topic[q.fact_id] == topic
        )
        after = sum(
            1
            for at, q in arrivals
            if 30.0 <= at < 60.0 and fact_topic[q.fact_id] == topic
        )
        assert after > 3 * max(1, before)

    def test_related_topic_surges_in_sympathy(self, dataset):
        topics = dataset.universe.topics()
        event = TrendEvent(
            topic=topics[0],
            start=30.0,
            magnitude=8.0,
            decay=30.0,
            related=((topics[1], 0.4),),
        )
        workload = TrendWorkload(
            dataset, events=[event], duration=90.0, base_rate=0.2, seed=2
        )
        arrivals = workload.timed_queries()
        fact_topic = {fact.fact_id: fact.topic for fact in dataset.universe}
        related_after = sum(
            1
            for at, q in arrivals
            if 30.0 <= at < 60.0 and fact_topic[q.fact_id] == topics[1]
        )
        related_before = sum(
            1 for at, q in arrivals if at < 30.0 and fact_topic[q.fact_id] == topics[1]
        )
        assert related_after > related_before

    def test_default_events_built_from_dataset_topics(self, dataset):
        workload = TrendWorkload(dataset, duration=600.0, seed=2)
        topics = set(dataset.universe.topics())
        assert len(workload.events) == 4
        assert all(event.topic in topics for event in workload.events)

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            TrendWorkload(dataset, duration=0.0)
        workload = TrendWorkload(dataset, duration=10.0, seed=2)
        with pytest.raises(ValueError):
            workload.timed_queries(bin_width=0.0)
