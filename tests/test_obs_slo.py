"""Tests for :mod:`repro.obs.slo`: burn-rate evaluation, firing rules,
gauge publication, exemplar linkage, and the health/CLI rendering."""

import pytest

from repro.obs import MetricsRegistry, SnapshotRecorder
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    default_slos,
    evaluate_slo,
    evaluate_slos,
    format_statuses,
)


class ManualClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def snapshot(times, values, series="p99_latency"):
    return {"t": list(times), "series": {series: list(values)}}


def latency_spec(**overrides):
    kwargs = dict(
        name="p99_latency",
        series="p99_latency",
        threshold=0.5,
        op="<=",
        target=0.99,
        fast_window=300.0,
        slow_window=3600.0,
    )
    kwargs.update(overrides)
    return SLOSpec(**kwargs)


class TestSpecValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op must be"):
            latency_spec(op="==")

    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="target"):
            latency_spec(target=1.0)
        with pytest.raises(ValueError, match="target"):
            latency_spec(target=0.0)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError, match="fast_window"):
            latency_spec(fast_window=600.0, slow_window=300.0)
        with pytest.raises(ValueError, match="fast_window"):
            latency_spec(fast_window=0.0)

    def test_goodness_directions(self):
        latency = latency_spec()
        assert latency.good(0.5) and not latency.good(0.51)
        served = latency_spec(op=">=", threshold=0.99)
        assert served.good(1.0) and not served.good(0.98)


class TestBurnRateEvaluation:
    def test_healthy_baseline_is_quiet(self):
        spec = latency_spec()
        times = [i * 10.0 for i in range(60)]
        status = evaluate_slo(spec, snapshot(times, [0.05] * 60))
        assert not status.firing
        assert status.fast_burn_rate == 0.0
        assert status.slow_burn_rate == 0.0
        assert status.fast_samples > 0
        assert status.last_value == 0.05

    def test_sustained_regression_fires(self):
        # Every sample over both windows breaches: burn rate is
        # 1.0 / (1 - 0.99) = 100 in both, far past 14.4 / 6.0.
        spec = latency_spec()
        times = [i * 10.0 for i in range(60)]
        status = evaluate_slo(spec, snapshot(times, [2.0] * 60))
        assert status.firing
        assert status.fast_burn_rate == pytest.approx(100.0)
        assert status.slow_burn_rate == pytest.approx(100.0)

    def test_short_blip_does_not_page(self):
        # 100 samples spaced 36s apart fill the hour; only the last five
        # breach. The fast window burns hot (5/9 bad) but the slow window
        # stays at 5% bad -> burn 5.0 < 6.0, so no page.
        spec = latency_spec()
        times = [i * 36.0 for i in range(100)]
        values = [0.05] * 95 + [2.0] * 5
        status = evaluate_slo(spec, snapshot(times, values))
        assert status.fast_burn_rate >= spec.fast_burn
        assert status.slow_burn_rate < spec.slow_burn
        assert not status.firing

    def test_zero_samples_never_fire(self):
        status = evaluate_slo(latency_spec(), {"t": [], "series": {}})
        assert not status.firing
        assert status.fast_samples == 0
        assert status.slow_samples == 0
        assert status.last_value is None

    def test_nan_gaps_are_skipped(self):
        spec = latency_spec()
        nan = float("nan")
        status = evaluate_slo(
            spec, snapshot([0.0, 10.0, 20.0, 30.0], [nan, 0.1, nan, 0.2])
        )
        assert status.fast_samples == 2
        assert status.last_value == 0.2

    def test_availability_direction_fires_on_low_values(self):
        spec = latency_spec(op=">=", threshold=0.99, name="served_fraction")
        times = [i * 10.0 for i in range(30)]
        bad = evaluate_slo(spec, snapshot(times, [0.8] * 30))
        good = evaluate_slo(spec, snapshot(times, [1.0] * 30))
        assert bad.firing
        assert not good.firing

    def test_windows_clamp_to_short_runs(self):
        # A 60-second stress run fills neither window; the evaluation
        # still sees every sample in both.
        spec = latency_spec()
        times = [i * 5.0 for i in range(12)]
        status = evaluate_slo(spec, snapshot(times, [2.0] * 12))
        assert status.fast_samples == 12
        assert status.slow_samples == 12
        assert status.firing


class TestDefaultSlos:
    def test_series_names_match_install_probes(self):
        specs = default_slos(engine="proc")
        assert [spec.series for spec in specs] == [
            'p99_latency{engine="proc"}',
            'served_fraction{engine="proc"}',
            'stale_fraction{engine="proc"}',
        ]

    def test_directions(self):
        by_name = {spec.name: spec for spec in default_slos()}
        assert by_name["p99_latency"].op == "<="
        assert by_name["served_fraction"].op == ">="
        assert by_name["stale_fraction"].op == "<="


class TestSLOEngine:
    def test_injected_regression_fires_via_recorder(self):
        # End-to-end over the real recorder surface: a probe reads a
        # latency reading we control. The healthy phase is quiet; after
        # the injected regression the latency SLO fires.
        clock = ManualClock()
        recorder = SnapshotRecorder(interval=0.1, clock=clock)
        reading = {"p99": 0.05}
        recorder.add_probe('p99_latency{engine="sync"}', lambda: reading["p99"])
        engine = SLOEngine(default_slos(engine="sync"), recorder=recorder)

        for _ in range(20):
            clock.advance(10.0)
            recorder.sample()
        healthy = {s.name: s for s in engine.evaluate()}
        assert not healthy["p99_latency"].firing

        reading["p99"] = 3.0  # injected latency regression
        for _ in range(20):
            clock.advance(10.0)
            recorder.sample()
        burning = {s.name: s for s in engine.evaluate()}
        assert burning["p99_latency"].firing
        # The untracked SLOs have no samples at all and must stay quiet.
        assert not burning["served_fraction"].firing
        assert not burning["stale_fraction"].firing

    def test_publishes_burn_and_firing_gauges(self):
        registry = MetricsRegistry()
        engine = SLOEngine([latency_spec()], registry=registry)
        times = [i * 10.0 for i in range(60)]
        engine.evaluate(snapshot(times, [2.0] * 60))
        burn = registry.get("repro_slo_burn_rate")
        firing = registry.get("repro_slo_firing")
        assert burn.value(slo="p99_latency", window="fast") == pytest.approx(100.0)
        assert burn.value(slo="p99_latency", window="slow") == pytest.approx(100.0)
        assert firing.value(slo="p99_latency") == 1.0
        engine.evaluate(snapshot(times, [0.05] * 60))
        assert firing.value(slo="p99_latency") == 0.0

    def test_firing_latency_slo_links_slowest_exemplars(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_request_latency_seconds")
        for trace_id, value in ((101, 0.2), (102, 4.0), (103, 1.0), (104, 2.5)):
            hist.add_exemplar(value, trace_id, engine="sync", kind="total")
        engine = SLOEngine(
            [latency_spec()],
            latency_histogram=hist,
            latency_labels={"engine": "sync", "kind": "total"},
        )
        times = [i * 10.0 for i in range(60)]
        (status,) = engine.evaluate(snapshot(times, [2.0] * 60))
        assert status.firing
        assert status.exemplar_trace_ids == [102, 104, 103]  # slowest first
        # Quiet SLOs do not dig for exemplars.
        (quiet,) = engine.evaluate(snapshot(times, [0.05] * 60))
        assert quiet.exemplar_trace_ids == []

    def test_needs_recorder_or_snapshot(self):
        engine = SLOEngine([latency_spec()])
        with pytest.raises(ValueError, match="recorder"):
            engine.evaluate()

    def test_health_summary_shape(self):
        engine = SLOEngine([latency_spec()])
        times = [i * 10.0 for i in range(60)]
        summary = engine.health_summary(snapshot(times, [2.0] * 60))
        assert summary["firing"] == ["p99_latency"]
        (row,) = summary["slos"]
        assert row["name"] == "p99_latency"
        assert row["firing"] is True
        assert row["fast_burn_rate"] == pytest.approx(100.0)


class TestFormatting:
    def test_table_lists_every_slo(self):
        times = [i * 10.0 for i in range(60)]
        statuses = evaluate_slos(
            [latency_spec(), latency_spec(name="quiet")],
            snapshot(times, [2.0] * 60),
        )
        statuses[0].exemplar_trace_ids = [7, 8]
        text = format_statuses(statuses)
        assert "p99_latency" in text and "quiet" in text
        assert "exemplar traces: [7, 8]" in text
        assert text.splitlines()[0].startswith("slo")
