"""Integration tests for the serving stack under contention."""

import pytest

from repro.serving import (
    FixedLatencyExecutor,
    GpuDevice,
    KVMemoryPool,
    PartitionJudgeExecutor,
    PriorityAwareScheduler,
)
from repro.sim import Simulator


def colocated(sim, agent_slots=2, judger_slots=1, dynamic_gb=4.0):
    gpu = GpuDevice(sim, "gpu0")
    agent = gpu.partition("agent", 0.8, slots=agent_slots, speed_exponent=0.3)
    judger = gpu.partition("judger", 0.2, slots=judger_slots, speed_exponent=0.3)
    memory = KVMemoryPool(
        8.0 + dynamic_gb, {"agent": 8.0, "judger": 0.0}
    )
    scheduler = PriorityAwareScheduler(
        sim, agent, judger, memory, agent_kv_gb=4.0, judger_kv_gb=2.0
    )
    return gpu, scheduler


class TestMemoryGatedAdmission:
    def test_judger_spills_into_dynamic_pool(self):
        sim = Simulator()
        _, scheduler = colocated(sim, dynamic_gb=4.0)
        done = []

        def judger_job():
            yield from scheduler.submit_judger(0.01)
            done.append(sim.now)

        sim.process(judger_job())
        sim.run()
        assert done  # 2 GB fits the 4 GB dynamic region
        assert scheduler.memory.used_by("judger") == 0.0  # released after

    def test_judger_blocked_until_agent_releases_dynamic_memory(self):
        sim = Simulator()
        _, scheduler = colocated(sim, dynamic_gb=2.0)
        order = []

        def agent_job():
            # 4 GB static + spill: two concurrent agents use 8 static; a
            # third would spill. Here one agent occupying dynamic via a
            # larger footprint blocks the judger's 2 GB.
            yield from scheduler.submit_agent(0.8, memory_gb=10.0)
            order.append((sim.now, "agent"))

        def judger_job():
            yield sim.timeout(0.01)
            yield from scheduler.submit_judger(0.01, memory_gb=2.0)
            order.append((sim.now, "judger"))

        sim.process(agent_job())
        sim.process(judger_job())
        sim.run()
        names = [name for _, name in order]
        assert names == ["agent", "judger"]  # judger waited for the release

    def test_agent_queue_length_reflects_waiting_work(self):
        sim = Simulator()
        _, scheduler = colocated(sim, agent_slots=1)
        for _ in range(3):
            sim.process(self_submit(scheduler, 0.8))
        sim.run(until=0.01)
        assert scheduler.agent_queue_length >= 1

    def test_utilization_and_rental_accounting(self):
        sim = Simulator()
        gpu, scheduler = colocated(sim)

        def workload():
            yield from scheduler.submit_agent(0.8)

        sim.process(workload())
        sim.run()
        horizon = sim.now
        assert gpu.rental_gpu_seconds == pytest.approx(horizon)
        agent_partition = gpu.partitions["agent"]
        assert agent_partition.busy_seconds > 0
        assert 0 < agent_partition.utilization(horizon) <= 1.0


def self_submit(scheduler, work):
    yield from scheduler.submit_agent(work)


class TestExecutorsUnderLoad:
    def test_partition_executor_serialises_beyond_slots(self):
        sim = Simulator()
        _, scheduler = colocated(sim, judger_slots=1)
        executor = PartitionJudgeExecutor(scheduler)
        finish = []

        def validation(index):
            yield from executor.run(sim, judged=1)
            finish.append(sim.now)

        for index in range(3):
            sim.process(validation(index))
        sim.run()
        assert len(finish) == 3
        # One slot: completions strictly ordered, spaced by the service time.
        assert finish == sorted(finish)
        assert finish[1] - finish[0] > 0.01

    def test_fixed_executor_is_parallel(self):
        sim = Simulator()
        executor = FixedLatencyExecutor(base=0.02, per_item=0.01)
        finish = []

        def validation():
            yield from executor.run(sim, judged=1)
            finish.append(sim.now)

        for _ in range(3):
            sim.process(validation())
        sim.run()
        assert finish == [pytest.approx(0.03)] * 3


class TestEndToEndColocationPath:
    def test_engine_judging_queues_behind_agent_burst(self):
        """A burst of agent inference delays (but never starves) validation."""
        from repro.core import AsteriaConfig, Query
        from repro.factory import build_asteria_engine, build_remote

        sim = Simulator()
        _, scheduler = colocated(sim, agent_slots=1)
        executor = PartitionJudgeExecutor(scheduler)
        engine = build_asteria_engine(
            build_remote(), AsteriaConfig(), seed=1, judge_executor=executor
        )
        warm = sim.process(
            engine.process(sim, Query("height of everest", fact_id="F"))
        )
        sim.run()

        responses = []

        def agent_step():
            yield from scheduler.submit_agent(0.6)

        def lookup():
            yield sim.timeout(0.01)  # arrive while the burst is queued
            response = yield from engine.process(
                sim, Query("everest height ok", fact_id="F")
            )
            responses.append(response)

        # Concurrent submissions: one runs, two wait in Q_A -> deferral.
        for _ in range(3):
            sim.process(agent_step())
        sim.process(lookup())
        sim.run()
        (response,) = responses
        assert response.served_from_cache
        # Validation was deferred behind ~3 agent steps, far beyond the
        # uncontended 0.03 s judging cost.
        assert response.latency > 1.0
