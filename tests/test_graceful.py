"""Graceful early stop of the load loops (satellite).

Every stress/serve entry point can be interrupted by SIGINT/SIGTERM; the
CLI wires those signals to the ``stop`` events tested here. The contract:
setting ``stop`` ends the loop early, in-flight work completes, and the
returned report covers exactly the requests that actually ran — so the
benchmark/metrics artifacts written afterwards are complete and honest.
"""

import asyncio
import threading

from repro.core import Query
from repro.factory import (
    build_async_engine,
    build_concurrent_engine,
    build_remote,
)
from repro.serving.aio import run_closed_loop, run_open_loop


def _queries(n):
    return [
        Query(f"stoppable fact number {i % 12} of the universe", fact_id=f"F{i % 12}")
        for i in range(n)
    ]


def test_thread_closed_loop_stops_early_and_reports_partial_run():
    engine = build_concurrent_engine(
        build_remote(seed=0), seed=0, shards=2, workers=2, io_pause_scale=0.01
    )
    stop = threading.Event()
    n = 400

    def tripwire():
        # Fires from another thread mid-run, like a signal handler would.
        stop.set()

    timer = threading.Timer(0.05, tripwire)
    timer.start()
    try:
        with engine:
            report = engine.run_closed_loop(_queries(n), time_step=0.01, stop=stop)
    finally:
        timer.cancel()
    assert stop.is_set()
    assert 0 < report.requests < n
    # The report is internally consistent for the partial run.
    assert report.hits + report.misses == report.requests
    assert engine.metrics.requests == report.requests


def test_thread_closed_loop_without_stop_is_unchanged():
    engine = build_concurrent_engine(build_remote(seed=0), seed=0, shards=2, workers=2)
    with engine:
        report = engine.run_closed_loop(_queries(50), time_step=0.01)
    assert report.requests == 50


def test_async_open_loop_stops_early_but_gathers_in_flight():
    engine = build_async_engine(build_remote(seed=0), seed=0, io_pause_scale=0.01)
    n = 500

    async def drive():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.call_later(0.05, stop.set)
        return await run_open_loop(
            engine, _queries(n), rate=1000.0, time_step=0.01, stop=stop
        )

    report = asyncio.run(drive())
    assert 0 < report.requests < n
    assert report.completed == report.requests  # nothing launched was dropped
    assert engine.metrics.requests == report.requests


def test_async_closed_loop_stops_early():
    engine = build_async_engine(build_remote(seed=0), seed=0, io_pause_scale=0.05)
    n = 4000

    async def drive():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.call_later(0.05, stop.set)
        return await run_closed_loop(
            engine, _queries(n), concurrency=4, time_step=0.01, stop=stop
        )

    report = asyncio.run(drive())
    assert 0 < report.requests < n
    assert engine.metrics.requests == report.requests


def test_async_open_loop_stop_never_set_is_unchanged():
    engine = build_async_engine(build_remote(seed=0), seed=0)

    async def drive():
        return await run_open_loop(
            engine, _queries(60), rate=5000.0, time_step=0.01, stop=asyncio.Event()
        )

    report = asyncio.run(drive())
    assert report.requests == 60
