"""Tests for the tagged-output parser (Figure 1b format)."""

import pytest

from repro.agent import Block, extract_blocks, first_block, format_block, tool_calls
from repro.agent.parser import TagFormatError

EXAMPLE = (
    "<think> I need to find out who painted the Mona Lisa. </think>\n"
    "<search> who painted the Mona Lisa? </search>\n"
    "<info> The Mona Lisa was painted by Leonardo da Vinci. </info>\n"
    "<answer> Leonardo da Vinci </answer>"
)


class TestExtractBlocks:
    def test_parses_the_paper_example(self):
        blocks = extract_blocks(EXAMPLE)
        assert [block.tag for block in blocks] == [
            "think", "search", "info", "answer",
        ]
        assert blocks[1].content == "who painted the Mona Lisa?"

    def test_content_stripped(self):
        blocks = extract_blocks("<think>   padded   </think>")
        assert blocks[0].content == "padded"

    def test_text_between_blocks_ignored(self):
        blocks = extract_blocks("noise <think> a </think> more noise <info> b </info>")
        assert len(blocks) == 2

    def test_empty_input(self):
        assert extract_blocks("") == []

    def test_unknown_tag_rejected(self):
        with pytest.raises(TagFormatError):
            extract_blocks("<magic> x </magic>")

    def test_nested_tags_rejected(self):
        with pytest.raises(TagFormatError):
            extract_blocks("<think> <search> q </search> </think>")

    def test_unclosed_tag_rejected(self):
        with pytest.raises(TagFormatError):
            extract_blocks("<think> never closed")

    def test_unmatched_close_rejected(self):
        with pytest.raises(TagFormatError):
            extract_blocks("stray </think>")

    def test_interleaved_close_rejected(self):
        with pytest.raises(TagFormatError):
            extract_blocks("<think> a </search>")

    def test_multiline_content(self):
        blocks = extract_blocks("<info> line one\nline two </info>")
        assert "line one\nline two" == blocks[0].content


class TestHelpers:
    def test_format_block_roundtrips(self):
        text = format_block("search", "height of everest")
        assert extract_blocks(text) == [
            Block(tag="search", content="height of everest")
        ]

    def test_format_unknown_tag_rejected(self):
        with pytest.raises(TagFormatError):
            format_block("bogus", "x")

    def test_first_block(self):
        assert first_block(EXAMPLE, "answer") == "Leonardo da Vinci"
        assert first_block(EXAMPLE, "tool") is None

    def test_tool_calls_filters_action_tags(self):
        text = EXAMPLE + "\n<file> src/core.py </file>"
        calls = tool_calls(text)
        assert [call.tag for call in calls] == ["search", "file"]
