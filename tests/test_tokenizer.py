"""Tests for the tokenizer and light stemmer."""

import pytest

from repro.embedding import STOPWORDS, SimpleTokenizer
from repro.embedding.tokenizer import light_stem


class TestLightStem:
    def test_merges_common_inflections(self):
        assert light_stem("painted") == light_stem("painter")
        assert light_stem("running") == light_stem("runs")

    def test_short_tokens_untouched(self):
        assert light_stem("is") == "is"
        assert light_stem("bed") == "bed"

    def test_never_produces_tiny_stems(self):
        # "used" - "ed" would leave "us" (2 chars) — must stay intact.
        assert light_stem("used") == "used"

    def test_numbers_untouched(self):
        assert light_stem("2018") == "2018"


class TestSimpleTokenizer:
    def test_lowercases_and_splits(self):
        tokenizer = SimpleTokenizer(stem=False)
        assert tokenizer.tokenize("Who Painted THE Mona-Lisa?") == [
            "who", "painted", "the", "mona", "lisa",
        ]

    def test_stemming_applied_to_content_words(self):
        tokenizer = SimpleTokenizer()
        assert "paint" in tokenizer.tokenize("painted")

    def test_stopwords_not_stemmed(self):
        tokenizer = SimpleTokenizer()
        # "does" is a stopword and must not become "do" via stemming.
        assert "does" in tokenizer.tokenize("does it work")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            SimpleTokenizer().tokenize(42)  # type: ignore[arg-type]

    def test_empty_string_gives_no_tokens(self):
        assert SimpleTokenizer().tokenize("") == []

    def test_content_tokens_drop_stopwords(self):
        tokenizer = SimpleTokenizer()
        tokens = tokenizer.content_tokens("who painted the mona lisa")
        assert "who" not in tokens and "the" not in tokens
        assert "mona" in tokens and "lisa" in tokens

    def test_is_stopword(self):
        tokenizer = SimpleTokenizer()
        assert tokenizer.is_stopword("the")
        assert not tokenizer.is_stopword("everest")

    def test_custom_stopwords(self):
        tokenizer = SimpleTokenizer(stopwords={"foo"})
        assert tokenizer.is_stopword("foo")
        assert not tokenizer.is_stopword("the")

    def test_bigrams(self):
        tokenizer = SimpleTokenizer()
        assert tokenizer.bigrams(["a", "b", "c"]) == ["a_b", "b_c"]

    def test_bigrams_of_single_token_empty(self):
        assert SimpleTokenizer().bigrams(["solo"]) == []


class TestStopwordList:
    def test_interjections_are_stopwords(self):
        for word in ("ok", "hey", "well", "um", "now"):
            assert word in STOPWORDS

    def test_query_filler_verbs_are_stopwords(self):
        for word in ("tell", "know", "find", "give", "show"):
            assert word in STOPWORDS
