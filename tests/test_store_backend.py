"""Tests for the pluggable cache-backend layer (`repro.store.backend`).

Three things matter here: every backend honours the same protocol
contract; every serving engine constructs its cache *through* a backend;
and swapping the backend changes zero cache decisions — the file-backed
store replays the default in-process store decision for decision on a
pinned trace.
"""

import asyncio

import numpy as np
import pytest

from repro.ann import FlatIndex
from repro.core import AsteriaCache, Query, Sine
from repro.core.config import AsteriaConfig
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.factory import (
    build_asteria_engine,
    build_async_engine,
    build_backend,
    build_concurrent_engine,
    build_remote,
)
from repro.judger import SimulatedJudger
from repro.store import (
    CacheBackend,
    DELETE_REASONS,
    FileStoreBackend,
    InProcessBackend,
    SimulatedRemoteStore,
    WrappingBackend,
)

SEED = 3
N_QUERIES = 180
POPULATION = 40
CONFIG = AsteriaConfig(capacity_items=24)


def fetch(result="answer"):
    return FetchResult(
        result=result, latency=0.4, service_latency=0.4, cost=0.005,
        size_tokens=16,
    )


def make_cache(backend=None, capacity=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    return AsteriaCache(
        sine, capacity_items=capacity, default_ttl=3600.0, backend=backend
    )


def backend_cases(tmp_path):
    return [
        InProcessBackend(),
        FileStoreBackend(tmp_path / "filestore"),
        SimulatedRemoteStore(InProcessBackend()),
    ]


class TestProtocolConformance:
    def test_backends_satisfy_protocol(self, tmp_path):
        for backend in backend_cases(tmp_path):
            assert isinstance(backend, CacheBackend), backend

    def test_basic_lifecycle_through_cache(self, tmp_path):
        for backend in backend_cases(tmp_path):
            cache = make_cache(backend=backend)
            element = cache.insert(
                Query("who painted the mona lisa", fact_id="F"), fetch(), 0.0
            )
            assert cache.backend.get(element.element_id) is element
            assert element.element_id in cache.elements
            assert list(cache.backend.scan()) == [element]
            result = cache.lookup(Query("mona lisa painter", fact_id="F"), 1.0)
            assert result.match is not None
            removed = cache.remove(element.element_id)
            assert removed is element
            assert len(cache) == 0

    def test_delete_reasons_are_tallied(self, tmp_path):
        for backend in backend_cases(tmp_path):
            cache = make_cache(backend=backend, capacity=2)
            for index in range(3):
                cache.insert(
                    Query(f"distinct topic {index} walrus", fact_id=f"F{index}"),
                    fetch(),
                    float(index),
                )
            cache.invalidate(lambda element: True)
            stats = cache.backend.stats()
            reasons = stats["deletes_by_reason"]
            assert set(reasons) <= set(DELETE_REASONS)
            assert reasons.get("evict", 0) == 1
            assert reasons.get("invalidate", 0) == 2
            assert stats["deletes"] == 3

    def test_arena_slot_released_on_delete(self):
        engine = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
        cache = engine.cache
        assert cache.arena is not None
        element = cache.insert(Query("topic one", fact_id="F"), fetch(), 0.0)
        assert element.arena_slot is not None
        in_use = len(cache.arena)
        cache.remove(element.element_id)
        assert element.arena_slot is None
        assert len(cache.arena) == in_use - 1

    def test_wrapping_backend_unwraps_to_innermost(self):
        inner = InProcessBackend()
        wrapped = SimulatedRemoteStore(SimulatedRemoteStore(inner))
        assert wrapped.unwrap() is inner
        assert isinstance(wrapped, WrappingBackend)

    def test_wrap_backend_mid_life_keeps_contents(self):
        cache = make_cache()
        cache.insert(Query("topic one", fact_id="F"), fetch(), 0.0)
        remote = cache.wrap_backend(lambda inner: SimulatedRemoteStore(inner))
        assert cache.backend is remote
        assert len(cache) == 1
        cache.insert(Query("topic two", fact_id="G"), fetch(), 1.0)
        assert remote.remote_ops > 0

    def test_backend_and_arena_are_exclusive(self):
        from repro.core.arena import EmbeddingArena

        embedder = HashingEmbedder(seed=7)
        sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
        with pytest.raises(ValueError):
            AsteriaCache(
                sine,
                arena=EmbeddingArena(embedder.dim),
                backend=InProcessBackend(),
            )

    def test_build_backend_resolver(self, tmp_path):
        assert build_backend(None) is None
        assert build_backend("inprocess") is None
        store = build_backend("filestore", backend_dir=tmp_path / "fs")
        assert isinstance(store, FileStoreBackend)
        with pytest.raises(ValueError):
            build_backend("filestore")
        with pytest.raises(ValueError):
            build_backend("riak")
        custom = build_backend(lambda arena: InProcessBackend(arena=arena))
        assert isinstance(custom, InProcessBackend)


class TestEngineConstruction:
    """All four engines build their caches through a CacheBackend."""

    def test_sync_engine(self):
        engine = build_asteria_engine(build_remote(seed=SEED), seed=SEED)
        assert isinstance(engine.cache.backend, CacheBackend)

    def test_thread_engine(self):
        engine = build_concurrent_engine(
            build_remote(seed=SEED), seed=SEED, shards=2, workers=2
        )
        with engine:
            for shard in engine.cache.shards:
                assert isinstance(shard.backend, CacheBackend)

    def test_async_engine(self):
        engine = build_async_engine(build_remote(seed=SEED), seed=SEED, shards=2)
        for shard in engine.cache.shards:
            assert isinstance(shard.backend, CacheBackend)

    def test_proc_shard_server(self):
        # The worker side of the proc tier, exercised in-process: the shard
        # cache a spawned worker builds goes through the same factory path.
        from repro.serving.proc.worker import WorkerSpec, _ShardServer

        server = _ShardServer(WorkerSpec(shard_id=0, n_shards=1, seed=SEED))
        assert isinstance(server.cache.backend, CacheBackend)


def _trace():
    rng = np.random.default_rng(SEED)
    ranks = np.minimum(rng.zipf(1.2, size=N_QUERIES), POPULATION)
    return [
        Query(f"pinned fact number {rank} of the corpus", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _run(backend=None, backend_dir=None):
    engine = build_asteria_engine(
        build_remote(seed=SEED),
        config=CONFIG,
        seed=SEED,
        backend=backend,
        backend_dir=backend_dir,
    )
    responses = [
        engine.handle(query, now=i * 0.01) for i, query in enumerate(_trace())
    ]
    return engine, responses


class TestDecisionEquivalence:
    def test_filestore_replays_inprocess_decisions_exactly(self, tmp_path):
        """Swapping the element store must change zero cache decisions."""
        base_engine, base_responses = _run()
        file_engine, file_responses = _run(
            backend="filestore", backend_dir=tmp_path / "store"
        )
        for base, mirrored in zip(base_responses, file_responses):
            assert mirrored.result == base.result
            assert mirrored.latency == base.latency
            assert (mirrored.fetch is None) == (base.fetch is None)
        assert file_engine.metrics.summary() == base_engine.metrics.summary()
        base_stats, file_stats = base_engine.cache.stats, file_engine.cache.stats
        assert file_stats.inserts == base_stats.inserts
        assert file_stats.evictions == base_stats.evictions
        assert file_stats.expirations == base_stats.expirations
        assert base_stats.evictions > 0  # the trace forced the policy to act
        assert sorted(file_engine.cache.elements) == sorted(
            base_engine.cache.elements
        )
        # And the mirror really is on disk: one file per live element.
        backend = file_engine.cache.backend.unwrap() if hasattr(
            file_engine.cache.backend, "unwrap"
        ) else file_engine.cache.backend
        assert isinstance(backend, FileStoreBackend)
        stored = backend.stored_records()
        assert len(stored) == len(file_engine.cache)

    def test_async_engine_runs_over_filestore(self, tmp_path):
        engine = build_async_engine(
            build_remote(seed=SEED),
            seed=SEED,
            shards=1,
            backend="filestore",
            backend_dir=tmp_path / "aio",
        )

        async def drive():
            queries = _trace()[:40]
            return [
                await engine.serve(query, now=i * 0.01)
                for i, query in enumerate(queries)
            ]

        outcomes = asyncio.run(drive())
        assert all(outcome.ok for outcome in outcomes)
        assert engine.metrics.hits > 0
