"""The TCP front door end to end: ProcServer + ProcClient over a real socket.

Boots the server on an ephemeral port inside the test's event loop, drives
an open-loop client workload through real frames, checks every request is
served, then exercises health/metrics/ping and the graceful drain.
"""

import asyncio

import pytest

from repro.core import Query
from repro.factory import build_proc_engine, build_remote
from repro.serving.proc.client import (
    ProcClient,
    ProcClientError,
    run_open_loop_socket,
)
from repro.serving.proc.server import ProcServer


def _queries(n, population=8):
    return [
        Query(f"served fact number {i % population} of the universe", fact_id=f"F{i % population}")
        for i in range(n)
    ]


def _server(workers=2, **engine_kwargs):
    engine = build_proc_engine(
        build_remote(seed=0), seed=0, workers=workers, **engine_kwargs
    )
    return ProcServer(engine, host="127.0.0.1", port=0)


def test_server_serves_open_loop_workload_fully():
    server = _server()

    async def drive():
        await server.start()
        client = await ProcClient.connect("127.0.0.1", server.port)
        try:
            report = await run_open_loop_socket(
                client, _queries(80), rate=2000.0, time_step=0.01
            )
            health = await client.health()
            metrics = await client.metrics()
            assert await client.ping() == "pong"
        finally:
            await client.aclose()
            await server.shutdown()
        return report, health, metrics

    report, health, metrics = asyncio.run(drive())
    assert report["requests"] == 80
    assert report["served_fraction"] == 1.0
    assert report["statuses"] == {"ok": 80}
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert metrics["requests"] == 80
    assert metrics["hits"] + metrics["misses"] == 80
    assert server.requests_served == 80


def test_server_pipelines_many_clients():
    server = _server()

    async def drive():
        await server.start()
        clients = [
            await ProcClient.connect("127.0.0.1", server.port) for _ in range(3)
        ]
        try:
            outcomes = await asyncio.gather(
                *(
                    client.serve(query, now=i * 0.01)
                    for i, (client, query) in enumerate(
                        zip(clients * 10, _queries(30))
                    )
                )
            )
        finally:
            for client in clients:
                await client.aclose()
            await server.shutdown()
        return outcomes

    outcomes = asyncio.run(drive())
    assert len(outcomes) == 30
    assert all(outcome["status"] == "ok" for outcome in outcomes)
    assert all(outcome["result"] for outcome in outcomes)


def test_server_reports_unknown_op_without_desync():
    server = _server(workers=1)

    async def drive():
        await server.start()
        client = await ProcClient.connect("127.0.0.1", server.port)
        try:
            with pytest.raises(ProcClientError):
                await client.call("explode")
            # The connection is still healthy for the next request.
            assert await client.ping() == "pong"
        finally:
            await client.aclose()
            await server.shutdown()

    asyncio.run(drive())


def test_request_stop_drains_in_flight_requests():
    server = _server(io_pause_scale=0.05)

    async def drive():
        await server.start()
        client = await ProcClient.connect("127.0.0.1", server.port)
        tasks = [
            asyncio.ensure_future(client.serve(query, now=0.0))
            for query in _queries(6, population=6)
        ]
        await asyncio.sleep(0.01)  # requests are on the wire, fetches pending
        server.request_stop()
        run_task = asyncio.ensure_future(server.shutdown())
        outcomes = await asyncio.gather(*tasks)
        await run_task
        await client.aclose()
        return outcomes

    outcomes = asyncio.run(drive())
    # Every request that reached the server before the stop was answered.
    assert len(outcomes) == 6
    assert all(outcome["status"] == "ok" for outcome in outcomes)
    assert not server.engine.pool.processes
