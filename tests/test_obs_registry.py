"""Tests for :mod:`repro.obs.registry` (counters, gauges, histograms,
Prometheus exposition) and the breaker wiring in :mod:`repro.obs.bridge`."""

import pytest

from repro.core.resilience import CircuitBreaker
from repro.obs import EngineInstrument, MetricsRegistry
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)


class TestCounter:
    def test_inc_accumulates_per_labelset(self):
        counter = Counter("requests_total")
        counter.inc(engine="sync", status="hit")
        counter.inc(2, engine="sync", status="hit")
        counter.inc(engine="sync", status="miss")
        assert counter.value(engine="sync", status="hit") == 3
        assert counter.value(engine="sync", status="miss") == 1
        assert counter.value(engine="async", status="hit") == 0

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)

    def test_set_total_is_monotone(self):
        counter = Counter("c_total")
        counter.set_total(5, engine="sync")
        counter.set_total(5, engine="sync")  # equal is fine
        counter.set_total(9, engine="sync")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.set_total(3, engine="sync")
        assert counter.value(engine="sync") == 9

    def test_label_order_is_canonical(self):
        counter = Counter("c_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(4, engine="sync")
        gauge.inc(engine="sync")
        gauge.dec(2, engine="sync")
        assert gauge.value(engine="sync") == 3

    def test_gauges_may_go_negative(self):
        gauge = Gauge("delta")
        gauge.dec(5)
        assert gauge.value() == -5


class TestHistogram:
    def test_observe_counts_and_sums(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_negative_sample_rejected(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError, match=">= 0"):
            hist.observe(-0.1)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        # All mass in the (1, 2] bucket: any percentile lands inside it.
        assert 1.0 <= hist.percentile(50) <= 2.0
        assert 1.0 <= hist.percentile(99) <= 2.0

    def test_percentile_bounds_and_validation(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        assert hist.percentile(99) == 0.0  # empty
        hist.observe(10.0)  # +Inf bucket
        assert hist.percentile(99) == 2.0  # clamps to last finite bound
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(101)

    def test_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError, match="> 0"):
            Histogram("lat", buckets=(0.0, 1.0))
        with pytest.raises(ValueError, match="distinct"):
            Histogram("lat", buckets=(1.0, 1.0))

    def test_load_samples_reports_exact_totals(self):
        """Mirroring a subsampled reservoir must keep _count/_sum exact."""
        hist = Histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        hist.load_samples(
            [0.01, 0.02, 0.03], total_count=3000, total_sum=60.0, kind="total"
        )
        assert hist.count(kind="total") == 3000
        assert hist.sum(kind="total") == 60.0
        rendered = "\n".join(hist.render())
        assert 'lat_count{kind="total"} 3000' in rendered
        assert 'lat_sum{kind="total"} 60' in rendered

    def test_render_emits_cumulative_buckets_and_inf(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        lines = hist.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines


class TestExposition:
    def test_render_full_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_lookups_total", "Lookups.").inc(
            engine="sync", status="hit"
        )
        registry.gauge("repro_hit_rate", "Hit rate.").set(0.75, engine="sync")
        text = registry.render()
        assert "# HELP repro_lookups_total Lookups." in text
        assert "# TYPE repro_lookups_total counter" in text
        assert 'repro_lookups_total{engine="sync",status="hit"} 1' in text
        assert "# TYPE repro_hit_rate gauge" in text
        assert 'repro_hit_rate{engine="sync"} 0.75' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        counter = Counter("c_total")
        counter.inc(path='a"b\\c\nd')
        (line,) = [l for l in counter.render() if not l.startswith("#")]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="metric name"):
            Counter("9bad")
        counter = Counter("ok_total")
        with pytest.raises(ValueError, match="label name"):
            counter.inc(**{"bad-label": "x"})

    def test_values_flattens_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(engine="sync")
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5, engine="sync")
        values = registry.values()
        assert values['c_total{engine="sync"}'] == 1
        assert values['lat_count{engine="sync"}'] == 1
        assert 'lat_p99{engine="sync"}' in values


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_get_returns_registered_or_none(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        assert registry.get("g") is gauge
        assert registry.get("missing") is None


class TestBreakerWiring:
    """Satellite: breaker state into the registry as a gauge plus a
    transition-event counter, with a deterministic fault script reproducing
    the exact transition sequence."""

    def _script(self, breaker: CircuitBreaker) -> None:
        """closed -> open -> half_open -> open -> half_open -> closed."""
        assert breaker.allow(0.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)  # trips: 2/2 failures >= 0.5 threshold
        assert not breaker.allow(2.5)  # refused while open
        assert breaker.allow(8.0)  # cooldown passed: half_open probe
        breaker.record_failure(8.5)  # probe fails: re-opens
        assert breaker.allow(15.0)  # half_open again
        breaker.record_success(15.5)  # probe succeeds: closes

    EXPECTED = [
        (2.0, "closed", "open"),
        (8.0, "open", "half_open"),
        (8.5, "half_open", "open"),
        (15.0, "open", "half_open"),
        (15.5, "half_open", "closed"),
    ]

    def _breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=0.5,
            window=4,
            min_samples=2,
            open_seconds=5.0,
            half_open_probes=1,
        )

    def test_fault_script_reproduces_exact_transition_sequence(self):
        breaker = self._breaker()
        registry = MetricsRegistry()
        instrument = EngineInstrument(registry, "sync")
        instrument.wire_breaker(breaker)
        self._script(breaker)
        assert list(breaker.transitions) == self.EXPECTED
        transitions = registry.get("repro_breaker_transitions_total")
        assert transitions.value(
            engine="sync", from_state="closed", to_state="open"
        ) == 1
        assert transitions.value(
            engine="sync", from_state="open", to_state="half_open"
        ) == 2
        assert transitions.value(
            engine="sync", from_state="half_open", to_state="open"
        ) == 1
        assert transitions.value(
            engine="sync", from_state="half_open", to_state="closed"
        ) == 1
        # Final state: closed == 0 on the gauge.
        assert registry.get("repro_breaker_state").value(engine="sync") == 0

    def test_gauge_tracks_live_state_changes(self):
        breaker = self._breaker()
        registry = MetricsRegistry()
        EngineInstrument(registry, "sync").wire_breaker(breaker)
        gauge = registry.get("repro_breaker_state")
        assert gauge.value(engine="sync") == 0
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert gauge.value(engine="sync") == 1  # open
        breaker.allow(8.0)
        assert gauge.value(engine="sync") == 2  # half_open

    def test_wiring_after_warmup_replays_history(self):
        breaker = self._breaker()
        self._script(breaker)  # transitions happen before wiring
        registry = MetricsRegistry()
        EngineInstrument(registry, "late").wire_breaker(breaker)
        transitions = registry.get("repro_breaker_transitions_total")
        assert transitions.value(
            engine="late", from_state="open", to_state="half_open"
        ) == 2
        assert registry.get("repro_breaker_state").value(engine="late") == 0

    def test_rerunning_script_doubles_counters_not_state(self):
        breaker = self._breaker()
        registry = MetricsRegistry()
        EngineInstrument(registry, "sync").wire_breaker(breaker)
        self._script(breaker)
        # Shift times so the second pass sees fresh cooldowns.
        assert breaker.allow(20.0)
        breaker.record_failure(21.0)
        breaker.record_failure(22.0)
        transitions = registry.get("repro_breaker_transitions_total")
        assert transitions.value(
            engine="sync", from_state="closed", to_state="open"
        ) == 2
        assert registry.get("repro_breaker_state").value(engine="sync") == 1
