"""Hardening tests for the observability layer: probe failures must not
kill the snapshot recorder, the Prometheus exposition must be byte-stable
(golden file), and exemplars must stay bounded and out of the exposition."""

import time
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, SnapshotRecorder
from repro.obs.registry import Histogram

GOLDEN = Path(__file__).resolve().parent / "data" / "metrics_golden.txt"


class ManualClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestProbeFailureIsolation:
    def test_raising_probe_records_nan_and_counts(self):
        clock = ManualClock()
        recorder = SnapshotRecorder(interval=0.1, clock=clock)
        recorder.add_probe("healthy", lambda: 1.0)
        recorder.add_probe("sick", lambda: 1 / 0)
        for _ in range(3):
            clock.advance(1.0)
            recorder.sample()
        # The healthy series is untouched; the sick one records nan.
        assert recorder.series("healthy") == [1.0, 1.0, 1.0]
        assert all(v != v for v in recorder.series("sick"))
        assert recorder.probe_errors == 3

    def test_probe_errors_surface_as_a_series_only_after_a_failure(self):
        clock = ManualClock()
        recorder = SnapshotRecorder(interval=0.1, clock=clock)
        recorder.add_probe("healthy", lambda: 1.0)
        clock.advance(1.0)
        recorder.sample()
        # Healthy runs keep their exact series set: no error series.
        assert "snapshot_probe_errors" not in recorder.names()
        recorder.add_probe("sick", lambda: 1 / 0)
        clock.advance(1.0)
        recorder.sample()
        assert recorder.to_dict()["series"]["snapshot_probe_errors"][-1] == 1.0
        assert recorder.to_dict()["probe_errors"] == 1

    def test_background_thread_survives_raising_probe(self):
        # The regression this guards: before the per-probe try/except, one
        # raising probe killed the daemon thread and silently ended the
        # run's series. Now it records nan every interval and keeps going.
        recorder = SnapshotRecorder(interval=0.01)
        recorder.add_probe("sick", lambda: 1 / 0)
        recorder.add_probe("healthy", lambda: 1.0)
        recorder.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(recorder) < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            recorder.stop()
        assert len(recorder) >= 5
        assert recorder.probe_errors >= 5
        healthy = [v for v in recorder.series("healthy") if v == v]
        assert healthy and all(v == 1.0 for v in healthy)


def build_registry() -> MetricsRegistry:
    """A small, fully deterministic registry for the golden-file check."""
    registry = MetricsRegistry()
    lookups = registry.counter(
        "repro_lookups_total", "Cache lookups by status (hit/miss/bypass)."
    )
    lookups.inc(7, engine="sync", status="hit")
    lookups.inc(3, engine="sync", status="miss")
    lookups.inc(2, engine='q"uoted\\', status="hit")  # escaping path
    occupancy = registry.gauge("repro_cache_occupancy", "Live elements in the cache.")
    occupancy.set(42, engine="sync")
    latency = registry.histogram(
        "repro_request_latency_seconds",
        "Request latency split by kind (simulated seconds).",
        buckets=(0.1, 0.5, 1.0),
    )
    for value in (0.05, 0.3, 0.3, 0.7, 2.5):
        latency.observe(value, engine="sync", kind="total")
    # Exemplars must never perturb the exposition (asserted below).
    latency.add_exemplar(0.7, 12345, engine="sync", kind="total")
    return registry


class TestExpositionGolden:
    def test_render_matches_golden_file(self):
        # Byte-for-byte against the checked-in exposition: scrape output is
        # an interface, and accidental reordering or float-format drift
        # should fail loudly. Regenerate with:
        #   PYTHONPATH=src:tests python -c "from test_obs_hardening import \
        #     build_registry; print(build_registry().render(), end='')" \
        #     > tests/data/metrics_golden.txt
        assert build_registry().render() == GOLDEN.read_text()

    def test_render_is_deterministic_across_construction_order(self):
        baseline = build_registry().render()
        registry = MetricsRegistry()
        # Same state, reversed registration and update order.
        latency = registry.histogram(
            "repro_request_latency_seconds",
            "Request latency split by kind (simulated seconds).",
            buckets=(1.0, 0.5, 0.1),
        )
        for value in (2.5, 0.7, 0.3, 0.3, 0.05):
            latency.observe(value, engine="sync", kind="total")
        registry.gauge("repro_cache_occupancy", "Live elements in the cache.").set(
            42, engine="sync"
        )
        lookups = registry.counter(
            "repro_lookups_total", "Cache lookups by status (hit/miss/bypass)."
        )
        lookups.inc(2, status="hit", engine='q"uoted\\')
        lookups.inc(3, status="miss", engine="sync")
        lookups.inc(7, status="hit", engine="sync")
        assert registry.render() == baseline


class TestExemplars:
    def test_bounded_recent_wins(self):
        hist = Histogram("lat", buckets=(1.0,))
        for i in range(Histogram.max_exemplars + 10):
            hist.add_exemplar(0.5, i, engine="sync")
        rows = hist.exemplars(engine="sync")
        assert len(rows) == Histogram.max_exemplars
        assert rows[-1][1] == Histogram.max_exemplars + 9  # newest kept
        assert rows[0][1] == 10  # oldest rolled off

    def test_bucket_index_and_label_isolation(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        hist.add_exemplar(0.05, 1, engine="sync")
        hist.add_exemplar(0.5, 2, engine="sync")
        hist.add_exemplar(5.0, 3, engine="sync")
        assert [row[2] for row in hist.exemplars(engine="sync")] == [0, 1, 2]
        assert hist.exemplars(engine="async") == []

    def test_negative_value_rejected(self):
        hist = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError, match=">= 0"):
            hist.add_exemplar(-0.1, 1)

    def test_exemplars_do_not_leak_into_render_or_values(self):
        hist = Histogram("lat", buckets=(1.0,))
        hist.observe(0.5, engine="sync")
        before_render = hist.render()
        before_values = hist.values()
        hist.add_exemplar(0.5, 987654321, engine="sync")
        assert hist.render() == before_render
        assert hist.values() == before_values
        assert "987654321" not in "\n".join(hist.render())
