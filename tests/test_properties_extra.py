"""Second round of property-based tests: parser, HNSW, paraphraser, kernel."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agent.parser import ACTION_TAGS, KNOWN_TAGS, extract_blocks, format_block
from repro.ann import FlatIndex, HNSWIndex
from repro.embedding import HashingEmbedder, cosine_similarity
from repro.sim import Simulator
from repro.workloads import Paraphraser

COMMON_SETTINGS = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

# Content text that cannot collide with tag syntax.
_content = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="<>"),
    min_size=0,
    max_size=40,
)


@COMMON_SETTINGS
@given(st.lists(st.tuples(st.sampled_from(KNOWN_TAGS), _content), max_size=10))
def test_parser_roundtrips_any_block_sequence(blocks):
    text = "\n".join(format_block(tag, content) for tag, content in blocks)
    parsed = extract_blocks(text)
    assert [block.tag for block in parsed] == [tag for tag, _ in blocks]
    for block, (_, content) in zip(parsed, blocks):
        assert block.content == content.strip()


@COMMON_SETTINGS
@given(st.lists(st.tuples(st.sampled_from(KNOWN_TAGS), _content), max_size=8))
def test_parser_action_filter_consistent(blocks):
    from repro.agent.parser import tool_calls

    text = " ".join(format_block(tag, content) for tag, content in blocks)
    actions = tool_calls(text)
    expected = [tag for tag, _ in blocks if tag in ACTION_TAGS]
    assert [block.tag for block in actions] == expected


@COMMON_SETTINGS
@given(st.data())
def test_hnsw_top1_is_exact_for_self_queries(data):
    """Searching with a stored vector must return that vector first."""
    seed = data.draw(st.integers(0, 2**31))
    count = data.draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((count, 16)).astype(np.float32)
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    index = HNSWIndex(16, seed=seed, ef_search=32)
    for key, vector in enumerate(vectors):
        index.add(key, vector)
    probe = data.draw(st.integers(min_value=0, max_value=count - 1))
    hits = index.search(vectors[probe], k=1)
    assert hits[0].score == pytest.approx(1.0, abs=1e-5)


@COMMON_SETTINGS
@given(st.data())
def test_hnsw_recall_at_10_reasonable(data):
    seed = data.draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((120, 16)).astype(np.float32)
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    hnsw = HNSWIndex(16, seed=seed, ef_search=48)
    flat = FlatIndex(16)
    for key, vector in enumerate(vectors):
        hnsw.add(key, vector)
        flat.add(key, vector)
    query = rng.standard_normal(16).astype(np.float32)
    truth = {hit.key for hit in flat.search(query, 10)}
    got = {hit.key for hit in hnsw.search(query, 10)}
    assert len(truth & got) >= 7


@COMMON_SETTINGS
@given(
    core=st.lists(
        st.sampled_from(
            "everest amazon tesla picasso insulin mortgage festival helix".split()
        ),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    variant_a=st.integers(0, 111),
    variant_b=st.integers(0, 111),
)
def test_paraphrase_pairs_always_clear_coarse_filter(core, variant_a, variant_b):
    """Any two variants of the same core embed above tau_sim = 0.7."""
    paraphraser = Paraphraser()
    embedder = HashingEmbedder(seed=7)
    text = " ".join(core)
    a = embedder.embed(paraphraser.phrase(text, variant_a))
    b = embedder.embed(paraphraser.phrase(text, variant_b))
    assert cosine_similarity(a, b) > 0.7


@COMMON_SETTINGS
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_kernel_fires_all_timeouts_in_order(delays):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert sim.now == pytest.approx(max(delays))


@COMMON_SETTINGS
@given(
    texts=st.lists(
        st.text(alphabet=st.characters(codec="ascii"), min_size=1, max_size=30),
        min_size=1,
        max_size=20,
    )
)
def test_embedding_batch_matches_singles(texts):
    embedder = HashingEmbedder(seed=3, dim=32)
    batch = embedder.embed_batch(texts)
    for row, text in zip(batch, texts):
        assert np.allclose(row, embedder.embed(text))
