"""Tests for cost accounting."""

import pytest

from repro.network import CostMeter, PRICE_GOOGLE_SEARCH_PER_CALL, PRICE_H100_PER_HOUR


class TestCostMeter:
    def test_api_charges_accumulate(self):
        meter = CostMeter()
        meter.charge_api_call(0.005)
        meter.charge_api_call(0.010, tool="web")
        assert meter.api_cost == pytest.approx(0.015)
        assert meter.api_calls == 2

    def test_by_tool_breakdown(self):
        meter = CostMeter()
        meter.charge_api_call(0.005, tool="search")
        meter.charge_api_call(0.005, tool="search")
        meter.charge_api_call(0.010, tool="rag")
        breakdown = meter.by_tool()
        assert breakdown["search"] == pytest.approx(0.010)
        assert breakdown["rag"] == pytest.approx(0.010)

    def test_gpu_cost_uses_hourly_rate(self):
        meter = CostMeter(gpu_hourly_rate=1.49)
        meter.charge_gpu_time(3600.0)
        assert meter.gpu_cost == pytest.approx(1.49)

    def test_total_combines_api_and_gpu(self):
        meter = CostMeter(gpu_hourly_rate=1.0)
        meter.charge_api_call(1.0)
        meter.charge_gpu_time(1800.0)
        assert meter.total_cost == pytest.approx(1.5)

    def test_merge(self):
        a = CostMeter()
        a.charge_api_call(0.005, tool="search")
        a.charge_gpu_time(60.0)
        b = CostMeter()
        b.charge_api_call(0.010, tool="rag")
        a.merge(b)
        assert a.api_calls == 2
        assert a.by_tool() == {"search": 0.005, "rag": 0.010}

    def test_negative_charges_rejected(self):
        meter = CostMeter()
        with pytest.raises(ValueError):
            meter.charge_api_call(-0.01)
        with pytest.raises(ValueError):
            meter.charge_gpu_time(-1.0)

    def test_paper_constants(self):
        # Table 1 / §2.2 figures used throughout the cost analysis.
        assert PRICE_GOOGLE_SEARCH_PER_CALL == 0.005
        assert PRICE_H100_PER_HOUR == 1.49
