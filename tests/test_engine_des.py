"""Tests for engines in discrete-event (process) mode."""

import pytest

from repro.ann import FlatIndex
from repro.core import (
    AsteriaCache,
    AsteriaConfig,
    AsteriaEngine,
    ExactCache,
    ExactEngine,
    Query,
    Sine,
    VanillaEngine,
)
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger
from repro.network import RemoteDataService, TokenBucket
from repro.sim import Simulator


def make_asteria(config=None, rate_limiter=None):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    cache = AsteriaCache(sine, capacity_items=64)
    remote = RemoteDataService(latency=0.4, rate_limiter=rate_limiter)
    return AsteriaEngine(cache, remote, config or AsteriaConfig())


def drive(sim, engine, query):
    """Run one engine.process() to completion; returns the response."""
    process = sim.process(engine.process(sim, query))
    sim.run()
    return process.value


class TestProcessMode:
    def test_vanilla_process_measures_sim_time(self):
        sim = Simulator()
        engine = VanillaEngine(RemoteDataService(latency=0.4))
        response = drive(sim, engine, Query("q"))
        assert response.latency == pytest.approx(0.4)
        assert sim.now == pytest.approx(0.4)

    def test_exact_process_hit_path(self):
        sim = Simulator()
        engine = ExactEngine(ExactCache(), RemoteDataService(latency=0.4))
        drive(sim, engine, Query("same"))
        response = drive(sim, engine, Query("same"))
        assert response.served_from_cache
        assert response.latency == pytest.approx(engine.lookup_latency)

    def test_asteria_process_hit_latency(self):
        sim = Simulator()
        engine = make_asteria()
        drive(sim, engine, Query("who painted the mona lisa", fact_id="F"))
        response = drive(sim, engine, Query("mona lisa painter ok", fact_id="F"))
        assert response.served_from_cache
        assert response.latency == pytest.approx(0.05, abs=1e-6)

    def test_asteria_process_miss_includes_remote(self):
        sim = Simulator()
        engine = make_asteria()
        response = drive(sim, engine, Query("fresh topic", fact_id="F"))
        assert not response.served_from_cache
        assert response.latency > 0.4

    def test_analytic_and_process_agree_on_hit_rate(self):
        queries = [
            Query("who painted the mona lisa", fact_id="F"),
            Query("mona lisa painter ok", fact_id="F"),
            Query("tell me who painted mona lisa", fact_id="F"),
            Query("height of everest", fact_id="G"),
            Query("everest height please", fact_id="G"),
        ]
        analytic = make_asteria()
        now = 0.0
        for query in queries:
            response = analytic.handle(query, now)
            now += response.latency + 0.1
        des = make_asteria()
        sim = Simulator()
        for query in queries:
            drive(sim, des, query)
        assert analytic.metrics.hit_rate == des.metrics.hit_rate

    def test_concurrent_requests_queue_on_rate_limit(self):
        sim = Simulator()
        engine = VanillaEngine(
            RemoteDataService(
                latency=0.4, rate_limiter=TokenBucket(rate=1.0, burst=1)
            )
        )
        responses = []

        def client(index):
            response = yield from engine.process(sim, Query(f"q{index}"))
            responses.append(response)

        for index in range(4):
            sim.process(client(index))
        sim.run()
        # 4 requests through a 1/s bucket: last one waits ~3s.
        assert max(response.latency for response in responses) > 2.0
        assert engine.remote.retries > 0


class TestProcessPrefetch:
    def test_prefetch_is_asynchronous(self):
        config = AsteriaConfig(prefetch_enabled=True, prefetch_confidence=0.5)
        engine = make_asteria(config=config)
        sim = Simulator()
        a = Query("alpha unique topic", fact_id="A")
        b = Query("beta unique topic", fact_id="B")
        for _ in range(2):
            drive(sim, engine, a)
            drive(sim, engine, b)
        for element_id, element in list(engine.cache.elements.items()):
            if element.truth_key == "B":
                engine.cache.remove(element_id)
        start = sim.now
        response = drive(sim, engine, a)
        # The request itself is a fast hit; the prefetch runs in background.
        assert response.served_from_cache
        assert engine.metrics.prefetches_issued >= 1
        assert engine.cache.contains_semantic(b)

    def test_duplicate_inflight_prefetch_suppressed(self):
        config = AsteriaConfig(prefetch_enabled=True, prefetch_confidence=0.5)
        engine = make_asteria(config=config)
        sim = Simulator()
        a = Query("alpha unique topic", fact_id="A")
        b = Query("beta unique topic", fact_id="B")
        for _ in range(2):
            drive(sim, engine, a)
            drive(sim, engine, b)
        for element_id, element in list(engine.cache.elements.items()):
            if element.truth_key == "B":
                engine.cache.remove(element_id)

        def double_trigger():
            first = sim.process(engine.process(sim, a))
            second = sim.process(engine.process(sim, a))
            yield sim.all_of([first, second])

        sim.process(double_trigger())
        sim.run()
        assert engine.metrics.prefetches_issued == 1
