"""Tests for the engines in analytic mode."""

import pytest

from repro.ann import FlatIndex
from repro.core import (
    AsteriaCache,
    AsteriaConfig,
    AsteriaEngine,
    ExactCache,
    ExactEngine,
    Query,
    Sine,
    VanillaEngine,
)
from repro.core.prefetch import MarkovPrefetcher
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger
from repro.network import RemoteDataService


def make_asteria(config=None, **remote_kwargs):
    embedder = HashingEmbedder(seed=7)
    sine = Sine(embedder, FlatIndex(embedder.dim), SimulatedJudger(seed=3))
    cache = AsteriaCache(sine, capacity_items=64)
    remote = RemoteDataService(latency=0.4, **remote_kwargs)
    return AsteriaEngine(cache, remote, config or AsteriaConfig())


class TestVanillaEngine:
    def test_every_request_goes_remote(self):
        engine = VanillaEngine(RemoteDataService(latency=0.4))
        for index in range(5):
            response = engine.handle(Query(f"q{index}"), now=float(index))
            assert response.fetch is not None
        assert engine.remote.calls == 5
        assert engine.metrics.hit_rate == 0.0

    def test_latency_equals_fetch_latency(self):
        engine = VanillaEngine(RemoteDataService(latency=0.4))
        response = engine.handle(Query("q"))
        assert response.latency == pytest.approx(response.fetch.latency)


class TestExactEngine:
    def test_identical_repeat_hits(self):
        engine = ExactEngine(ExactCache(), RemoteDataService(latency=0.4))
        engine.handle(Query("same text"), 0.0)
        response = engine.handle(Query("same text"), 1.0)
        assert response.served_from_cache
        assert response.latency == pytest.approx(engine.lookup_latency)

    def test_paraphrase_misses(self):
        engine = ExactEngine(ExactCache(), RemoteDataService(latency=0.4))
        engine.handle(Query("who painted the mona lisa"), 0.0)
        response = engine.handle(Query("mona lisa painter"), 1.0)
        assert not response.served_from_cache


class TestAsteriaEngineAnalytic:
    def test_miss_then_semantic_hit(self):
        engine = make_asteria()
        first = engine.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        assert not first.served_from_cache
        second = engine.handle(
            Query("tell me who painted mona lisa", fact_id="F"), 2.0
        )
        assert second.served_from_cache
        assert second.result == first.result

    def test_hit_latency_matches_config(self):
        engine = make_asteria()
        engine.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        hit = engine.handle(Query("mona lisa painter ok", fact_id="F"), 2.0)
        assert hit.latency == pytest.approx(
            engine.config.cache_check_latency(hit.lookup.judged)
        )

    def test_miss_latency_includes_cache_check_and_fetch(self):
        engine = make_asteria()
        response = engine.handle(Query("fresh unique topic", fact_id="F"), 0.0)
        assert response.latency == pytest.approx(
            response.lookup.latency + response.fetch.latency
        )

    def test_confusable_miss_preserves_correctness(self):
        engine = make_asteria()
        engine.handle(Query("who won the world cup 2018", fact_id="A"), 0.0)
        response = engine.handle(Query("who won the world cup 2022", fact_id="B"), 1.0)
        assert not response.served_from_cache
        assert engine.metrics.served_incorrect == 0

    def test_ann_only_serves_confusable_and_counts_incorrect(self):
        engine = make_asteria(config=AsteriaConfig(ann_only=True))
        engine.handle(Query("who won the world cup 2018", fact_id="A"), 0.0)
        response = engine.handle(Query("who won the world cup 2022", fact_id="B"), 1.0)
        assert response.served_from_cache
        assert response.lookup.truth_match is False
        assert engine.metrics.served_incorrect == 1

    def test_admit_on_miss_false_never_populates(self):
        engine = make_asteria(config=AsteriaConfig(admit_on_miss=False))
        engine.handle(Query("some topic", fact_id="F"), 0.0)
        assert len(engine.cache) == 0

    def test_eval_log_populated_on_hits(self):
        engine = make_asteria()
        engine.handle(Query("height of everest", fact_id="F"), 0.0)
        engine.handle(Query("everest height please", fact_id="F"), 1.0)
        assert len(engine._eval_log) == 1

    def test_config_thresholds_pushed_into_sine(self):
        engine = make_asteria(config=AsteriaConfig(tau_sim=0.8, tau_lsm=0.95))
        assert engine.cache.sine.tau_sim == 0.8
        assert engine.cache.sine.tau_lsm == 0.95


class TestAsteriaPrefetchAnalytic:
    def test_prefetch_inserts_predicted_successor(self):
        config = AsteriaConfig(prefetch_enabled=True, prefetch_confidence=0.5)
        engine = make_asteria(config=config)
        engine.prefetcher = MarkovPrefetcher(confidence=0.5, max_per_event=2)
        a = Query("alpha unique topic", fact_id="A")
        b = Query("beta unique topic", fact_id="B")
        for _ in range(2):
            engine.handle(a, 0.0)
            engine.handle(b, 1.0)
        # Cache now holds both; evict B to create a prefetch opportunity.
        b_elements = [
            element_id
            for element_id, element in engine.cache.elements.items()
            if element.truth_key == "B"
        ]
        for element_id in b_elements:
            engine.cache.remove(element_id)
        engine.handle(a, 10.0)
        assert engine.metrics.prefetches_issued >= 1
        assert engine.cache.contains_semantic(b)

    def test_prefetch_skips_cached_targets(self):
        config = AsteriaConfig(prefetch_enabled=True, prefetch_confidence=0.5)
        engine = make_asteria(config=config)
        a = Query("alpha unique topic", fact_id="A")
        b = Query("beta unique topic", fact_id="B")
        for _ in range(2):
            engine.handle(a, 0.0)
            engine.handle(b, 1.0)
        engine.handle(a, 10.0)  # b is already cached: no prefetch.
        assert engine.metrics.prefetches_issued == 0


class TestAsteriaRecalibrationAnalytic:
    def test_recalibration_rounds_run_on_schedule(self):
        config = AsteriaConfig(
            recalibration_enabled=True, recalibration_interval=10.0
        )
        engine = make_asteria(config=config)
        engine.handle(Query("topic one here", fact_id="A"), 0.0)
        engine.handle(Query("topic one here ok", fact_id="A"), 11.0)
        engine.handle(Query("topic one please", fact_id="A"), 22.0)
        assert engine.metrics.recalibrations >= 1

    def test_ground_truth_fetches_charged(self):
        config = AsteriaConfig(
            recalibration_enabled=True, recalibration_interval=5.0,
        )
        engine = make_asteria(config=config)
        # Build hits so the eval log is non-empty, then cross the interval.
        engine.handle(Query("topic one here", fact_id="A"), 0.0)
        for step in range(1, 8):
            engine.handle(Query("topic one here ok", fact_id="A"), float(step))
        engine.handle(Query("topic one please", fact_id="A"), 20.0)
        assert engine.remote.cost_meter.by_tool().get("ground-truth", 0) > 0
