"""Tests for workload trace files."""

import json

import pytest

from repro.workloads import SkewedWorkload, TrendWorkload, build_dataset
from repro.workloads.tracefile import (
    load_tasks,
    load_timed_queries,
    save_tasks,
    save_timed_queries,
)


@pytest.fixture
def dataset():
    return build_dataset("hotpotqa", seed=1)


class TestTimedQueryTraces:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        arrivals = TrendWorkload(dataset, duration=30.0, seed=2).timed_queries()
        path = tmp_path / "trace.jsonl"
        save_timed_queries(arrivals, path)
        loaded = load_timed_queries(path)
        assert len(loaded) == len(arrivals)
        for (at_a, query_a), (at_b, query_b) in zip(arrivals, loaded):
            assert at_a == at_b
            assert query_a.text == query_b.text
            assert query_a.fact_id == query_b.fact_id
            assert query_a.staticity == query_b.staticity
            assert dict(query_a.metadata) == dict(query_b.metadata)

    def test_replay_gives_identical_engine_behaviour(self, dataset, tmp_path):
        from repro.factory import build_asteria_engine, build_remote
        from repro.sim import Simulator
        from repro.workloads import run_open_loop

        arrivals = TrendWorkload(dataset, duration=30.0, seed=2).timed_queries()
        path = tmp_path / "trace.jsonl"
        save_timed_queries(arrivals, path)

        def run(trace):
            engine = build_asteria_engine(
                build_remote(dataset.universe, seed=3), seed=5
            )
            sim = Simulator()
            run_open_loop(sim, engine, trace)
            return engine.metrics.hits, engine.metrics.misses

        assert run(arrivals) == run(load_timed_queries(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_timed_queries([], path)
        assert load_timed_queries(path) == []


class TestTaskTraces:
    def test_roundtrip(self, dataset, tmp_path):
        tasks = SkewedWorkload(dataset, seed=2).tasks(20)
        path = tmp_path / "tasks.jsonl"
        save_tasks(tasks, path)
        loaded = load_tasks(path)
        assert len(loaded) == 20
        for original, copy in zip(tasks, loaded):
            assert original.task_id == copy.task_id
            assert [q.text for q in original.queries] == [
                q.text for q in copy.queries
            ]
            assert original.answer_fact == copy.answer_fact

    def test_session_metadata_survives(self, dataset, tmp_path):
        tasks = SkewedWorkload(dataset, seed=2).tasks(3)
        path = tmp_path / "tasks.jsonl"
        save_tasks(tasks, path)
        loaded = load_tasks(path)
        for task in loaded:
            for query in task.queries:
                assert query.metadata.get("session") == task.task_id


class TestHeaders:
    def test_wrong_kind_rejected(self, dataset, tmp_path):
        tasks = SkewedWorkload(dataset, seed=2).tasks(2)
        path = tmp_path / "tasks.jsonl"
        save_tasks(tasks, path)
        with pytest.raises(ValueError, match="kind"):
            load_timed_queries(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "random.jsonl"
        path.write_text(json.dumps({"hello": "world"}) + "\n")
        with pytest.raises(ValueError, match="format"):
            load_tasks(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "zero.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_tasks(path)
