"""Tests for the Sine two-stage retrieval index."""

import pytest

from repro.ann import FlatIndex
from repro.core import Query, Sine
from repro.core.cache import AsteriaCache
from repro.core.types import FetchResult
from repro.embedding import HashingEmbedder
from repro.judger import SimulatedJudger


def fetch(result="answer", latency=0.4, cost=0.005):
    return FetchResult(
        result=result, latency=latency, service_latency=latency, cost=cost,
        size_tokens=16,
    )


@pytest.fixture
def stack():
    embedder = HashingEmbedder(seed=7)
    sine = Sine(
        embedder,
        FlatIndex(embedder.dim),
        SimulatedJudger(seed=3),
        tau_sim=0.7,
        tau_lsm=0.9,
    )
    cache = AsteriaCache(sine)
    return sine, cache


class TestSineRetrieval:
    def test_empty_index_no_match(self, stack):
        sine, cache = stack
        result = sine.retrieve(Query("anything", fact_id="F"), cache.elements)
        assert result.match is None
        assert result.ann_considered == 0

    def test_paraphrase_matches(self, stack):
        sine, cache = stack
        cache.insert(Query("who painted the mona lisa", fact_id="F1"), fetch(), 0.0)
        result = sine.retrieve(
            Query("tell me who painted mona lisa please", fact_id="F1"),
            cache.elements,
        )
        assert result.match is not None
        assert result.match.truth_key == "F1"
        assert result.judged >= 1

    def test_unrelated_query_filtered_by_ann(self, stack):
        sine, cache = stack
        cache.insert(Query("who painted the mona lisa", fact_id="F1"), fetch(), 0.0)
        result = sine.retrieve(
            Query("current weather in paris", fact_id="F2"), cache.elements
        )
        assert result.match is None
        assert result.candidates == []
        # ANN was consulted but nothing cleared tau_sim: no judging needed.
        assert result.judged == 0

    def test_confusable_rejected_by_judger(self, stack):
        sine, cache = stack
        cache.insert(Query("who won the world cup 2018", fact_id="F:2018"), fetch(), 0.0)
        result = sine.retrieve(
            Query("who won the world cup 2022", fact_id="F:2022"), cache.elements
        )
        # Similar enough to be a candidate, but the judger must reject it.
        assert result.candidates, "expected the confusable to pass the coarse filter"
        assert result.match is None

    def test_ann_only_accepts_confusable(self, stack):
        sine, cache = stack
        cache.insert(Query("who won the world cup 2018", fact_id="F:2018"), fetch(), 0.0)
        result = sine.retrieve(
            Query("who won the world cup 2022", fact_id="F:2022"),
            cache.elements,
            ann_only=True,
        )
        assert result.match is not None  # The strawman's false positive.
        assert result.judged == 0

    def test_tau_sim_raised_blocks_candidates(self, stack):
        sine, cache = stack
        cache.insert(Query("who painted the mona lisa", fact_id="F1"), fetch(), 0.0)
        sine.tau_sim = 0.999
        result = sine.retrieve(
            Query("mona lisa painter please", fact_id="F1"), cache.elements
        )
        assert result.match is None
        assert result.candidates == []

    def test_tau_lsm_one_rejects_everything(self, stack):
        sine, cache = stack
        cache.insert(Query("who painted the mona lisa", fact_id="F1"), fetch(), 0.0)
        sine.tau_lsm = 1.0
        result = sine.retrieve(
            Query("who painted the mona lisa", fact_id="F1"), cache.elements
        )
        assert result.match is None
        assert result.judged >= 1

    def test_judge_all_prefers_highest_score(self, stack):
        sine, cache = stack
        sine.judge_all = True
        cache.insert(Query("height of mount everest", fact_id="F1"), fetch("a"), 0.0)
        cache.insert(Query("mount everest height meters", fact_id="F1"), fetch("b"), 0.0)
        result = sine.retrieve(
            Query("what is the height of mount everest", fact_id="F1"),
            cache.elements,
        )
        assert result.match is not None
        assert result.judged == 2

    def test_remove_unindexes(self, stack):
        sine, cache = stack
        element = cache.insert(Query("unique query text", fact_id="F"), fetch(), 0.0)
        cache.remove(element.element_id)
        result = sine.retrieve(Query("unique query text", fact_id="F"), cache.elements)
        assert result.match is None

    def test_candidates_for_stage_one_only(self, stack):
        sine, cache = stack
        cache.insert(Query("height of mount everest", fact_id="F"), fetch(), 0.0)
        hits = sine.candidates_for(Query("mount everest height", fact_id="F"))
        assert hits and hits[0].score >= sine.tau_sim

    def test_invalid_thresholds_rejected(self, stack):
        sine, _ = stack
        embedder = sine.embedder
        with pytest.raises(ValueError):
            Sine(embedder, FlatIndex(embedder.dim), sine.judger, tau_sim=1.5)
        with pytest.raises(ValueError):
            Sine(embedder, FlatIndex(embedder.dim), sine.judger, max_candidates=0)
