"""Tests for the SemanticElement cache unit."""

import numpy as np
import pytest

from repro.core import SemanticElement


def make_element(**overrides) -> SemanticElement:
    defaults = dict(
        element_id=1,
        key="who painted the mona lisa",
        value="leonardo da vinci",
        embedding=np.zeros(8, dtype=np.float32),
        staticity=9,
        retrieval_latency=0.4,
        retrieval_cost=0.005,
        size_tokens=32,
        created_at=10.0,
        last_accessed_at=10.0,
        expires_at=100.0,
    )
    defaults.update(overrides)
    return SemanticElement(**defaults)


class TestSemanticElement:
    def test_ttl_remaining(self):
        element = make_element()
        assert element.ttl_remaining(now=40.0) == pytest.approx(60.0)

    def test_is_expired_boundary(self):
        element = make_element()
        assert not element.is_expired(99.999)
        assert element.is_expired(100.0)

    def test_infinite_ttl_never_expires(self):
        element = make_element(expires_at=float("inf"))
        assert not element.is_expired(1e12)

    def test_record_hit_updates_frequency_and_recency(self):
        element = make_element()
        element.record_hit(now=20.0)
        element.record_hit(now=30.0)
        assert element.frequency == 2
        assert element.last_accessed_at == 30.0

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            make_element(key="")

    def test_staticity_bounds(self):
        with pytest.raises(ValueError):
            make_element(staticity=0)
        with pytest.raises(ValueError):
            make_element(staticity=11)

    def test_negative_metrics_rejected(self):
        with pytest.raises(ValueError):
            make_element(retrieval_latency=-0.1)
        with pytest.raises(ValueError):
            make_element(retrieval_cost=-0.1)
        with pytest.raises(ValueError):
            make_element(frequency=-1)

    def test_prefetched_defaults_false(self):
        assert not make_element().prefetched
