"""Tests for product quantization."""

import numpy as np
import pytest

from repro.ann import FlatIndex, PQIndex, ProductQuantizer


def unit_vectors(rng, n, dim=32):
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestProductQuantizer:
    def test_dim_must_divide(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=30, m=8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=0, m=1)
        with pytest.raises(ValueError):
            ProductQuantizer(dim=32, m=8, k=1)

    def test_untrained_operations_rejected(self, rng):
        quantizer = ProductQuantizer(dim=32, m=4)
        with pytest.raises(RuntimeError):
            quantizer.encode(unit_vectors(rng, 1)[0])
        with pytest.raises(RuntimeError):
            quantizer.adc_tables(unit_vectors(rng, 1)[0])

    def test_encode_shape_and_range(self, rng):
        quantizer = ProductQuantizer(dim=32, m=4, k=16)
        quantizer.train(unit_vectors(rng, 200))
        code = quantizer.encode(unit_vectors(rng, 1)[0])
        assert code.shape == (4,)
        assert code.max() < 16

    def test_roundtrip_error_bounded(self, rng):
        quantizer = ProductQuantizer(dim=32, m=8, k=64)
        data = unit_vectors(rng, 500)
        quantizer.train(data)
        errors = [
            float(np.linalg.norm(vector - quantizer.decode(quantizer.encode(vector))))
            for vector in data[:50]
        ]
        # Unit vectors have norm 1; reconstruction should be much closer
        # than a random vector (expected distance ~sqrt(2)).
        assert np.mean(errors) < 0.8

    def test_adc_approximates_inner_product(self, rng):
        quantizer = ProductQuantizer(dim=32, m=8, k=64)
        data = unit_vectors(rng, 500)
        quantizer.train(data)
        query = unit_vectors(rng, 1)[0]
        tables = quantizer.adc_tables(query)
        for vector in data[:20]:
            code = quantizer.encode(vector)
            adc = sum(tables[s, int(code[s])] for s in range(quantizer.m))
            exact = float(np.dot(vector, query))
            assert abs(adc - exact) < 0.35

    def test_training_deterministic(self, rng):
        data = unit_vectors(rng, 300)
        a = ProductQuantizer(dim=32, m=4, k=16, seed=3)
        b = ProductQuantizer(dim=32, m=4, k=16, seed=3)
        a.train(data)
        b.train(data)
        assert np.array_equal(a.encode(data[0]), b.encode(data[0]))


class TestPQIndex:
    def test_exact_before_training(self, rng):
        index = PQIndex(32, train_threshold=1000, k=64)
        flat = FlatIndex(32)
        for key, vector in enumerate(unit_vectors(rng, 50)):
            index.add(key, vector)
            flat.add(key, vector)
        query = unit_vectors(rng, 1)[0]
        assert [h.key for h in index.search(query, 5)] == [
            h.key for h in flat.search(query, 5)
        ]
        assert not index.is_trained

    def test_trains_at_threshold_and_drops_floats(self, rng):
        index = PQIndex(32, train_threshold=128, k=32)
        for key, vector in enumerate(unit_vectors(rng, 128)):
            index.add(key, vector)
        assert index.is_trained
        assert len(index._raw) == 0
        assert len(index) == 128

    def test_recall_after_training(self, rng):
        vectors = unit_vectors(rng, 400)
        index = PQIndex(32, m=8, k=64, train_threshold=256, seed=1)
        flat = FlatIndex(32)
        for key, vector in enumerate(vectors):
            index.add(key, vector)
            flat.add(key, vector)
        recall_sum = 0.0
        queries = 25
        for q in range(queries):
            query = vectors[rng.integers(len(vectors))]
            truth = {h.key for h in flat.search(query, 10)}
            got = {h.key for h in index.search(query, 10)}
            recall_sum += len(truth & got) / 10
        assert recall_sum / queries > 0.5  # compressed: coarse but useful

    def test_remove_in_both_phases(self, rng):
        index = PQIndex(32, train_threshold=64, k=16)
        vectors = unit_vectors(rng, 100)
        for key, vector in enumerate(vectors[:50]):
            index.add(key, vector)
        index.remove(0)  # raw phase
        for key, vector in enumerate(vectors[50:], start=50):
            index.add(key, vector)
        index.remove(99)  # trained phase
        assert len(index) == 98
        assert 0 not in index and 99 not in index

    def test_duplicate_and_missing_keys(self, rng):
        index = PQIndex(32, k=16)
        index.add(1, unit_vectors(rng, 1)[0])
        with pytest.raises(KeyError):
            index.add(1, unit_vectors(rng, 1)[0])
        with pytest.raises(KeyError):
            index.remove(2)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            PQIndex(32, k=64, train_threshold=32)

    def test_works_inside_full_engine(self, rng):
        from repro.core import Query
        from repro.factory import build_asteria_engine, build_remote

        engine = build_asteria_engine(build_remote(), index_kind="pq", seed=1)
        engine.handle(Query("who painted the mona lisa", fact_id="F"), 0.0)
        response = engine.handle(Query("mona lisa painter ok", fact_id="F"), 1.0)
        assert response.served_from_cache
