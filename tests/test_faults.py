"""Tests for the seeded fault injector and its remote-service integration."""

import pytest

from repro.core import Query
from repro.network import (
    FaultInjector,
    RemoteDataService,
    RemoteTimeout,
    RemoteUnavailable,
)


def outcome_sequence(injector: FaultInjector, n: int = 64) -> list:
    """The injector's fault/multiplier decision for ``n`` consecutive checks."""
    outcomes = []
    for i in range(n):
        try:
            outcomes.append(injector.check(float(i)))
        except RemoteUnavailable:
            outcomes.append("error")
        except RemoteTimeout:
            outcomes.append("timeout")
    return outcomes


class TestValidation:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="error_rate"):
            FaultInjector(error_rate=1.5)
        with pytest.raises(ValueError, match="timeout_rate"):
            FaultInjector(timeout_rate=-0.1)
        with pytest.raises(ValueError, match="spike_rate"):
            FaultInjector(spike_rate=2.0)

    def test_rejects_rate_sum_above_one(self):
        with pytest.raises(ValueError, match="must be <= 1"):
            FaultInjector(error_rate=0.7, timeout_rate=0.7)

    def test_rejects_bad_spike_scale_and_latencies(self):
        with pytest.raises(ValueError, match="spike_scale"):
            FaultInjector(spike_scale=0.5)
        with pytest.raises(ValueError, match="latencies"):
            FaultInjector(error_latency=-1.0)

    def test_rejects_empty_blackout_window(self):
        with pytest.raises(ValueError, match="blackout"):
            FaultInjector(blackouts=[(5.0, 5.0)])


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        kwargs = dict(error_rate=0.3, timeout_rate=0.2, spike_rate=0.1, seed=7)
        first = outcome_sequence(FaultInjector(**kwargs))
        second = outcome_sequence(FaultInjector(**kwargs))
        assert first == second
        assert "error" in first and "timeout" in first

    def test_different_seed_different_sequence(self):
        base = dict(error_rate=0.3, timeout_rate=0.2)
        assert outcome_sequence(
            FaultInjector(**base, seed=1)
        ) != outcome_sequence(FaultInjector(**base, seed=2))

    def test_blackout_checks_consume_no_randomness(self):
        """Blackout faults are schedule-driven: interleaving them must not
        shift the stochastic fault stream."""
        plain = FaultInjector(error_rate=0.4, seed=3)
        shadowed = FaultInjector(
            error_rate=0.4, seed=3, blackouts=[(1000.0, 1001.0)]
        )
        for _ in range(10):
            with pytest.raises(RemoteUnavailable, match="blackout"):
                shadowed.check(1000.5)
        assert outcome_sequence(plain) == outcome_sequence(shadowed)
        assert shadowed.blackout_faults == 10


class TestFaultKinds:
    def test_certain_error_fails_fast_with_error_latency(self):
        injector = FaultInjector(error_rate=1.0, error_latency=0.07)
        with pytest.raises(RemoteUnavailable) as info:
            injector.check(0.0)
        assert info.value.latency == pytest.approx(0.07)
        assert injector.injected_errors == 1

    def test_certain_timeout_burns_timeout_latency(self):
        injector = FaultInjector(timeout_rate=1.0, timeout_latency=2.0)
        with pytest.raises(RemoteTimeout) as info:
            injector.check(0.0)
        assert info.value.latency == pytest.approx(2.0)
        assert injector.injected_timeouts == 1

    def test_spike_returns_multiplier(self):
        injector = FaultInjector(spike_rate=1.0, spike_scale=4.0)
        assert injector.check(0.0) == pytest.approx(4.0)
        assert injector.injected_spikes == 1
        assert injector.total_faults == 0  # spikes degrade, not fail

    def test_clean_injector_is_transparent(self):
        injector = FaultInjector()
        assert injector.check(0.0) == pytest.approx(1.0)
        assert injector.total_faults == 0

    def test_schedule_blackout_and_in_blackout(self):
        injector = FaultInjector()
        injector.schedule_blackout(2.0, 4.0)
        assert injector.blackouts == ((2.0, 4.0),)
        assert not injector.in_blackout(1.9)
        assert injector.in_blackout(2.0)  # [start, end)
        assert injector.in_blackout(3.9)
        assert not injector.in_blackout(4.0)


class TestRemoteIntegration:
    def test_injected_error_escapes_fetch_at(self):
        remote = RemoteDataService(
            latency=0.4, fault_injector=FaultInjector(error_rate=1.0)
        )
        with pytest.raises(RemoteUnavailable):
            remote.fetch_at(Query("q"), 0.0)
        assert remote.calls == 0  # the call never reached the backend

    def test_spike_multiplies_service_latency(self):
        remote = RemoteDataService(
            latency=0.4,
            fault_injector=FaultInjector(spike_rate=1.0, spike_scale=3.0),
        )
        fetch = remote.fetch_at(Query("q"), 0.0)
        assert fetch.latency == pytest.approx(1.2)

    def test_blackout_gates_by_start_time(self):
        remote = RemoteDataService(
            latency=0.4, fault_injector=FaultInjector(blackouts=[(10.0, 20.0)])
        )
        assert remote.fetch_at(Query("q"), 5.0) is not None
        with pytest.raises(RemoteUnavailable):
            remote.fetch_at(Query("q"), 15.0)
        assert remote.fetch_at(Query("q"), 25.0) is not None
