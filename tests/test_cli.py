"""Tests for the experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, QUICK_OVERRIDES, _parse_overrides, main


class TestParseOverrides:
    def test_literals(self):
        overrides = _parse_overrides(["n_tasks=300", "cache_ratio=0.4"])
        assert overrides == {"n_tasks": 300, "cache_ratio": 0.4}

    def test_tuples_and_strings(self):
        overrides = _parse_overrides(
            ['dataset_names=("musique",)', "dataset_name=musique"]
        )
        assert overrides["dataset_names"] == ("musique",)
        assert overrides["dataset_name"] == "musique"

    def test_missing_equals_rejected(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_with_overrides(self, capsys):
        code = main(
            ["run", "fig2", "--set", 'window_draws=(("24h", 1000),)',
             "--set", "n_topics=100"]
        )
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_run_drift_quick(self, capsys):
        code = main(["run", "drift", "--set", "phase_tasks=100"])
        assert code == 0
        assert "drift" in capsys.readouterr().out.lower()


class TestRegistry:
    def test_every_quick_override_targets_a_real_experiment(self):
        assert set(QUICK_OVERRIDES) <= set(EXPERIMENTS)

    def test_registry_covers_all_paper_artefacts(self):
        for artefact in (
            "fig1c", "fig2", "fig3", "table2", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "table4", "table5", "fig13",
            "table6", "table7",
        ):
            assert artefact in EXPERIMENTS

    def test_quick_overrides_are_valid_kwargs(self):
        import inspect

        for name, overrides in QUICK_OVERRIDES.items():
            runner, _ = EXPERIMENTS[name]
            parameters = inspect.signature(runner).parameters
            for key in overrides:
                assert key in parameters, f"{name}: bad override {key}"
