"""Tests for the region topology."""

import numpy as np
import pytest

from repro.network import RegionTopology, default_topology
from repro.sim.distributions import Constant


class TestRegionTopology:
    def test_symmetric_links_registered_both_ways(self):
        topology = RegionTopology()
        topology.connect("a", "b", Constant(0.1))
        assert topology.latency_distribution("a", "b").mean() == 0.1
        assert topology.latency_distribution("b", "a").mean() == 0.1

    def test_asymmetric_link(self):
        topology = RegionTopology()
        topology.connect("a", "b", Constant(0.1), symmetric=False)
        with pytest.raises(KeyError):
            topology.latency_distribution("b", "a")

    def test_intra_region_uses_local_latency(self):
        topology = RegionTopology(local_latency=0.002)
        assert topology.latency_distribution("a", "a").mean() == 0.002

    def test_self_link_rejected(self):
        topology = RegionTopology()
        with pytest.raises(ValueError):
            topology.connect("a", "a", Constant(0.1))

    def test_missing_link_rejected(self):
        with pytest.raises(KeyError):
            RegionTopology().latency_distribution("x", "y")

    def test_regions_collected(self):
        topology = RegionTopology()
        topology.connect("a", "b", Constant(0.1))
        topology.connect("b", "c", Constant(0.1))
        assert topology.regions == {"a", "b", "c"}

    def test_sample_latency(self):
        topology = RegionTopology()
        topology.connect("a", "b", Constant(0.25))
        rng = np.random.default_rng(0)
        assert topology.sample_latency("a", "b", rng) == 0.25


class TestDefaultTopology:
    def test_paper_deployment_shape(self):
        topology = default_topology()
        cross = topology.latency_distribution("agent", "remote")
        rng = np.random.default_rng(0)
        samples = [cross.sample(rng) for _ in range(100)]
        assert all(0.10 <= sample <= 0.30 for sample in samples)
        local = topology.latency_distribution("agent", "local-dc")
        assert local.mean() == pytest.approx(0.002)
