"""Unified observability: span tracing, metrics registry, live snapshots.

Three pieces, designed to be attached to any of the serving stacks
(sequential :class:`~repro.core.engine.AsteriaEngine`, thread-pool
:class:`~repro.serving.concurrent.ConcurrentEngine`, asyncio
:class:`~repro.serving.aio.AsyncAsteriaEngine`) without changing their
behaviour or — when left detached — their speed:

:class:`~repro.obs.trace.Tracer`
    Per-request span trees over the pipeline stages (``embed``,
    ``ann_search``, ``judge``, ``remote_fetch``, ``admit``, ``evict``,
    ``stale_refresh``), propagated by contextvars so threads and asyncio
    tasks both attribute stages to the right request. Exports JSONL and
    Chrome ``trace_event`` (Perfetto-openable).
:class:`~repro.obs.registry.MetricsRegistry`
    Labeled counters / gauges / fixed-bucket histograms with Prometheus
    text exposition. The :mod:`~repro.obs.bridge` mirrors
    :class:`~repro.core.metrics.EngineMetrics` and circuit-breaker state
    into it.
:class:`~repro.obs.snapshot.SnapshotRecorder`
    Interval sampling of the registry (plus derived probes: hit rate,
    served fraction, stale fraction, p99, breaker state) into bounded
    time-series.

Two more pieces extend the surface across process boundaries:

:mod:`repro.obs.distributed`
    Trace-context propagation for the proc tier and replication links —
    worker-side stage spans ride reply frames back and graft into the
    router's tree with per-worker clock offsets (DESIGN §16).
:mod:`repro.obs.slo`
    Declarative SLOs with fast/slow-window burn-rate evaluation over
    snapshot series, Prometheus gauges, histogram exemplars, and the
    ``python -m repro slo`` CLI.

See ``python -m repro stress --trace-out trace.json --metrics-out
metrics.prom --series-out series.json`` for the end-to-end CLI surface, and
DESIGN §11 for the span model and bucket-choice rationale.
"""

from repro.obs.bridge import (
    EngineInstrument,
    breaker_state_value,
    served_fraction,
    stale_fraction,
)
from repro.obs.distributed import (
    WorkerTracer,
    graft_spans,
    make_span_sink,
    record_remote_leaf,
    trace_context,
)
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    SLOStatus,
    default_slos,
    evaluate_slos,
    format_statuses,
)
from repro.obs.snapshot import SnapshotRecorder, summarize_series
from repro.obs.trace import (
    STAGE_ADMIT,
    STAGE_ANN,
    STAGE_EMBED,
    STAGE_EVICT,
    STAGE_JUDGE,
    STAGE_REFRESH,
    STAGE_REMOTE,
    STAGE_REQUEST,
    STAGES,
    SamplingTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EngineInstrument",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGES",
    "STAGE_ADMIT",
    "STAGE_ANN",
    "STAGE_EMBED",
    "STAGE_EVICT",
    "STAGE_JUDGE",
    "STAGE_REFRESH",
    "STAGE_REMOTE",
    "STAGE_REQUEST",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "SamplingTracer",
    "SnapshotRecorder",
    "Span",
    "Tracer",
    "WorkerTracer",
    "breaker_state_value",
    "default_slos",
    "evaluate_slos",
    "format_statuses",
    "graft_spans",
    "make_span_sink",
    "record_remote_leaf",
    "served_fraction",
    "stale_fraction",
    "summarize_series",
    "trace_context",
]
