"""Labeled metrics with Prometheus text-format exposition.

A :class:`MetricsRegistry` holds three metric families, all thread-safe and
all bounded-memory:

* :class:`Counter` — monotone totals (requests, hits, breaker transitions);
* :class:`Gauge` — point-in-time values (cache occupancy, inflight depth,
  breaker state);
* :class:`Histogram` — fixed-bucket latency distributions that answer
  p50/p99 by linear interpolation inside the winning bucket, in O(buckets)
  memory regardless of sample count.

``registry.render()`` emits the Prometheus text exposition format
(`# HELP` / `# TYPE` + one line per label set), so a metrics file scraped
from ``python -m repro stress --metrics-out`` loads into promtool or any
Prometheus-compatible pipeline. ``registry.values()`` flattens everything
into a ``{series_name: float}`` dict for the snapshot recorder.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): ~geometric 1 ms .. 60 s, chosen so the
#: paper's interesting range (2 ms cache check .. 0.5 s WAN fetch) lands in
#: distinct buckets. See DESIGN §11 for the bucket-choice discussion.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelset(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

def _render_labels(labelset: tuple[tuple[str, str], ...]) -> str:
    if not labelset:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labelset)
    return "{" + inner + "}"


class _Metric:
    """Shared family plumbing: name, help text, per-labelset storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def labelsets(self) -> list[tuple[tuple[str, str], ...]]:
        with self._lock:
            return list(self._values)

    def value(self, **labels) -> float:
        """Current value for one label set (0.0 when never touched)."""
        with self._lock:
            return self._values.get(_labelset(labels), 0.0)

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._values.items())
        for labelset, value in items:
            lines.append(f"{self.name}{_render_labels(labelset)} {_format(value)}")
        return lines

    def values(self) -> dict[str, float]:
        """Flat ``{series: value}`` (series = ``name{labels}``)."""
        with self._lock:
            return {
                f"{self.name}{_render_labels(labelset)}": value
                for labelset, value in sorted(self._values.items())
            }


def _format(value: float) -> str:
    if value != value or math.isinf(value):  # NaN / inf guard
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter(_Metric):
    """A monotonically non-decreasing total per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        key = _labelset(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, total: float, **labels) -> None:
        """Overwrite the running total (mirror-sync from an
        :class:`~repro.core.metrics.EngineMetrics` counter, which is itself
        monotone). Refuses to move backwards."""
        key = _labelset(labels)
        with self._lock:
            if total < self._values.get(key, 0.0):
                raise ValueError(
                    f"{self.name}: counter cannot decrease "
                    f"({self._values[key]} -> {total})"
                )
            self._values[key] = float(total)


class Gauge(_Metric):
    """A point-in-time value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_labelset(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _labelset(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Fixed-bucket histogram answering percentiles in bounded memory.

    ``buckets`` are upper bounds (seconds); an implicit ``+Inf`` bucket
    catches the tail. :meth:`percentile` finds the target bucket from the
    cumulative counts and interpolates linearly inside it — the classic
    Prometheus ``histogram_quantile`` estimate, accurate to bucket width.
    """

    kind = "histogram"

    #: Retained exemplars per label set (recent wins; old ones roll off).
    max_exemplars = 64

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be > 0")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.buckets = tuple(bounds)
        #: labelset -> [per-bucket counts..., +Inf count]
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}
        #: labelset -> deque of (value, trace_id, bucket_index) exemplars.
        self._exemplars: dict[tuple, deque] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one sample."""
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        key = _labelset(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def load_samples(
        self,
        samples: Iterable[float],
        total_count: int | None = None,
        total_sum: float | None = None,
        **labels,
    ) -> None:
        """Replace one label set's state from a sample list.

        Used to mirror a bounded :class:`~repro.core.metrics.LatencyStats`
        reservoir: bucket shape comes from the (possibly subsampled)
        ``samples``, scaled so ``_count``/``_sum`` report the *exact* totals
        when given.
        """
        samples = list(samples)
        key = _labelset(labels)
        counts = [0] * (len(self.buckets) + 1)
        for value in samples:
            counts[bisect_left(self.buckets, value)] += 1
        scale = 1.0
        if total_count is not None and samples and total_count != len(samples):
            scale = total_count / len(samples)
        with self._lock:
            self._counts[key] = [int(round(c * scale)) for c in counts]
            self._totals[key] = (
                total_count if total_count is not None else len(samples)
            )
            self._sums[key] = (
                total_sum if total_sum is not None else float(sum(samples))
            )

    def add_exemplar(self, value: float, trace_id: int, **labels) -> None:
        """Attach a trace id to the bucket ``value`` falls in.

        Exemplars link an aggregate to concrete traces (the SLO engine
        surfaces them when a latency objective burns). They are *not*
        rendered into the text exposition — the golden-file determinism of
        :meth:`render` would break on every run — only reachable through
        :meth:`exemplars`. Bounded per label set, recent-wins.
        """
        if value < 0:
            raise ValueError(f"exemplar values must be >= 0, got {value}")
        key = _labelset(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            bucket = self._exemplars.get(key)
            if bucket is None:
                bucket = self._exemplars[key] = deque(maxlen=self.max_exemplars)
            bucket.append((float(value), int(trace_id), index))

    def exemplars(self, **labels) -> list[tuple[float, int, int]]:
        """Recent ``(value, trace_id, bucket_index)`` rows, oldest first."""
        with self._lock:
            return list(self._exemplars.get(_labelset(labels), ()))

    def count(self, **labels) -> int:
        with self._lock:
            return self._totals.get(_labelset(labels), 0)

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sums.get(_labelset(labels), 0.0)

    def percentile(self, p: float, **labels) -> float:
        """Estimated ``p``-th percentile (0-100) for one label set.

        Linear interpolation inside the winning bucket; the +Inf bucket
        reports the last finite bound (the estimate Prometheus makes).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        key = _labelset(labels)
        with self._lock:
            counts = self._counts.get(key)
            total = self._totals.get(key, 0)
        if not counts or total == 0:
            return 0.0
        target = (p / 100.0) * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target:
                if index == len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                if count == 0:
                    return upper
                fraction = (target - previous) / count
                return lower + (upper - lower) * fraction
        return self.buckets[-1]

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
            totals = dict(self._totals)
        for labelset, counts in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                le_labels = labelset + (("le", _format(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(le_labels)} {cumulative}"
                )
            cumulative += counts[-1]
            inf_labels = labelset + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_render_labels(inf_labels)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(labelset)} "
                f"{_format(sums.get(labelset, 0.0))}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(labelset)} "
                f"{totals.get(labelset, 0)}"
            )
        return lines

    def values(self) -> dict[str, float]:
        out: dict[str, float] = {}
        with self._lock:
            labelsets = sorted(self._counts)
        for labelset in labelsets:
            labels = dict(labelset)
            suffix = _render_labels(labelset)
            out[f"{self.name}_count{suffix}"] = float(self.count(**labels))
            out[f"{self.name}_sum{suffix}"] = self.sum(**labels)
            out[f"{self.name}_p50{suffix}"] = self.percentile(50, **labels)
            out[f"{self.name}_p99{suffix}"] = self.percentile(99, **labels)
        return out


class MetricsRegistry:
    """Get-or-create home for metric families + text exposition.

    ``counter`` / ``gauge`` / ``histogram`` return the existing family when
    the name is already registered (re-registration with a different kind is
    an error), so instruments in different layers can share families safely.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> "_Metric | None":
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self):
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def render(self) -> str:
        """The full Prometheus text exposition (families in name order)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def values(self) -> dict[str, float]:
        """Every series flattened to ``{series_name: float}`` (the snapshot
        recorder's sampling surface)."""
        out: dict[str, float] = {}
        for metric in self:
            out.update(metric.values())
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self)})"
