"""Interval sampling of a :class:`~repro.obs.registry.MetricsRegistry`.

The :class:`SnapshotRecorder` turns the registry's point-in-time ``values()``
surface into a time-series: each sample is ``(t, {series: value})``, plus any
derived probes registered with :meth:`add_probe` (hit rate, served fraction,
p99 — ratios that only make sense computed per-sample, not per-scrape).

Two driving styles:

* **pull** — call :meth:`maybe_sample` from the serving loop; it samples only
  when ``interval`` has elapsed, so tight loops stay cheap;
* **push** — :meth:`start` spins a daemon thread that samples on the interval
  until :meth:`stop`, for wall-clock runs (thread-pool / asyncio stress).

``to_dict()`` / ``save_json()`` produce the experiment-consumable dump:
columnar series keyed by name, one shared timestamp vector.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Mapping


class SnapshotRecorder:
    """Samples a registry (and derived probes) into bounded time-series.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` to sample. May be
        ``None`` when only probes are of interest.
    interval:
        Minimum seconds between samples for :meth:`maybe_sample` and the
        background thread.
    max_samples:
        Retention bound; the oldest samples are dropped beyond it so a soak
        run cannot grow memory without bound.
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(
        self,
        registry=None,
        interval: float = 0.5,
        max_samples: int = 10_000,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.registry = registry
        self.interval = interval
        self.max_samples = max_samples
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._times: list[float] = []
        self._rows: list[dict[str, float]] = []
        self._probes: dict[str, Callable[[], float]] = {}
        self._last_sample: float | None = None
        self.dropped = 0
        #: Total probe callbacks (or whole samples, from the background
        #: thread) that raised. Once nonzero it is also emitted as the
        #: ``snapshot_probe_errors`` series, so a dashboard can see a sick
        #: probe without scraping process state.
        self.probe_errors = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- configuration -------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a derived series sampled alongside the registry.

        Probes compute ratios the raw counters can't express directly
        (hit rate, served fraction) or reach state outside the registry
        (breaker state, inflight depth). Exceptions inside a probe record
        ``nan`` rather than killing the sampler.
        """
        with self._lock:
            self._probes[name] = fn

    # -- sampling -------------------------------------------------------------
    def sample(self) -> dict[str, float]:
        """Take one sample unconditionally; returns the sampled row."""
        now = self._clock() - self._epoch
        row: dict[str, float] = {}
        if self.registry is not None:
            row.update(self.registry.values())
        with self._lock:
            probes = list(self._probes.items())
        errors = 0
        for name, fn in probes:
            # A raising probe records nan for its own series and is counted;
            # the interval's other series points are unaffected.
            try:
                row[name] = float(fn())
            except Exception:
                row[name] = float("nan")
                errors += 1
        with self._lock:
            if errors:
                self.probe_errors += errors
            if self.probe_errors:
                # Emitted only once a probe has ever failed: healthy runs
                # keep their exact pre-existing series set, while a sick
                # probe shows up as a series without scraping process state.
                row["snapshot_probe_errors"] = float(self.probe_errors)
            self._times.append(now)
            self._rows.append(row)
            if len(self._times) > self.max_samples:
                overflow = len(self._times) - self.max_samples
                del self._times[:overflow]
                del self._rows[:overflow]
                self.dropped += overflow
            self._last_sample = now
        return row

    def maybe_sample(self) -> dict[str, float] | None:
        """Sample only if ``interval`` has elapsed since the last sample."""
        now = self._clock() - self._epoch
        with self._lock:
            due = self._last_sample is None or (
                now - self._last_sample >= self.interval
            )
        if not due:
            return None
        return self.sample()

    # -- background driving ---------------------------------------------------
    def start(self) -> None:
        """Start a daemon thread sampling every ``interval`` seconds."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("recorder already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-snapshot", daemon=True
        )
        self._thread.start()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background thread (taking one last sample by default)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            # The recorder thread must outlive any single bad sample: a
            # registry mid-mutation or a probe raising outside the per-probe
            # guard costs one interval, never the rest of the run's series.
            try:
                self.sample()
            except Exception:
                with self._lock:
                    self.probe_errors += 1

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._times)

    def times(self) -> list[float]:
        """Sample timestamps (seconds since recorder creation)."""
        with self._lock:
            return list(self._times)

    def series(self, name: str) -> list[float]:
        """One series across all samples (``nan`` where it was absent)."""
        with self._lock:
            rows = list(self._rows)
        return [row.get(name, float("nan")) for row in rows]

    def names(self) -> list[str]:
        """Every series name observed in any sample, sorted."""
        with self._lock:
            rows = list(self._rows)
        seen: set[str] = set()
        for row in rows:
            seen.update(row)
        return sorted(seen)

    def to_dict(self) -> dict:
        """Columnar dump: ``{"interval", "t": [...], "series": {name: [...]}}``."""
        names = self.names()
        return {
            "interval": self.interval,
            "samples": len(self),
            "dropped": self.dropped,
            "probe_errors": self.probe_errors,
            "t": [round(t, 6) for t in self.times()],
            "series": {name: self.series(name) for name in names},
        }

    def save_json(self, path: "str | Path") -> int:
        """Write :meth:`to_dict` as JSON; returns the sample count."""
        payload = self.to_dict()
        # nan is not valid JSON; serialise as null.
        text = json.dumps(payload, allow_nan=True)
        text = text.replace("NaN", "null")
        Path(path).write_text(text)
        return payload["samples"]

    def __repr__(self) -> str:
        return (
            f"SnapshotRecorder(samples={len(self)}, interval={self.interval}, "
            f"probes={len(self._probes)})"
        )


def _isnan(value: float) -> bool:
    return value != value


def summarize_series(values: Mapping[str, list[float]]) -> dict[str, dict]:
    """Min/max/last per series, skipping nan gaps (experiment convenience)."""
    out: dict[str, dict] = {}
    for name, series in values.items():
        clean = [v for v in series if not _isnan(v)]
        if not clean:
            out[name] = {"min": None, "max": None, "last": None}
            continue
        out[name] = {"min": min(clean), "max": max(clean), "last": clean[-1]}
    return out
