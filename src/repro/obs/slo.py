"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLOSpec` names one snapshot series (the
:class:`~repro.obs.snapshot.SnapshotRecorder`'s columnar dump is the
evaluation surface), a per-sample goodness test (``value <= threshold`` or
``value >= threshold``), and an objective ``target`` — the fraction of
samples that must be good. Evaluation follows the multi-window,
multi-burn-rate alerting recipe from the Google SRE workbook:

* the **burn rate** over a window is ``bad_fraction / (1 - target)`` — 1.0
  means the error budget is being consumed exactly at the sustainable pace,
  14.4 means a 30-day budget would be gone in ~2 days;
* an SLO **fires** only when *both* the fast window (default 5 minutes —
  "is it happening now?") and the slow window (default 1 hour — "has it
  been happening long enough to matter?") exceed their thresholds, which
  is what keeps one anomalous sample from paging.

Runs shorter than a window simply evaluate over the samples that exist —
the windows clamp to the series, so a 60-second stress run still gets a
meaningful answer.

:class:`SLOEngine` binds specs to a recorder, publishes
``repro_slo_burn_rate{slo,window}`` / ``repro_slo_firing{slo}`` gauges into
an optional registry, pulls exemplar trace ids off an optional latency
histogram (so a burning latency SLO links to its slowest recent traces),
and renders the ``health`` op / ``python -m repro slo`` summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default burn-rate thresholds (fast / slow), from the SRE workbook's
#: 14.4x-over-1h + 6x-over-6h page ladder, compressed to the two windows a
#: stress run can actually fill.
FAST_BURN = 14.4
SLOW_BURN = 6.0


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over a snapshot series.

    ``op`` is the per-sample goodness direction: ``"<="`` means samples at
    or under ``threshold`` are good (latency style), ``">="`` means samples
    at or over it are good (availability style).
    """

    name: str
    series: str
    threshold: float
    op: str = "<="
    target: float = 0.99
    fast_window: float = 300.0
    slow_window: float = 3600.0
    fast_burn: float = FAST_BURN
    slow_burn: float = SLOW_BURN
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"op must be '<=' or '>=', got {self.op!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError(
                f"need 0 < fast_window <= slow_window, got "
                f"{self.fast_window}/{self.slow_window}"
            )

    def good(self, value: float) -> bool:
        """Per-sample goodness (nan samples are skipped by the evaluator)."""
        if self.op == "<=":
            return value <= self.threshold
        return value >= self.threshold


@dataclass
class SLOStatus:
    """One spec's evaluation result (the ``health`` op / CLI row)."""

    name: str
    series: str
    firing: bool
    fast_burn_rate: float
    slow_burn_rate: float
    fast_samples: int
    slow_samples: int
    last_value: float | None
    description: str = ""
    exemplar_trace_ids: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        row = {
            "name": self.name,
            "series": self.series,
            "firing": self.firing,
            "fast_burn_rate": round(self.fast_burn_rate, 4),
            "slow_burn_rate": round(self.slow_burn_rate, 4),
            "fast_samples": self.fast_samples,
            "slow_samples": self.slow_samples,
            "last_value": self.last_value,
        }
        if self.description:
            row["description"] = self.description
        if self.exemplar_trace_ids:
            row["exemplar_trace_ids"] = self.exemplar_trace_ids
        return row


def _window_burn(
    times: list[float], values: list[float], window: float, spec: SLOSpec
) -> tuple[float, int]:
    """Burn rate and sample count over the trailing ``window`` seconds."""
    if not times:
        return 0.0, 0
    cutoff = times[-1] - window
    good = bad = 0
    for t, value in zip(times, values):
        if t < cutoff or value is None or value != value:  # skip nan gaps
            continue
        if spec.good(value):
            good += 1
        else:
            bad += 1
    total = good + bad
    if total == 0:
        return 0.0, 0
    return (bad / total) / (1.0 - spec.target), total


def evaluate_slo(spec: SLOSpec, snapshot: dict) -> SLOStatus:
    """Evaluate one spec against a :meth:`SnapshotRecorder.to_dict` dump."""
    times = snapshot.get("t", [])
    values = snapshot.get("series", {}).get(spec.series, [])
    fast_rate, fast_n = _window_burn(times, values, spec.fast_window, spec)
    slow_rate, slow_n = _window_burn(times, values, spec.slow_window, spec)
    last = None
    for value in reversed(values):
        if value is not None and value == value:
            last = value
            break
    return SLOStatus(
        name=spec.name,
        series=spec.series,
        # Both windows must burn: the fast one proves it is happening now,
        # the slow one proves it is not a blip. Zero samples never fire.
        firing=(
            fast_n > 0
            and slow_n > 0
            and fast_rate >= spec.fast_burn
            and slow_rate >= spec.slow_burn
        ),
        fast_burn_rate=fast_rate,
        slow_burn_rate=slow_rate,
        fast_samples=fast_n,
        slow_samples=slow_n,
        last_value=last,
        description=spec.description,
    )


def evaluate_slos(specs, snapshot: dict) -> list[SLOStatus]:
    """Evaluate every spec against one snapshot dump."""
    return [evaluate_slo(spec, snapshot) for spec in specs]


def default_slos(
    engine: str = "proc",
    p99_threshold: float = 0.5,
    served_threshold: float = 0.99,
    stale_threshold: float = 0.2,
    fast_window: float = 300.0,
    slow_window: float = 3600.0,
) -> list[SLOSpec]:
    """The stock SLO set over the probes ``EngineInstrument.install_probes``
    registers for ``engine``: p99 latency, served fraction, and staleness
    (the fraction of served answers that were stale hits)."""
    return [
        SLOSpec(
            name="p99_latency",
            series=f'p99_latency{{engine="{engine}"}}',
            threshold=p99_threshold,
            op="<=",
            target=0.99,
            fast_window=fast_window,
            slow_window=slow_window,
            description=f"p99 request latency stays under {p99_threshold}s",
        ),
        SLOSpec(
            name="served_fraction",
            series=f'served_fraction{{engine="{engine}"}}',
            threshold=served_threshold,
            op=">=",
            target=0.99,
            fast_window=fast_window,
            slow_window=slow_window,
            description=(
                f"at least {served_threshold:.0%} of finished requests get a payload"
            ),
        ),
        SLOSpec(
            name="stale_fraction",
            series=f'stale_fraction{{engine="{engine}"}}',
            threshold=stale_threshold,
            op="<=",
            target=0.95,
            fast_window=fast_window,
            slow_window=slow_window,
            description=(
                f"stale hits stay under {stale_threshold:.0%} of served answers"
            ),
        ),
    ]


class SLOEngine:
    """Binds SLO specs to a recorder, a registry, and exemplar sources.

    Parameters
    ----------
    specs:
        The :class:`SLOSpec` list to evaluate.
    recorder:
        Optional :class:`~repro.obs.snapshot.SnapshotRecorder`;
        :meth:`evaluate` reads its ``to_dict()`` when no explicit snapshot
        is passed.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; every
        evaluation publishes ``repro_slo_burn_rate{slo,window}`` and
        ``repro_slo_firing{slo}`` gauges.
    latency_histogram / latency_labels:
        Optional :class:`~repro.obs.registry.Histogram` (+ its label set)
        holding exemplars; latency-style (``op="<="``) statuses pick up the
        trace ids of the slowest recent exemplars so a burn links straight
        to offending traces.
    """

    def __init__(
        self,
        specs,
        recorder=None,
        registry=None,
        latency_histogram=None,
        latency_labels: dict | None = None,
    ) -> None:
        self.specs = list(specs)
        self.recorder = recorder
        self.registry = registry
        self.latency_histogram = latency_histogram
        self.latency_labels = dict(latency_labels or {})
        self._burn_gauge = None
        self._firing_gauge = None
        if registry is not None:
            self._burn_gauge = registry.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate per SLO and window "
                "(1.0 = sustainable pace).",
            )
            self._firing_gauge = registry.gauge(
                "repro_slo_firing",
                "1 when both burn-rate windows exceed their thresholds.",
            )

    def _exemplars_for(self, spec: SLOSpec, limit: int = 3) -> list[int]:
        if self.latency_histogram is None or spec.op != "<=":
            return []
        rows = self.latency_histogram.exemplars(**self.latency_labels)
        slowest = sorted(rows, key=lambda row: row[0], reverse=True)[:limit]
        return [trace_id for _, trace_id, _ in slowest]

    def evaluate(self, snapshot: dict | None = None) -> list[SLOStatus]:
        """Evaluate every spec; publishes gauges and attaches exemplars."""
        if snapshot is None:
            if self.recorder is None:
                raise ValueError("SLOEngine needs a recorder or an explicit snapshot")
            snapshot = self.recorder.to_dict()
        statuses = evaluate_slos(self.specs, snapshot)
        for spec, status in zip(self.specs, statuses):
            if status.firing:
                status.exemplar_trace_ids = self._exemplars_for(spec)
            if self._burn_gauge is not None:
                self._burn_gauge.set(
                    status.fast_burn_rate, slo=spec.name, window="fast"
                )
                self._burn_gauge.set(
                    status.slow_burn_rate, slo=spec.name, window="slow"
                )
                self._firing_gauge.set(float(status.firing), slo=spec.name)
        return statuses

    def health_summary(self, snapshot: dict | None = None) -> dict:
        """The ``health`` op payload: compact per-SLO rows + firing names."""
        statuses = self.evaluate(snapshot)
        return {
            "firing": [status.name for status in statuses if status.firing],
            "slos": [status.as_dict() for status in statuses],
        }

    def __repr__(self) -> str:
        return f"SLOEngine(specs={[spec.name for spec in self.specs]})"


def format_statuses(statuses) -> str:
    """Fixed-width text table for the ``python -m repro slo`` CLI."""
    lines = [
        f"{'slo':<18} {'firing':<7} {'fast_burn':>10} {'slow_burn':>10} "
        f"{'samples':>8} {'last':>10}"
    ]
    for status in statuses:
        last = "-" if status.last_value is None else f"{status.last_value:.4g}"
        lines.append(
            f"{status.name:<18} {str(status.firing).lower():<7} "
            f"{status.fast_burn_rate:>10.2f} {status.slow_burn_rate:>10.2f} "
            f"{status.fast_samples:>8d} {last:>10}"
        )
        if status.exemplar_trace_ids:
            lines.append(f"    exemplar traces: {status.exemplar_trace_ids}")
    return "\n".join(lines)
