"""Wiring between the serving/resilience layers and the metrics registry.

The engines' hot paths keep writing their existing
:class:`~repro.core.metrics.EngineMetrics` (plain attribute bumps, no label
hashing); :class:`EngineInstrument` mirrors that state into a
:class:`~repro.obs.registry.MetricsRegistry` on demand — after a run, or
periodically from the snapshot recorder. This keeps tracing/metrics overhead
off the request path entirely while still exposing everything through one
Prometheus-compatible surface:

* ``repro_lookups_total{engine,status}`` — hit / miss / bypass counts;
* ``repro_outcomes_total{engine,outcome}`` — degraded and rejected outcomes
  (stale_hit, failed, overloaded, deadline_exceeded);
* ``repro_events_total{engine,event}`` — the remaining counters (coalesced
  misses, fetch failures, hedges, refreshes, evictions, ...);
* ``repro_request_latency_seconds{engine,kind}`` — fixed-bucket histograms
  mirrored from the latency reservoirs (exact ``_count``/``_sum``);
* ``repro_cache_occupancy`` / ``repro_cache_capacity`` /
  ``repro_inflight_requests`` / ``repro_hit_rate`` gauges;
* ``repro_breaker_state`` (0=closed, 1=open, 2=half_open) and
  ``repro_breaker_transitions_total{from_state,to_state}`` — fed *live* by
  :meth:`wire_breaker` through the breaker's transition listener.
"""

from __future__ import annotations

from repro.core.metrics import EngineMetrics
from repro.core.resilience import CircuitBreaker
from repro.obs.registry import MetricsRegistry

#: EngineMetrics fields mirrored into ``repro_events_total{event=...}``.
EVENT_FIELDS = (
    "served_correct",
    "served_incorrect",
    "prefetches_issued",
    "prefetch_hits",
    "coalesced_misses",
    "evictions",
    "expirations",
    "recalibrations",
    "hedged_fetches",
    "hedge_wins",
    "breaker_open_rejects",
    "negative_cache_hits",
    "background_refreshes",
    "fetch_failures",
    "worker_restarts",
    "shard_down_fetches",
)

#: EngineMetrics fields mirrored into ``repro_outcomes_total{outcome=...}``.
OUTCOME_FIELDS = ("stale_hits", "failed_requests", "overloaded", "deadline_exceeded")

#: Metrics-field name -> exposition outcome label.
_OUTCOME_LABEL = {
    "stale_hits": "stale_hit",
    "failed_requests": "failed",
    "overloaded": "overloaded",
    "deadline_exceeded": "deadline_exceeded",
}

#: Latency reservoirs mirrored into ``repro_request_latency_seconds{kind=...}``.
LATENCY_KINDS = (
    ("total", "total_latency"),
    ("hit", "hit_latency"),
    ("miss", "miss_latency"),
    ("cache_check", "cache_check_latency"),
    ("remote", "remote_latency"),
    ("degraded", "degraded_latency"),
)


def breaker_state_value(state: str) -> int:
    """Gauge encoding of a breaker state (0=closed, 1=open, 2=half_open)."""
    return CircuitBreaker.STATES.index(state)


class EngineInstrument:
    """Mirrors one engine's metrics (and optional serving state) into a
    registry under an ``engine=<label>`` label set.

    Construct once per engine per run; call :meth:`sync` whenever the
    registry should reflect current state (once at the end of a run, or on
    every snapshot-recorder tick via :meth:`install_probes`).
    """

    def __init__(self, registry: MetricsRegistry, engine_label: str) -> None:
        self.registry = registry
        self.engine_label = engine_label
        self._lookups = registry.counter(
            "repro_lookups_total", "Cache lookups by status (hit/miss/bypass)."
        )
        self._outcomes = registry.counter(
            "repro_outcomes_total",
            "Degraded and rejected request outcomes "
            "(stale_hit/failed/overloaded/deadline_exceeded).",
        )
        self._events = registry.counter(
            "repro_events_total", "Engine events (fetch failures, hedges, ...)."
        )
        self._latency = registry.histogram(
            "repro_request_latency_seconds",
            "Request latency split by kind (simulated seconds).",
        )
        self._occupancy = registry.gauge(
            "repro_cache_occupancy", "Live elements in the cache."
        )
        self._capacity = registry.gauge(
            "repro_cache_capacity", "Configured cache capacity (-1 unbounded)."
        )
        self._inflight = registry.gauge(
            "repro_inflight_requests", "Requests inside the serving section."
        )
        self._hit_rate = registry.gauge(
            "repro_hit_rate", "Validated hits / cacheable requests."
        )
        self._breaker_state = registry.gauge(
            "repro_breaker_state", "Circuit breaker state (0=closed, 1=open, 2=half_open)."
        )
        self._breaker_transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions by edge.",
        )

    # -- mirroring ----------------------------------------------------------
    def sync(
        self,
        metrics: EngineMetrics,
        cache=None,
        inflight: int | None = None,
    ) -> None:
        """Mirror ``metrics`` (and optional cache/serving state) into the
        registry. Counters are absolute totals (monotone by construction);
        histograms reload from the bounded reservoirs with exact counts."""
        label = self.engine_label
        self._lookups.set_total(metrics.hits, engine=label, status="hit")
        self._lookups.set_total(metrics.misses, engine=label, status="miss")
        self._lookups.set_total(metrics.bypasses, engine=label, status="bypass")
        for fname in OUTCOME_FIELDS:
            self._outcomes.set_total(
                getattr(metrics, fname), engine=label, outcome=_OUTCOME_LABEL[fname]
            )
        for fname in EVENT_FIELDS:
            self._events.set_total(getattr(metrics, fname), engine=label, event=fname)
        for kind, attr in LATENCY_KINDS:
            stats = getattr(metrics, attr)
            if stats.count == 0:
                continue
            self._latency.load_samples(
                stats.samples(),
                total_count=stats.count,
                total_sum=stats.total,
                engine=label,
                kind=kind,
            )
        self._hit_rate.set(metrics.hit_rate, engine=label)
        if cache is not None:
            self._occupancy.set(cache.usage(), engine=label)
            capacity = getattr(cache, "capacity_items", None)
            self._capacity.set(capacity if capacity is not None else -1, engine=label)
        if inflight is not None:
            self._inflight.set(inflight, engine=label)

    def wire_breaker(self, breaker: CircuitBreaker) -> None:
        """Attach the breaker's transition listener: every state change
        updates ``repro_breaker_state`` and bumps
        ``repro_breaker_transitions_total{from_state,to_state}`` live.

        Replays transitions already in the breaker's history so wiring after
        warm-up loses nothing.
        """
        label = self.engine_label
        for _, old_state, new_state in breaker.transitions:
            self._breaker_transitions.inc(
                engine=label, from_state=old_state, to_state=new_state
            )
        self._breaker_state.set(breaker_state_value(breaker.state), engine=label)

        def _on_transition(now: float, old_state: str, new_state: str) -> None:
            self._breaker_state.set(breaker_state_value(new_state), engine=label)
            self._breaker_transitions.inc(
                engine=label, from_state=old_state, to_state=new_state
            )

        breaker.on_transition = _on_transition

    def wire_shard_breakers(self, breakers) -> None:
        """Per-shard fault-domain breakers (the proc tier's): mirror each
        shard's state into ``repro_shard_breaker_state{engine,shard}`` and
        its transitions into
        ``repro_shard_breaker_transitions_total{engine,shard,from_state,
        to_state}``, live, via the same listener scheme as
        :meth:`wire_breaker`."""
        state_gauge = self.registry.gauge(
            "repro_shard_breaker_state",
            "Per-shard fault-domain breaker state "
            "(0=closed, 1=open, 2=half_open).",
        )
        transitions = self.registry.counter(
            "repro_shard_breaker_transitions_total",
            "Per-shard fault-domain breaker transitions by edge.",
        )
        label = self.engine_label
        for shard, breaker in enumerate(breakers):
            shard_label = str(shard)
            for _, old_state, new_state in breaker.transitions:
                transitions.inc(
                    engine=label,
                    shard=shard_label,
                    from_state=old_state,
                    to_state=new_state,
                )
            state_gauge.set(
                breaker_state_value(breaker.state), engine=label, shard=shard_label
            )

            def _on_transition(
                now: float, old_state: str, new_state: str, shard_label=shard_label
            ) -> None:
                state_gauge.set(
                    breaker_state_value(new_state), engine=label, shard=shard_label
                )
                transitions.inc(
                    engine=label,
                    shard=shard_label,
                    from_state=old_state,
                    to_state=new_state,
                )

            breaker.on_transition = _on_transition

    def install_probes(
        self,
        recorder,
        metrics: EngineMetrics,
        cache=None,
        inflight_fn=None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        """Register the live time-series probes the ISSUE's snapshot recorder
        tracks (hit rate, served fraction, p99, breaker state), plus a sync
        hook so every sample sees fresh registry values."""
        label = self.engine_label

        def _sync_probe() -> float:
            self.sync(
                metrics,
                cache=cache,
                inflight=inflight_fn() if inflight_fn is not None else None,
            )
            return 1.0

        recorder.add_probe(f"sync{{engine=\"{label}\"}}", _sync_probe)
        recorder.add_probe(f"hit_rate{{engine=\"{label}\"}}", lambda: metrics.hit_rate)
        recorder.add_probe(
            f"served_fraction{{engine=\"{label}\"}}",
            lambda: served_fraction(metrics),
        )
        recorder.add_probe(
            f"stale_fraction{{engine=\"{label}\"}}",
            lambda: stale_fraction(metrics),
        )
        recorder.add_probe(
            f"p99_latency{{engine=\"{label}\"}}", lambda: metrics.total_latency.p99
        )
        if breaker is not None:
            recorder.add_probe(
                f"breaker_state{{engine=\"{label}\"}}",
                lambda: breaker_state_value(breaker.state),
            )

    def attach_exemplars(self, tracer) -> int:
        """Attach recent request-span trace ids as latency exemplars.

        Every finished ``request`` span in ``tracer`` contributes a
        ``(wall duration, trace_id)`` exemplar to
        ``repro_request_latency_seconds{engine,kind="total"}``. The
        histogram's *samples* are simulated latencies while the exemplar
        values are wall durations — exemplars are links to traces, not
        measurements (DESIGN §16), so the mismatch is deliberate and
        documented rather than papered over. Returns the number attached
        (bounded storage: only the most recent survive).
        """
        if tracer is None:
            return 0
        label = self.engine_label
        attached = 0
        for span in tracer.spans():
            if span.name != "request":
                continue
            self._latency.add_exemplar(
                span.duration, span.trace_id, engine=label, kind="total"
            )
            attached += 1
        return attached


def served_fraction(metrics: EngineMetrics) -> float:
    """Fraction of finished requests answered with some payload (fresh or
    stale) — offered load minus failures and rejections."""
    finished = (
        metrics.requests
        + metrics.stale_hits
        + metrics.failed_requests
        + metrics.overloaded
        + metrics.deadline_exceeded
    )
    if finished == 0:
        return 1.0
    served = metrics.requests + metrics.stale_hits
    return served / finished


def stale_fraction(metrics: EngineMetrics) -> float:
    """Fraction of *served* answers that were stale hits — the staleness
    signal the SLO layer watches (0.0 before anything has been served)."""
    served = metrics.requests + metrics.stale_hits
    if served == 0:
        return 0.0
    return metrics.stale_hits / served
