"""Stage-level span tracing for the serving stacks.

A :class:`Tracer` records per-request span trees: every request gets a root
span, and each pipeline stage (``embed``, ``ann_search``, ``judge``,
``remote_fetch``, ``admit``, ``evict``, ``stale_refresh``) becomes a child
span with real wall-clock bounds. Propagation uses a :mod:`contextvars`
variable, which gives the right parent in every execution style at once:

* sequential code nests spans lexically;
* the thread pool works because each thread carries its own context (and the
  request root resets the variable on exit, so pooled threads never leak a
  parent into the next request);
* asyncio works because tasks snapshot their context at creation — a
  single-flight leader task spawned inside request A keeps A's root as its
  parent across every ``await``, while concurrent requests on the same loop
  stay isolated.

Finished spans land in a bounded deque (``append`` is atomic under the GIL,
so recording is thread-safe without a hot-path lock) and export as JSONL or
as a Chrome ``trace_event`` file that opens directly in Perfetto /
``chrome://tracing``.

Two recording styles, chosen per call site by cost:

* ``with tracer.request(...)`` / ``with tracer.span(...)`` — context-manager
  spans that install themselves as the current contextvar value, so child
  stages parent correctly. Use for spans that can have children.
* ``t0 = tracer.clock(); ...; tracer.record_leaf(name, t0)`` — one-call
  recording for *leaf* stages (``embed``, ``ann_search``, ``judge``,
  ``remote_fetch``, ``evict``) that never open children. This skips the
  context-manager protocol and the contextvar set/reset entirely — one
  Python frame instead of three — which is what keeps tracing-on overhead
  inside the benchmarked budget. A leaf whose work raises records nothing;
  the failure stays visible as the root span's ``outcome``.

Engines hold ``tracer = None`` by default and guard every instrumentation
point with one ``is None`` check, so tracing-off overhead is a branch per
stage (measured ~zero by ``benchmarks/run_obs_overhead.py``).

For always-on production tracing, :class:`SamplingTracer` records 1-in-N
requests. Engines decide once per request via :meth:`Tracer.sample` and
run the skipped N-1 down the very same branch as tracing off, and stage
sites pre-filter on the :attr:`Tracer.live` attribute (one load) before
the per-context :meth:`Tracer.active` check, which holds the measured
overhead under 1% at ``sample_every=100``. Metrics stay exact — sampling
thins the *span record*, never the engine's counters.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

#: Canonical stage names (span ``name`` values the exporters group by).
STAGE_REQUEST = "request"
STAGE_EMBED = "embed"
STAGE_ANN = "ann_search"
STAGE_JUDGE = "judge"
STAGE_REMOTE = "remote_fetch"
STAGE_ADMIT = "admit"
STAGE_EVICT = "evict"
STAGE_REFRESH = "stale_refresh"

STAGES = (
    STAGE_REQUEST,
    STAGE_EMBED,
    STAGE_ANN,
    STAGE_JUDGE,
    STAGE_REMOTE,
    STAGE_ADMIT,
    STAGE_EVICT,
    STAGE_REFRESH,
)


class Span:
    """One timed section of work; a node in a request's span tree.

    ``start``/``end`` are seconds since the owning tracer's epoch (its
    creation instant), so exported timestamps stay small and comparable
    across threads. ``attrs`` holds user labels (tool, outcome, counts).

    The span doubles as its own context manager (rather than wrapping it in
    a separate guard object) so opening a stage costs exactly one
    allocation on the hot path.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "thread_id",
        "attrs",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        start: float,
        thread_id: int,
        attrs: dict | None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.thread_id = thread_id
        self.attrs = attrs
        self._tracer = None
        self._token = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Finishing is inlined here (not a tracer method call): the deque
        # append is atomic under the GIL, so no lock is needed on the hot
        # path; the lock guards only the (rare) drop counter, where the
        # check-then-count race can at worst undercount a drop two threads
        # caused together — the deque itself always stays bounded.
        tracer = self._tracer
        tracer._current.reset(self._token)
        self._token = None
        self._tracer = None
        self.end = tracer.clock() - tracer._epoch
        spans = tracer._spans
        if len(spans) == tracer.max_spans:
            with tracer._lock:
                tracer.dropped += 1
        spans.append(self)

    def set(self, **attrs) -> None:
        """Attach labels to the span (outcome, judged count, ...)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Wall seconds between start and finish."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """Plain-dict form (the JSONL export row)."""
        row = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 9),
            "end": round(self.end, 9),
            "duration": round(self.duration, 9),
            "thread_id": self.thread_id,
        }
        if self.attrs:
            row["attrs"] = self.attrs
        return row

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, trace={self.trace_id}, "
            f"duration={self.duration * 1e6:.1f}us)"
        )


class Tracer:
    """Collects span trees from any mix of threads and event loops.

    Parameters
    ----------
    max_spans:
        Bound on retained finished spans; the oldest are dropped beyond it
        (counted in :attr:`dropped`), so a long soak cannot grow memory.
    clock:
        Monotonic clock (injectable for tests); defaults to
        :func:`time.perf_counter`. Exposed as the plain attribute
        :attr:`clock` so leaf call sites read timestamps with a single C
        call and no Python frame.
    """

    def __init__(self, max_spans: int = 100_000, clock=time.perf_counter) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.clock = clock
        self._epoch = clock()
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            f"repro-span-{id(self):x}", default=None
        )
        #: Remote parent context adopted via :meth:`adopt` — request roots
        #: opened inside it graft under a span owned by another process
        #: (the ProcServer's serve op sets it from the client's stamp).
        self._remote: contextvars.ContextVar[tuple | None] = contextvars.ContextVar(
            f"repro-remote-{id(self):x}", default=None
        )
        self.dropped = 0

    # -- recording ----------------------------------------------------------
    # span() and request() build spans inline via Span.__new__ rather than
    # sharing a helper or calling Span(...): tracing-on overhead is a
    # benchmarked budget (benchmarks/run_obs_overhead.py) and each saved
    # call frame is measurable at ~6 spans per request.
    def span(self, name: str, **attrs) -> Span:
        """Open a stage span under the current span (or as a root)."""
        current = self._current
        parent = current.get()
        span = Span.__new__(Span)
        span.name = name
        span_id = next(self._ids)
        span.span_id = span_id
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = span_id
            span.parent_id = None
        span.start = span.end = self.clock() - self._epoch
        span.thread_id = threading.get_ident()
        span.attrs = attrs or None
        span._tracer = self
        span._token = current.set(span)
        return span

    def record_leaf(self, name: str, start: float, attrs: dict | None = None) -> None:
        """Record an already-finished *leaf* stage in a single call.

        ``start`` is a raw :attr:`clock` reading taken before the stage ran
        (``t0 = tracer.clock()``); the finish instant is read here. The leaf
        parents under the current contextvar span like :meth:`span`, but is
        never installed as the current context, so :meth:`current` keeps
        answering the *parent* throughout. Use for stages that cannot open
        child spans (``embed``, ``ann_search``, ``judge``, ``remote_fetch``,
        ``evict``).

        Hot-path cost is the point: no :class:`Span` object is built here —
        the call appends one compact tuple (every field a C-level load) and
        :meth:`spans` materialises real ``Span`` objects lazily at
        export time. The span id is drawn *now*, so repeated
        materialisation is deterministic. In-situ this records a leaf in
        well under a microsecond, where eagerly building the ten-slot Span
        cost several times that with cold caches.
        """
        parent = self._current.get()
        spans = self._spans
        if len(spans) == self.max_spans:
            with self._lock:
                self.dropped += 1
        spans.append(
            (
                name,
                parent,
                next(self._ids),
                parent.thread_id if parent is not None else threading.get_ident(),
                start,
                self.clock(),
                attrs,
            )
        )

    def _materialize(self, record: tuple) -> Span:
        """Build the real :class:`Span` for one pending leaf tuple (pure —
        ids were fixed at record time, so repeated calls agree)."""
        name, parent, span_id, thread_id, start, end, attrs = record
        epoch = self._epoch
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = span_id
            parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=start - epoch,
            thread_id=thread_id,
            attrs=attrs,
        )
        span.end = end - epoch
        return span

    def request(self, name: str = STAGE_REQUEST, **attrs) -> Span:
        """Open a request *root* span (ignores any inherited parent).

        Worker threads and event-loop tasks both funnel requests through
        this, so a pooled thread's leftover context can never reparent an
        unrelated request. Inside an :meth:`adopt` block the root joins the
        remote caller's trace instead of starting a fresh one.
        """
        span = Span.__new__(Span)
        span.name = name
        span_id = next(self._ids)
        span.span_id = span_id
        remote = self._remote.get()
        if remote is not None:
            span.trace_id = remote[0]
            span.parent_id = remote[1]
        else:
            span.trace_id = span_id
            span.parent_id = None
        span.start = span.end = self.clock() - self._epoch
        span.thread_id = threading.get_ident()
        span.attrs = attrs or None
        span._tracer = self
        span._token = self._current.set(span)
        return span

    @contextmanager
    def adopt(self, ctx):
        """Adopt a remote ``[trace_id, span_id]`` parent for the duration.

        Request roots opened inside the block carry the remote trace id and
        parent under the remote span, so a front-door client's span and the
        router's request span merge into one tree when exports are viewed
        together. ``ctx=None`` is a no-op, letting call sites adopt
        unconditionally.
        """
        if ctx is None:
            yield self
            return
        token = self._remote.set((ctx[0], ctx[1]))
        try:
            yield self
        finally:
            self._remote.reset(token)

    def current(self) -> Span | None:
        """The innermost open span in this context (None outside requests)."""
        return self._current.get()

    #: Cheap pre-filter for leaf guards: truthy whenever a stage recorded
    #: *now* could possibly be kept. The base tracer keeps everything, so
    #: this is a class constant; :class:`SamplingTracer` maintains it as a
    #: count of open sampled roots. Guards read it as one attribute load
    #: before paying for the :meth:`active` method call — the difference
    #: is ~300ns/request on the unsampled path, which is most of the <1%
    #: sampled-overhead budget.
    live = True

    def sample(self) -> bool:
        """Per-request sampling gate; call before opening a request root.

        Always True here — the base tracer records everything. Engines
        gate with ``if tracer is None or not tracer.sample(): <untraced
        path>`` so an unsampled request runs the *same* branch as tracing
        off: :class:`SamplingTracer` answers False for the skipped N-1 and
        its :meth:`request` is then never called for them.
        """
        return True

    def active(self) -> bool:
        """Would a stage recorded *now* be kept?

        Always True here — the base tracer records everything. Call sites
        that pay per-stage costs *before* recording (a clock read, an attrs
        dict) guard with ``tracer is None or not tracer.live or not
        tracer.active()``: the ``live`` attribute filters out the common
        nothing-sampled case for free, and ``active()`` settles the
        per-context answer when a sampled request is open somewhere.
        """
        return True

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> list[Span]:
        """Finished spans, oldest first (a snapshot copy; ``list`` over a
        deque is a single C call, so it is safe against concurrent appends).
        Pending leaf tuples are materialised into ``Span`` objects here —
        deterministically, so repeated calls agree on ids."""
        materialize = self._materialize
        return [
            materialize(item) if type(item) is tuple else item
            for item in list(self._spans)
        ]

    def stage_summary(self) -> dict[str, dict]:
        """Per-stage aggregate: count, total/mean wall seconds."""
        totals: dict[str, list[float]] = {}
        for span in self.spans():
            totals.setdefault(span.name, []).append(span.duration)
        return {
            name: {
                "count": len(durations),
                "total": sum(durations),
                "mean": sum(durations) / len(durations),
            }
            for name, durations in sorted(totals.items())
        }

    # -- export -------------------------------------------------------------
    def export_jsonl(self, path: "str | Path") -> int:
        """Write one JSON object per finished span; returns the span count."""
        rows = [json.dumps(span.to_dict(), allow_nan=False) for span in self.spans()]
        Path(path).write_text("\n".join(rows) + ("\n" if rows else ""))
        return len(rows)

    def export_chrome(self, path: "str | Path") -> int:
        """Write a Chrome ``trace_event`` JSON file (Perfetto-compatible).

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps; the originating thread becomes the ``tid`` lane, so the
        thread pool's parallelism is visible as stacked lanes.
        """
        spans = self.spans()
        # Compact tids: Perfetto renders one lane per (pid, tid).
        tids: dict[int, int] = {}
        events = []
        for span in spans:
            tid = tids.setdefault(span.thread_id, len(tids))
            event = {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **(span.attrs or {}),
                },
            }
            events.append(event)
        for thread_id, tid in tids.items():
            # Negative thread ids are the synthetic per-shard lanes grafted
            # worker spans land on (repro.obs.distributed.graft_spans).
            lane = (
                f"shard-{-thread_id - 1}" if thread_id < 0 else f"thread-{thread_id}"
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        Path(path).write_text(json.dumps(payload, allow_nan=False))
        return len(spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self)}, dropped={self.dropped})"


class _SkipSpan:
    """Inert stand-in handed out for stage spans in unsampled contexts.

    Supports everything engines do to a real span — context-manager
    protocol, ``set(...)``, bare ``attrs`` assignment — and records
    nothing. A single module-level instance is shared (``attrs`` writes
    race harmlessly across threads: every value is discarded), so an
    unsampled request allocates zero objects in the tracer.
    """

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs = None

    def __enter__(self) -> "_SkipSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> None:
        return None

    @property
    def duration(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "Span(<unsampled>)"


_SKIP_SPAN = _SkipSpan()


class _SampledRoot(Span):
    """Root span of a sampled request.

    Identical to :class:`Span` except that closing it retires the owning
    tracer's ``live`` pre-filter count, so leaf guards fall back to the
    one-attribute-load fast path as soon as no sampled request is open.
    """

    __slots__ = ()

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        Span.__exit__(self, exc_type, exc, tb)
        with tracer._lock:
            tracer.live -= 1


class SamplingTracer(Tracer):
    """A tracer that records 1-in-``sample_every`` requests.

    The decision lives in :meth:`sample`: engines call it once per request
    (``if tracer is None or not tracer.sample():``) and take the *same*
    untraced branch as ``tracer is None`` for the skipped N-1, so an
    unsampled request pays one counter tick and nothing else at the root.
    :meth:`request` is only reached for sampled requests and always
    installs a real root span.

    Stage sites inside the pipeline cannot see that per-request decision
    directly, so they are filtered twice, cheap to exact: the ``live``
    attribute counts currently-open sampled roots (one attribute load —
    False means nothing anywhere is being traced), and :meth:`active`
    settles the per-context answer through the contextvar when some
    request *is* being sampled concurrently. Because child stages parent
    through the contextvar, everything inside an unsampled request is
    skipped automatically even ungated: :meth:`span` returns the inert
    shared skip span and :meth:`record_leaf` drops the record.

    The deterministic modulo schedule (first request sampled, then every
    Nth) keeps runs reproducible; the counter is an
    :class:`itertools.count`, atomic under the GIL, so the schedule holds
    across the thread pool too. Engine metrics are computed outside the
    tracer and stay exact at any sampling rate.

    ``sampled`` / ``skipped`` are informational counters (updates are
    benign races under threads; the schedule itself never races).
    """

    def __init__(
        self,
        sample_every: int = 100,
        max_spans: int = 100_000,
        clock=time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        super().__init__(max_spans=max_spans, clock=clock)
        self.sample_every = sample_every
        self.sampled = 0
        self.skipped = 0
        self.live = 0
        self._tick = itertools.count()

    def sample(self) -> bool:
        if next(self._tick) % self.sample_every:
            self.skipped += 1
            return False
        self.sampled += 1
        return True

    def request(self, name: str = STAGE_REQUEST, **attrs) -> Span:
        span = _SampledRoot.__new__(_SampledRoot)
        span.name = name
        span_id = next(self._ids)
        span.span_id = span_id
        remote = self._remote.get()
        if remote is not None:
            span.trace_id = remote[0]
            span.parent_id = remote[1]
        else:
            span.trace_id = span_id
            span.parent_id = None
        span.start = span.end = self.clock() - self._epoch
        span.thread_id = threading.get_ident()
        span.attrs = attrs or None
        span._tracer = self
        with self._lock:
            self.live += 1
        span._token = self._current.set(span)
        return span

    def span(self, name: str, **attrs) -> "Span | _SkipSpan":
        if self._current.get() is None:
            return _SKIP_SPAN
        return super().span(name, **attrs)

    def record_leaf(self, name: str, start: float, attrs: dict | None = None) -> None:
        if self._current.get() is None:
            return
        super().record_leaf(name, start, attrs)

    def active(self) -> bool:
        """True only inside a sampled request's span tree."""
        return self._current.get() is not None

    def __repr__(self) -> str:
        return (
            f"SamplingTracer(1/{self.sample_every}, sampled={self.sampled}, "
            f"skipped={self.skipped}, spans={len(self)})"
        )
