"""Cross-process trace propagation for the proc tier and replication links.

The in-process tracers (:mod:`repro.obs.trace`) propagate parents through a
contextvar, which stops working the moment a stage runs in another process:
the shard workers do the embed / ANN / judge work, but the router owns the
request span. This module carries the tree across the socket in three small
pieces, none of which add a syscall to the hot path:

``trace_context(tracer)``
    Router side, per op: captures the current span as a wire-safe
    ``[trace_id, span_id]`` pair (or ``None`` when nothing is being traced,
    which keeps untraced frames byte-identical to before).

:class:`WorkerTracer`
    Worker side: a :class:`~repro.obs.trace.Tracer` whose
    :meth:`~WorkerTracer.activate` installs a *synthetic* parent span built
    from a received context, so the cache's existing ``record_leaf`` call
    sites (embed / ann_search / judge / evict) work unmodified. Completed
    leaf records are drained per reply frame (:meth:`~WorkerTracer.
    drain_wire`) with **raw** ``perf_counter`` timestamps — the worker never
    needs to know the router's epoch.

``graft_spans`` / ``make_span_sink``
    Router side, per reply frame: re-bases each piggybacked record onto the
    router tracer's timeline using the per-worker clock offset estimated at
    the hello handshake (ping/pong midpoint — see
    ``WorkerPool._accept_hello``), assigns a fresh local span id, and lands
    it in the router's span deque. Worker spans render on synthetic
    ``shard-N`` lanes (negative thread ids) in the Chrome export.

Leaf records carry their *parent's* ids, so re-assigning span ids at graft
time is safe: workers only ever record leaves (no intra-worker parent/child
edges cross the wire).

``record_remote_leaf`` is the same graft for one ad-hoc span — the
replication session uses it to parent an ``apply_diff`` span under the
sending peer's ``repl_sync`` context. Peer tracers draw trace ids from
independent counters, so cross-peer id collisions are possible in a merged
export; DESIGN §16 discusses why that is accepted.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.trace import Span, Tracer


def trace_context(tracer) -> "list | None":
    """The current span as a wire-safe ``[trace_id, span_id]`` context.

    Returns ``None`` when ``tracer`` is ``None``, nothing is live (the
    :attr:`~repro.obs.trace.Tracer.live` pre-filter — one attribute load on
    the untraced path), or no span is open in this execution context, so
    callers can stamp frames with ``ctx`` unconditionally and untraced
    traffic never grows a frame field.
    """
    if tracer is None or not tracer.live:
        return None
    span = tracer._current.get()
    if span is None:
        return None
    return [span.trace_id, span.span_id]


class WorkerTracer(Tracer):
    """The shard worker's tracer: records stages under *remote* parents.

    ``live`` is an instance count of open remote activations (``0`` when no
    traced request is in the frame), so the cache/sine leaf guards
    short-circuit on one attribute load exactly like an unsampled
    :class:`~repro.obs.trace.SamplingTracer` — a worker serving untraced
    traffic pays one integer truthiness check per stage.
    """

    def __init__(self, max_spans: int = 100_000, clock=None) -> None:
        super().__init__(
            max_spans=max_spans, **({"clock": clock} if clock is not None else {})
        )
        self.live = 0

    @contextmanager
    def activate(self, ctx):
        """Run a block under a remote parent context (``None`` = untraced).

        Builds a synthetic, never-recorded parent span carrying the remote
        ids and installs it as the contextvar current, so every
        ``record_leaf`` inside the block parents under the router's span.
        """
        if ctx is None:
            yield self
            return
        # Span.__new__ + direct slot stores, not the dataclass constructor:
        # this runs once per traced request on the worker's hot path, and
        # the kwargs __init__ costs over a microsecond more (same reasoning
        # as Tracer.span / Tracer.request).
        parent = Span.__new__(Span)
        parent.name = "remote"
        parent.trace_id = ctx[0]
        parent.span_id = ctx[1]
        parent.parent_id = None
        parent.start = parent.end = 0.0
        parent.thread_id = threading.get_ident()
        parent.attrs = None
        token = self._current.set(parent)
        self.live += 1
        try:
            yield self
        finally:
            self.live -= 1
            self._current.reset(token)

    def active(self) -> bool:
        """True only inside an :meth:`activate` block with a real context."""
        return self._current.get() is not None

    def drain_wire(self) -> list:
        """Pop every pending record as codec-friendly wire rows.

        Each row is ``[name, trace_id, parent_span_id, start, end, attrs]``
        with **raw** worker-clock timestamps (no epoch subtraction — the
        router re-bases with its estimated clock offset). Records without a
        remote parent are dropped: they cannot be attributed to any router
        span.
        """
        records: list = []
        spans = self._spans
        while spans:
            try:
                item = spans.popleft()
            except IndexError:  # pragma: no cover - single-threaded worker
                break
            if type(item) is not tuple:
                continue
            name, parent, _span_id, _thread_id, start, end, attrs = item
            if parent is None:
                continue
            records.append([name, parent.trace_id, parent.span_id, start, end, attrs])
        return records


class _RemoteParent:
    """Minimal parent stand-in for grafted leaf tuples.

    ``Tracer._materialize`` only reads ``trace_id`` / ``span_id`` off a leaf
    tuple's parent, so grafting allocates this two-slot shim instead of a
    full :class:`Span` — the graft runs in the router's socket read loop,
    once per traced reply frame.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


def graft_spans(tracer, records, clock_offset: float = 0.0, shard=None) -> int:
    """Land piggybacked worker span records in the router's tracer.

    Timestamps are re-based with ``clock_offset`` (router-clock estimate of
    the worker's reading); span ids are re-drawn from the router's counter
    (safe — the records are leaves, nothing references their worker-side
    ids). ``shard`` labels every span and selects the synthetic negative
    ``thread_id`` lane the Chrome export names ``shard-N``. Returns the
    number of spans grafted.

    Hot-path shape: each record lands as the same compact leaf *tuple*
    ``record_leaf`` appends, materialised into a real :class:`Span` lazily
    at export time — eager ``Span`` construction here cost several
    microseconds per reply on the traced proc path, a measurable slice of
    the <10% overhead budget. One reply's records share a parent, so the
    stand-in is reused across consecutive rows with the same context.
    """
    if tracer is None or not records:
        return 0
    spans = tracer._spans
    max_spans = tracer.max_spans
    ids = tracer._ids
    thread_id = -(shard + 1) if shard is not None else threading.get_ident()
    parent = None
    parent_key = None
    count = 0
    for name, trace_id, parent_id, start, end, attrs in records:
        if shard is not None:
            attrs = {**attrs, "shard": shard} if attrs else {"shard": shard}
        key = (trace_id, parent_id)
        if key != parent_key:
            parent = _RemoteParent(trace_id, parent_id)
            parent_key = key
        if len(spans) == max_spans:
            with tracer._lock:
                tracer.dropped += 1
        spans.append(
            (
                name,
                parent,
                next(ids),
                thread_id,
                start + clock_offset,
                end + clock_offset,
                attrs or None,
            )
        )
        count += 1
    return count


def make_span_sink(tracer):
    """Build the ``WorkerPool.span_sink`` callable for a router tracer
    (``None`` tracer -> ``None`` sink, which disables forwarding)."""
    if tracer is None:
        return None

    def sink(shard_id: int, records, clock_offset: float) -> None:
        graft_spans(tracer, records, clock_offset=clock_offset, shard=shard_id)

    return sink


def record_remote_leaf(
    tracer, ctx, name: str, start: float, end: float | None = None, attrs=None
):
    """Record one finished span parented under a *remote* context.

    ``start``/``end`` are raw readings of ``tracer.clock`` (``end`` defaults
    to now). Used by the replication session to hang ``apply_diff`` under
    the sending peer's ``repl_sync`` span. No-op (returns ``None``) without
    a tracer or context.
    """
    if tracer is None or ctx is None:
        return None
    epoch = tracer._epoch
    if end is None:
        end = tracer.clock()
    span = Span(
        name=name,
        trace_id=ctx[0],
        span_id=next(tracer._ids),
        parent_id=ctx[1],
        start=start - epoch,
        thread_id=threading.get_ident(),
        attrs=attrs,
    )
    span.end = end - epoch
    spans = tracer._spans
    if len(spans) == tracer.max_spans:
        with tracer._lock:
            tracer.dropped += 1
    spans.append(span)
    return span
