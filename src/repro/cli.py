"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig7 --set dataset_names='("musique",)' --set n_tasks=300
    python -m repro run table5
    python -m repro run-all --quick
    python -m repro stress --shards 4 --workers 8 --queries 2000
    python -m repro stress --engine async --rate 800 --deadline 0.2
    python -m repro stress --engine proc --workers 4 --rate 800
    python -m repro stress --chaos --fault-rate 0.3 --blackout 6:10
    python -m repro stress --trace-out trace.json --metrics-out metrics.prom
    python -m repro serve --workers 4 --port 7621
    python -m repro stress --connect 127.0.0.1:7621 --rate 400
    python -m repro stress --engine sync --persist /tmp/cache-home
    python -m repro replicate --sync-interval 0.5
    python -m repro replicate --listen 7633   # region A
    python -m repro replicate --peer 127.0.0.1:7633   # region B
    python -m repro stress --engine proc --series-out series.json
    python -m repro slo --series series.json --engine proc
    python -m repro serve --workers 4 --slo

``--set key=value`` pairs are parsed with ``ast.literal_eval`` (falling back
to a plain string), so ints, floats, tuples, and booleans all work.

``stress`` exercises the real serving layers against a skewed synthetic
workload and prints wall-clock throughput — unlike the experiments, which
run on the virtual clock. ``--engine thread`` (default) drives the
closed-loop worker pool; ``--engine async`` drives the asyncio front-end
with an *open-loop* fixed arrival rate, so backpressure (``overloaded``)
and deadlines (``deadline_exceeded``) are measured honestly; ``--engine
proc`` drives the multi-process shard-worker tier the same open-loop way;
``--engine sync`` serves sequentially through the plain engine as a
baseline; ``--connect HOST:PORT`` drives a *running* ``serve`` process over
a real socket instead of building an engine in this process.

``--persist DIR`` (stress and serve) gives the cache a durable home:
warm-start from DIR's snapshot+journal, journal every mutation back, and
flush+checkpoint on graceful stop. ``replicate`` runs the cross-region
replication layer — a two-node simulation on the virtual clock by
default, or one real region of a TCP pair via ``--listen``/``--peer``.

``serve`` boots the multi-process tier behind a TCP front door and runs
until SIGTERM/SIGINT, then drains in-flight requests and exits cleanly.
Every stress arm installs the same signal handling: a TERM or Ctrl-C stops
the load loop early, finishes what's in flight, and still writes every
requested artefact (``--trace-out`` / ``--metrics-out`` / ``--series-out``).

Every arm takes the observability flags: ``--trace-out`` writes a Chrome
``trace_event`` file (open in Perfetto / chrome://tracing), ``--metrics-out``
a Prometheus text exposition of the run's counters and histograms, and
``--series-out`` a JSON time-series sampled live by the snapshot recorder.
With ``--engine proc``, ``--trace-out`` traces cross the process boundary:
worker-side embed/ann_search/judge spans ride reply frames back and land
on per-shard lanes under the router's request spans.

``slo`` evaluates burn-rate SLOs (p99 latency, served fraction, staleness)
against a ``--series-out`` dump; exit code 1 means at least one SLO is
firing. ``serve --slo`` runs the same evaluation live inside the server,
surfaced through the ``health`` op.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Callable

from repro.experiments import (
    admission_study,
    coalescing_study,
    fig1c_breakdown,
    index_study,
    judger_quality,
    freshness_study,
    fig2_zipf,
    fig3_bursts,
    fig7_skewed,
    fig8_trend,
    fig9_swebench,
    fig10_concurrency,
    fig11_breakdown,
    fig12_api_calls,
    fig13_accuracy,
    recalibration_overhead,
    table2_file_freq,
    table4_ratelimit,
    table5_cost,
    table6_lcfu,
    table7_colocation,
    tau_sweep,
    tiered_fleet,
)

#: name -> (runner, description). Names follow the paper's artefacts.
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig1c": (fig1c_breakdown.run, "Search-R1 latency breakdown"),
    "fig2": (fig2_zipf.run, "Zipfian search interest by window"),
    "fig3": (fig3_bursts.run, "bursty, correlated query patterns"),
    "table2": (table2_file_freq.run, "SWE-bench file access frequencies"),
    "fig7": (fig7_skewed.run, "skewed search workloads vs cache ratio"),
    "fig8": (fig8_trend.run, "trend-driven workload vs cache ratio"),
    "fig9": (fig9_swebench.run, "SWE-bench workload vs cache ratio"),
    "fig10": (fig10_concurrency.run, "throughput vs request concurrency"),
    "fig11": (fig11_breakdown.run, "per-request latency breakdown"),
    "fig12": (fig12_api_calls.run, "API calls and retry ratio"),
    "table4": (table4_ratelimit.run, "throughput w/ and w/o rate limit"),
    "table5": (table5_cost.run, "cost analysis across configurations"),
    "fig13": (fig13_accuracy.run, "generation quality (Exact Match)"),
    "table6": (table6_lcfu.run, "LCFU vs LRU/LFU eviction"),
    "table7": (table7_colocation.run, "co-location efficiency"),
    "recalibration": (recalibration_overhead.run, "recalibration overhead"),
    "drift": (recalibration_overhead.run_drift, "recalibration under drift"),
    "tau-sweep": (tau_sweep.run, "tau_sim x tau_lsm trade-off sweep"),
    "freshness": (freshness_study.run, "TTL aging vs stale servings"),
    "fleet": (tiered_fleet.run, "shared-L2 fleet scaling (extension)"),
    "admission": (admission_study.run, "always-admit vs doorkeeper (extension)"),
    "judger-quality": (judger_quality.run, "LSM error-rate sensitivity (extension)"),
    "coalescing": (coalescing_study.run, "flash-crowd miss coalescing (extension)"),
    "index-choice": (index_study.run, "ANN index ablation (extension)"),
}

#: Reduced-scale overrides for ``run-all --quick``.
QUICK_OVERRIDES: dict[str, dict] = {
    "fig1c": {"n_tasks": 40},
    "fig3": {"duration": 240.0},
    "table2": {"n_issues": 200},
    "fig7": {"dataset_names": ("musique",), "cache_ratios": (0.4,), "n_tasks": 300},
    "fig8": {"cache_ratios": (0.4,), "duration": 200.0},
    "fig9": {"cache_ratios": (0.4,), "n_issues": 120},
    "fig10": {"concurrency_levels": (1, 8), "n_tasks": 300},
    "fig11": {"n_requests": 120},
    "fig12": {"n_tasks": 400},
    "table4": {"n_tasks": 300},
    "table5": {"n_tasks": 200},
    "fig13": {"dataset_names": ("strategyqa",), "n_tasks": 150},
    "table6": {"n_tasks": 400, "trials": 2},
    "table7": {"n_tasks": 200},
    "recalibration": {"n_tasks": 300},
    "drift": {"phase_tasks": 200},
    "tau-sweep": {
        "tau_sim_values": (0.7, 0.99),
        "tau_lsm_values": (0.02, 0.9),
        "n_queries": 300,
    },
    "freshness": {"n_queries": 500},
    "fleet": {"node_counts": (1, 4), "n_queries": 400},
    "admission": {"n_queries": 600},
    "judger-quality": {"flip_rates": (0.0, 0.1), "n_tasks": 150},
    "coalescing": {"n_clients": 60},
    "index-choice": {"index_kinds": ("flat", "pq"), "n_queries": 800},
}


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[key] = value
    return overrides


def _command_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    print("Available experiments (python -m repro run <name>):\n")
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _command_run(name: str, overrides: dict) -> int:
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: python -m repro list")
        return 2
    runner, _ = EXPERIMENTS[name]
    result = runner(**overrides)
    result.print_table()
    return 0


def _stress_queries(arguments) -> list:
    import numpy as np

    from repro.core import Query

    rng = np.random.default_rng(arguments.seed)
    # Zipf-skewed draws over a fixed fact population: the repeats that make
    # caching (and single-flight) matter, with a long tail of cold misses.
    ranks = np.minimum(
        rng.zipf(arguments.zipf_s, size=arguments.queries), arguments.population
    )
    return [
        Query(f"stress fact number {rank} of the universe", fact_id=f"F{rank}")
        for rank in ranks
    ]


def _parse_blackouts(specs: list[str]) -> list[tuple[float, float]]:
    """Parse repeated ``--blackout START:END`` windows (simulated seconds)."""
    windows = []
    for spec in specs:
        start_raw, sep, end_raw = spec.partition(":")
        if not sep:
            raise SystemExit(f"--blackout expects START:END, got {spec!r}")
        try:
            windows.append((float(start_raw), float(end_raw)))
        except ValueError:
            raise SystemExit(f"--blackout expects numbers, got {spec!r}") from None
    return windows


def _chaos_setup(arguments):
    """Build the (fault_injector, resilience) pair for ``stress --chaos``.

    Returns ``(None, None)`` when chaos is off so the stress path stays
    byte-identical to the pre-fault-tolerance behaviour. The fault rate is
    split 2/3 transient errors + 1/3 timeouts, matching the chaos benchmark.
    """
    if not arguments.chaos:
        return None, None
    from repro.core.resilience import CircuitBreaker, ResilienceManager
    from repro.network import FaultInjector

    injector = FaultInjector(
        error_rate=arguments.fault_rate * 2.0 / 3.0,
        timeout_rate=arguments.fault_rate / 3.0,
        blackouts=_parse_blackouts(arguments.blackout),
        seed=arguments.seed,
    )
    resilience = ResilienceManager(
        breaker=CircuitBreaker(window=16, min_samples=8, open_seconds=0.5),
        negative_ttl=0.3,
        stale_serve=not arguments.no_stale,
        seed=arguments.seed,
    )
    return injector, resilience


def _stop_on_signals():
    """A ``threading.Event`` set by SIGINT/SIGTERM plus a restore callback.

    Lets Ctrl-C or a supervisor's TERM end a stress run early but *cleanly*:
    the load loop drains in-flight work, the report covers what actually
    ran, and the observability artefacts still land on disk.
    """
    import signal
    import threading

    stop = threading.Event()
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, lambda *_: stop.set())
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    def restore() -> None:
        for sig, old in previous.items():
            signal.signal(sig, old)

    return stop, restore


def _async_stop(loop):
    """The asyncio twin of :func:`_stop_on_signals`: an ``asyncio.Event``
    set by SIGINT/SIGTERM on ``loop``, plus a remove callback."""
    import asyncio
    import signal

    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    def remove() -> None:
        for sig in installed:
            loop.remove_signal_handler(sig)

    return stop, remove


def _engine_breaker(engine):
    """The circuit breaker behind a serving engine, or None."""
    inner = getattr(engine, "engine", engine)
    return getattr(inner.resilience, "breaker", None)


def _obs_setup(arguments, engine, label):
    """Build the observability rig requested by the stress flags.

    Returns ``(tracer, registry, instrument, recorder)``, with None for any
    piece not requested. The tracer is attached to ``engine`` immediately;
    the snapshot recorder starts its sampling thread immediately.
    """
    tracer = registry = instrument = recorder = None
    if arguments.trace_out:
        if getattr(arguments, "trace_sample", 1) > 1:
            from repro.obs import SamplingTracer

            tracer = SamplingTracer(sample_every=arguments.trace_sample)
        else:
            from repro.obs import Tracer

            tracer = Tracer()
        engine.set_tracer(tracer)
    if arguments.metrics_out or arguments.series_out:
        from repro.obs import EngineInstrument, MetricsRegistry

        registry = MetricsRegistry()
        instrument = EngineInstrument(registry, label)
        breaker = _engine_breaker(engine)
        if breaker is not None:
            instrument.wire_breaker(breaker)
        shard_breakers = getattr(engine, "shard_breakers", None)
        if shard_breakers:
            instrument.wire_shard_breakers(shard_breakers)
    if arguments.series_out:
        from repro.obs import SnapshotRecorder

        recorder = SnapshotRecorder(
            registry, interval=arguments.snapshot_interval
        )
        instrument.install_probes(
            recorder,
            engine.metrics,
            cache=engine.cache,
            inflight_fn=(
                (lambda: engine.inflight)
                if hasattr(type(engine), "inflight")
                else None
            ),
            breaker=_engine_breaker(engine),
        )
        recorder.start()
    return tracer, registry, instrument, recorder


def _obs_finish(arguments, engine, tracer, registry, instrument, recorder) -> None:
    """Flush the observability artefacts and print where they landed."""
    if recorder is not None:
        recorder.stop()  # takes a final sample, syncing the registry
        recorder.save_json(arguments.series_out)
        print(
            f"  series written to {arguments.series_out} "
            f"({len(recorder.times())} samples)"
        )
    if instrument is not None:
        instrument.sync(
            engine.metrics,
            cache=engine.cache,
            inflight=getattr(engine, "inflight", None),
        )
        if tracer is not None:
            # Request-span trace ids become latency-histogram exemplars, so
            # a hot bucket links back to concrete traces in --trace-out.
            instrument.attach_exemplars(tracer)
    if arguments.metrics_out:
        with open(arguments.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.render())
        print(
            f"  metrics written to {arguments.metrics_out} "
            f"({len(registry)} families)"
        )
    if tracer is not None:
        tracer.export_chrome(arguments.trace_out)
        sampling = (
            f", sampled={tracer.sampled}/{tracer.sampled + tracer.skipped}"
            if hasattr(tracer, "sampled")
            else ""
        )
        print(
            f"  trace written to {arguments.trace_out} "
            f"({len(tracer.spans())} spans, dropped={tracer.dropped}{sampling})"
        )


def _maybe_profile(arguments):
    """Context manager wrapping the serving loop in cProfile when
    ``--profile`` is set; prints the top 25 functions by cumulative time."""
    import contextlib

    if not getattr(arguments, "profile", False):
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def profiled():
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            print("profile: top 25 functions by cumulative time")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)

    return profiled()


def _persist_banner(arguments, engine) -> None:
    """One line on what ``--persist`` recovered (or that it started cold)."""
    if not getattr(arguments, "persist", None):
        return
    cache = getattr(engine, "cache", None)
    report = getattr(cache, "restore_report", None)
    if report is not None:
        if report.cold:
            state = "cold start"
        else:
            state = (
                f"warm start: {report.restored_items} items "
                f"(snapshot={report.snapshot_restored}, "
                f"journal_replayed={report.journal_applied})"
            )
        print(f"persist: {arguments.persist} — {state}")
        return
    reports = getattr(cache, "restore_reports", None)
    if reports is not None:
        restored = sum(r.restored_items for r in reports)
        if all(r.cold for r in reports):
            state = "cold start"
        else:
            replayed = sum(r.journal_applied for r in reports)
            state = (
                f"warm start: {restored} items across {len(reports)} shards "
                f"(journal_replayed={replayed})"
            )
        print(f"persist: {arguments.persist} — {state}")
        return
    # Proc tier: each worker owns its shard's store and reports via stats.
    print(f"persist: {arguments.persist} (per-worker shard journals)")


def _persist_close(arguments, engine) -> None:
    """Graceful-stop flush: checkpoint and close the cache's store, if any.

    The proc tier needs nothing here — each worker flushes its own journal
    in its SIGTERM/shutdown path.
    """
    if not getattr(arguments, "persist", None):
        return
    store = getattr(getattr(engine, "cache", None), "persistent_store", None)
    if store is not None:
        store.close(checkpoint=True)
        print(f"persist: checkpointed to {arguments.persist}")


def _print_degraded(metrics) -> None:
    """One line of fault-tolerance counters (shared by both engines)."""
    print(
        f"  stale_hits={metrics.stale_hits} "
        f"breaker_open_rejects={metrics.breaker_open_rejects} "
        f"negative_cache_hits={metrics.negative_cache_hits} "
        f"background_refreshes={metrics.background_refreshes} "
        f"failed={metrics.failed_requests}"
    )


def _command_stress(arguments) -> int:
    """Wall-clock stress: sequential baseline, thread pool (closed loop),
    asyncio (open loop), multi-process shard workers (open loop), or a
    socket client against a running ``serve`` process."""
    if arguments.connect:
        return _stress_connect(arguments)
    if arguments.engine == "sync":
        return _stress_sync(arguments)
    if arguments.engine == "async":
        return _stress_async(arguments)
    if arguments.engine == "proc":
        return _stress_proc(arguments)
    from repro.factory import build_concurrent_engine, build_remote

    queries = _stress_queries(arguments)
    injector, resilience = _chaos_setup(arguments)
    engine = build_concurrent_engine(
        build_remote(seed=arguments.seed, fault_injector=injector),
        seed=arguments.seed,
        shards=arguments.shards,
        workers=arguments.workers,
        io_pause_scale=arguments.io_scale,
        resilience=resilience,
        judge_spin=arguments.judge_spin,
        persist_dir=arguments.persist,
        fsync_every=arguments.fsync_every,
    )
    _persist_banner(arguments, engine)
    obs = _obs_setup(arguments, engine, "thread")
    stop, restore = _stop_on_signals()
    try:
        with engine:
            with _maybe_profile(arguments):
                report = engine.run_closed_loop(queries, time_step=0.01, stop=stop)
        print(
            f"engine=thread workers={report.workers} shards={arguments.shards} "
            f"requests={report.requests}"
        )
        if stop.is_set():
            print(f"  stopped early by signal ({report.requests}/{len(queries)})")
        print(
            f"  wall={report.wall_seconds:.3f}s "
            f"throughput={report.throughput_rps:.1f} req/s"
        )
        print(
            f"  hit_rate={report.hit_rate:.3f} hits={report.hits} "
            f"misses={report.misses} coalesced={report.coalesced_misses} "
            f"remote_calls={report.remote_calls}"
        )
        if arguments.chaos:
            print(
                f"  served_fraction={report.served_fraction:.4f} "
                f"stale_served={report.stale_served} failed={report.failed}"
            )
            _print_degraded(engine.metrics)
        per_shard = engine.cache.stats_per_shard()
        inserts = [stats.inserts for stats in per_shard]
        print(f"  per-shard inserts={inserts} (total={sum(inserts)})")
    finally:
        restore()
        _obs_finish(arguments, engine, *obs)
        _persist_close(arguments, engine)
    return 0


def _stress_sync(arguments) -> int:
    """Sequential baseline: the plain engine, one request at a time."""
    import time

    from repro.factory import build_asteria_engine, build_remote

    queries = _stress_queries(arguments)
    injector, resilience = _chaos_setup(arguments)
    engine = build_asteria_engine(
        build_remote(seed=arguments.seed, fault_injector=injector),
        seed=arguments.seed,
        resilience=resilience,
        judge_spin=arguments.judge_spin,
        persist_dir=arguments.persist,
        fsync_every=arguments.fsync_every,
    )
    _persist_banner(arguments, engine)
    obs = _obs_setup(arguments, engine, "sync")
    stop, restore = _stop_on_signals()
    served = 0
    begin = time.perf_counter()
    try:
        with _maybe_profile(arguments):
            for i, query in enumerate(queries):
                if stop.is_set():
                    break
                engine.handle(query, now=i * 0.01)
                served += 1
        wall = time.perf_counter() - begin
        metrics = engine.metrics
        print(f"engine=sync requests={served}")
        if stop.is_set():
            print(f"  stopped early by signal ({served}/{len(queries)})")
        print(
            f"  wall={wall:.3f}s "
            f"throughput={served / wall:.1f} req/s"
            if wall > 0
            else "  wall=0.000s"
        )
        print(
            f"  hit_rate={metrics.hit_rate:.3f} hits={metrics.hits} "
            f"misses={metrics.misses} remote_calls={engine.remote.calls}"
        )
        print(
            f"  p50_sim={metrics.total_latency.p50 * 1000:.2f}ms "
            f"p99_sim={metrics.total_latency.p99 * 1000:.2f}ms"
        )
        if arguments.chaos:
            _print_degraded(metrics)
    finally:
        restore()
        _obs_finish(arguments, engine, *obs)
        _persist_close(arguments, engine)
    return 0


def _stress_async(arguments) -> int:
    """Open-loop (fixed arrival rate) stress of the asyncio serving layer."""
    import asyncio

    from repro.factory import build_async_engine, build_remote
    from repro.serving.aio import run_open_loop

    queries = _stress_queries(arguments)
    injector, resilience = _chaos_setup(arguments)
    engine = build_async_engine(
        build_remote(seed=arguments.seed, fault_injector=injector),
        seed=arguments.seed,
        shards=arguments.shards,
        io_pause_scale=arguments.io_scale,
        max_inflight=arguments.max_inflight,
        default_deadline=arguments.deadline,
        resilience=resilience,
        judge_spin=arguments.judge_spin,
        persist_dir=arguments.persist,
        fsync_every=arguments.fsync_every,
    )
    _persist_banner(arguments, engine)
    obs = _obs_setup(arguments, engine, "async")

    async def runner():
        stop, remove = _async_stop(asyncio.get_running_loop())
        try:
            return await run_open_loop(
                engine, queries, rate=arguments.rate, time_step=0.01, stop=stop
            )
        finally:
            remove()

    try:
        with _maybe_profile(arguments):
            report = asyncio.run(runner())
        metrics = engine.metrics
        print(
            f"engine=async rate={arguments.rate:.0f}/s shards={arguments.shards} "
            f"requests={report.requests} max_inflight={arguments.max_inflight}"
        )
        if report.requests < len(queries):
            print(
                f"  stopped early by signal ({report.requests}/{len(queries)})"
            )
        print(
            f"  wall={report.wall_seconds:.3f}s "
            f"throughput={report.throughput_rps:.1f} req/s "
            f"peak_inflight_fetches={engine.remote.max_inflight}"
        )
        print(
            f"  completed={report.completed} overloaded={report.overloaded} "
            f"deadline_exceeded={report.deadline_exceeded}"
        )
        print(
            f"  hit_rate={report.hit_rate:.3f} hits={report.hits} "
            f"misses={report.misses} coalesced={report.coalesced_misses} "
            f"remote_calls={report.remote_calls} hedged={metrics.hedged_fetches}"
        )
        print(
            f"  p50_wall={report.p50_wall * 1000:.2f}ms "
            f"p99_wall={report.p99_wall * 1000:.2f}ms"
        )
        if arguments.chaos:
            print(
                f"  served_fraction={report.served_fraction:.4f} "
                f"stale_served={report.stale_served} failed={report.failed}"
            )
            _print_degraded(metrics)
    finally:
        _obs_finish(arguments, engine, *obs)
        _persist_close(arguments, engine)
    return 0


def _stress_proc(arguments) -> int:
    """Open-loop stress of the multi-process shard-worker tier: ``--workers``
    processes each own one cache shard; the router in this process does the
    fetching, single-flight, and metric accounting."""
    import asyncio

    from repro.factory import build_proc_engine, build_remote
    from repro.serving.aio import run_open_loop

    queries = _stress_queries(arguments)
    injector, resilience = _chaos_setup(arguments)
    proc_faults = None
    if arguments.chaos_workers:
        from repro.serving.proc import ProcFaultInjector

        kill_at = arguments.kill_at
        if kill_at is None:
            kill_at = max(1, len(queries) // 3)
        proc_faults = ProcFaultInjector(
            kill_shard=arguments.kill_shard, kill_at=kill_at, seed=arguments.seed
        )
    engine = build_proc_engine(
        build_remote(seed=arguments.seed, fault_injector=injector),
        seed=arguments.seed,
        workers=arguments.workers,
        io_pause_scale=arguments.io_scale,
        max_inflight=arguments.max_inflight,
        default_deadline=arguments.deadline,
        batch_window=arguments.batch_window,
        batch_max=arguments.batch_max,
        codec=arguments.codec,
        judge_spin=arguments.judge_spin,
        resilience=resilience,
        persist_dir=arguments.persist,
        fsync_every=arguments.fsync_every,
        supervise=not arguments.no_supervise,
        fault_domains=not arguments.no_fault_domains,
        proc_faults=proc_faults,
    )
    _persist_banner(arguments, engine)
    obs = _obs_setup(arguments, engine, "proc")

    async def runner():
        stop, remove = _async_stop(asyncio.get_running_loop())
        try:
            return await run_open_loop(
                engine, queries, rate=arguments.rate, time_step=0.01, stop=stop
            )
        finally:
            remove()
            supervisor = engine.pool.supervisor
            if proc_faults is not None and supervisor is not None:
                # Let an in-flight respawn land so the chaos summary reports
                # the recovery, not a snapshot taken mid-respawn.
                await supervisor.settle()
            await engine.aclose()

    try:
        with _maybe_profile(arguments):
            report = asyncio.run(runner())
        metrics = engine.metrics
        print(
            f"engine=proc workers={arguments.workers} "
            f"rate={arguments.rate:.0f}/s requests={report.requests} "
            f"max_inflight={arguments.max_inflight} codec={arguments.codec}"
        )
        if report.requests < len(queries):
            print(
                f"  stopped early by signal ({report.requests}/{len(queries)})"
            )
        print(
            f"  wall={report.wall_seconds:.3f}s "
            f"throughput={report.throughput_rps:.1f} req/s "
            f"peak_inflight_fetches={engine.remote.max_inflight}"
        )
        print(
            f"  completed={report.completed} overloaded={report.overloaded} "
            f"deadline_exceeded={report.deadline_exceeded}"
        )
        print(
            f"  hit_rate={report.hit_rate:.3f} hits={report.hits} "
            f"misses={report.misses} coalesced={report.coalesced_misses} "
            f"remote_calls={report.remote_calls} hedged={metrics.hedged_fetches}"
        )
        print(
            f"  p50_wall={report.p50_wall * 1000:.2f}ms "
            f"p99_wall={report.p99_wall * 1000:.2f}ms"
        )
        if arguments.chaos:
            print(
                f"  served_fraction={report.served_fraction:.4f} "
                f"stale_served={report.stale_served} failed={report.failed}"
            )
            _print_degraded(metrics)
        if proc_faults is not None:
            chaos = proc_faults.summary()
            print(
                f"  chaos: worker_kills={chaos['kills']} "
                f"worker_restarts={metrics.worker_restarts} "
                f"shard_down_fetches={metrics.shard_down_fetches} "
                f"served_fraction={report.served_fraction:.4f}"
            )
            print(
                f"  shard_breakers={[b.state for b in engine.shard_breakers]}"
            )
        inserts = [client.last_stats[0] for client in engine.pool.clients]
        print(f"  per-shard inserts={inserts} (total={sum(inserts)})")
    finally:
        _obs_finish(arguments, engine, *obs)
    return 0


def _stress_connect(arguments) -> int:
    """Open-loop stress over a real socket against a running
    ``python -m repro serve`` process (no engine in this process)."""
    import asyncio

    from repro.serving.proc.client import ProcClient, run_open_loop_socket

    host, _, port_raw = arguments.connect.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_raw)
    except ValueError:
        raise SystemExit(
            f"--connect expects HOST:PORT, got {arguments.connect!r}"
        ) from None
    queries = _stress_queries(arguments)

    async def runner():
        client = await ProcClient.connect(host, port, codec=arguments.codec)
        stop, remove = _async_stop(asyncio.get_running_loop())
        try:
            report = await run_open_loop_socket(
                client,
                queries,
                rate=arguments.rate,
                time_step=0.01,
                deadline=arguments.deadline,
                stop=stop,
            )
            health = await client.health()
            return report, health
        finally:
            remove()
            await client.aclose()

    report, health = asyncio.run(runner())
    print(f"engine=socket target={host}:{port} requests={report['requests']}")
    if report["requests"] < len(queries):
        print(
            f"  stopped early by signal ({report['requests']}/{len(queries)})"
        )
    print(
        f"  wall={report['wall_seconds']:.3f}s "
        f"throughput={report['throughput_rps']:.1f} req/s"
    )
    print(
        f"  served={report['served']} "
        f"served_fraction={report['served_fraction']:.4f} "
        f"statuses={report['statuses']} reconnects={report['reconnects']}"
    )
    shards = f" shards={health['shards']}" if "shards" in health else ""
    print(
        f"  server: workers={health['workers']} requests={health['requests']} "
        f"inflight={health['inflight']} usage={health['usage']} "
        f"worker_restarts={health.get('worker_restarts', 0)}{shards}"
    )
    return 0


def _command_serve(arguments) -> int:
    """Boot the multi-process socket server; run until SIGTERM/SIGINT, then
    drain in-flight requests, stop the workers, and exit 0."""
    import asyncio

    from repro.factory import build_proc_engine, build_remote
    from repro.serving.proc.server import ProcServer

    engine = build_proc_engine(
        build_remote(seed=arguments.seed),
        seed=arguments.seed,
        workers=arguments.workers,
        io_pause_scale=arguments.io_scale,
        max_inflight=arguments.max_inflight,
        default_deadline=arguments.deadline,
        batch_window=arguments.batch_window,
        batch_max=arguments.batch_max,
        codec=arguments.codec,
        judge_spin=arguments.judge_spin,
        persist_dir=arguments.persist,
        fsync_every=arguments.fsync_every,
        supervise=not arguments.no_supervise,
        fault_domains=not arguments.no_fault_domains,
    )
    _persist_banner(arguments, engine)
    slo_engine = recorder = None
    if arguments.slo:
        from repro.obs import (
            EngineInstrument,
            MetricsRegistry,
            SLOEngine,
            SnapshotRecorder,
            default_slos,
        )

        registry = MetricsRegistry()
        instrument = EngineInstrument(registry, "proc")
        recorder = SnapshotRecorder(registry, interval=arguments.slo_interval)
        instrument.install_probes(
            recorder,
            engine.metrics,
            cache=engine.cache,
            inflight_fn=lambda: engine.inflight,
            breaker=_engine_breaker(engine),
        )
        recorder.start()
        slo_engine = SLOEngine(
            default_slos("proc"), recorder=recorder, registry=registry
        )
    server = ProcServer(
        engine,
        host=arguments.host,
        port=arguments.port,
        codec=arguments.codec,
        slo=slo_engine,
    )

    async def runner():
        await server.start()
        print(
            f"serving on {server.host}:{server.port} "
            f"workers={arguments.workers} codec={arguments.codec} "
            f"slo={'on' if slo_engine is not None else 'off'} "
            f"(SIGTERM/SIGINT drains and exits)",
            flush=True,
        )
        await server.run()

    try:
        asyncio.run(runner())
    finally:
        if recorder is not None:
            recorder.stop(final_sample=False)
    metrics = engine.metrics
    print(
        f"drained: requests={server.requests_served} "
        f"hit_rate={metrics.hit_rate:.3f} hits={metrics.hits} "
        f"misses={metrics.misses} coalesced={metrics.coalesced_misses}"
    )
    return 0


def _command_slo(arguments) -> int:
    """Evaluate the stock burn-rate SLOs against a ``--series-out`` dump.

    Exit codes: 0 all quiet, 1 at least one SLO firing, 2 unusable input
    (missing file, bad JSON, no samples)."""
    import json

    from repro.obs import default_slos, evaluate_slos, format_statuses

    try:
        with open(arguments.series, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"slo: cannot read series file {arguments.series!r}: {exc}")
        return 2
    if not isinstance(snapshot, dict) or not snapshot.get("t"):
        print(f"slo: {arguments.series!r} has no samples to evaluate")
        return 2
    specs = default_slos(
        engine=arguments.engine,
        p99_threshold=arguments.p99_threshold,
        served_threshold=arguments.served_threshold,
        stale_threshold=arguments.stale_threshold,
        fast_window=arguments.fast_window,
        slow_window=arguments.slow_window,
    )
    statuses = evaluate_slos(specs, snapshot)
    evaluated = [s for s in statuses if s.slow_samples > 0]
    print(
        f"slo: {len(snapshot['t'])} samples, engine={arguments.engine}, "
        f"{len(evaluated)}/{len(statuses)} series present"
    )
    print(format_statuses(statuses))
    if not evaluated:
        print(
            "slo: none of the SLO series exist in this dump "
            "(was it recorded with --series-out for this engine?)"
        )
        return 2
    firing = [status.name for status in statuses if status.firing]
    if firing:
        print(f"slo: FIRING: {', '.join(firing)}")
        return 1
    return 0


def _command_replicate(arguments) -> int:
    """Cross-region replication: a local two-node simulation by default, or
    one real region of a pair with ``--listen PORT`` / ``--peer HOST:PORT``."""
    if arguments.peer and arguments.listen is not None:
        raise SystemExit("--peer and --listen are mutually exclusive")
    if arguments.peer is None and arguments.listen is None:
        return _replicate_local(arguments)
    return _replicate_socket(arguments)


def _replicate_local(arguments) -> int:
    """Two in-process regions on the simulated clock, exchanging diffs
    through asymmetric simulated WAN links; prints the convergence curve."""
    from repro.factory import build_asteria_engine, build_remote
    from repro.store.replication import ReplicaNode, ReplicationDriver

    seed = arguments.seed if arguments.seed is not None else 0
    arguments.seed = seed
    queries_a = _stress_queries(arguments)
    arguments.seed = seed + 1  # different draw order, same fact population
    queries_b = _stress_queries(arguments)
    engine_a = build_asteria_engine(build_remote(seed=seed), seed=seed)
    engine_b = build_asteria_engine(build_remote(seed=seed), seed=seed)
    node_a = ReplicaNode("A", engine_a.cache)
    node_b = ReplicaNode("B", engine_b.cache)
    driver = ReplicationDriver(
        node_a,
        node_b,
        sync_interval=arguments.sync_interval,
        latency_ab=arguments.latency_ab,
        latency_ba=arguments.latency_ba,
        codec=arguments.codec,
    )
    time_step = 0.01
    total = max(len(queries_a), len(queries_b))
    sample_every = max(1, total // 8)
    print(
        f"replicate (local sim): {total} queries/region "
        f"sync_interval={arguments.sync_interval}s "
        f"latency A->B={arguments.latency_ab}s B->A={arguments.latency_ba}s"
    )
    for i in range(total):
        now = i * time_step
        if i < len(queries_a):
            engine_a.handle(queries_a[i], now=now)
        if i < len(queries_b):
            engine_b.handle(queries_b[i], now=now)
        driver.tick(now)
        if i and i % sample_every == 0:
            sample = driver.agreement()
            print(
                f"  t={sample.t:7.2f}s agreement={sample.agreement:.3f} "
                f"union={sample.union_keys} stale={sample.stale_keys} "
                f"max_staleness={sample.max_staleness:.2f}s"
            )
    driver.drain(total * time_step)
    final = driver.agreement()
    print(
        f"  final: agreement={final.agreement:.3f} union={final.union_keys} "
        f"stale={final.stale_keys}"
    )
    print(
        f"  link A->B: frames={driver.link_ab.frames_sent} "
        f"bytes={driver.link_ab.bytes_sent}; "
        f"link B->A: frames={driver.link_ba.frames_sent} "
        f"bytes={driver.link_ba.bytes_sent}"
    )
    for node in (node_a, node_b):
        stats = node.stats()
        print(
            f"  node {stats['node']}: items={len(node.cache)} "
            f"out={stats['records_out']} in={stats['records_in']} "
            f"applied_upserts={stats['applied_upserts']} "
            f"invalidations={stats['applied_invalidations']} "
            f"lww_rejects={stats['lww_rejects']}"
        )
    return 0 if final.agreement == 1.0 else 1


def _replicate_socket(arguments) -> int:
    """One region of a real pair: serve its own workload, exchange diffs
    with the peer process over TCP, score convergence via digest exchange."""
    from repro.factory import build_asteria_engine, build_remote
    from repro.store import replnet
    from repro.store.replication import ReplicaNode

    listening = arguments.listen is not None
    seed = (
        arguments.seed
        if arguments.seed is not None
        else (0 if listening else 1)
    )
    arguments.seed = seed
    node_id = arguments.node_id or ("A" if listening else "B")
    queries = _stress_queries(arguments)
    engine = build_asteria_engine(build_remote(seed=seed), seed=seed)
    node = ReplicaNode(node_id, engine.cache)
    workload = (
        (lambda now, query=query: engine.handle(query, now=now))
        for query in queries
    )
    stop, restore = _stop_on_signals()
    try:
        if listening:
            server = replnet.open_listener(arguments.host, arguments.listen)
            port = server.getsockname()[1]
            print(
                f"replica {node_id} listening on {arguments.host}:{port} "
                f"(waiting for --peer)",
                flush=True,
            )
            sock = replnet.accept_peer(server, stop=stop)
            if sock is None:
                print("no peer connected; exiting")
                return 1
        else:
            host, _, port_raw = arguments.peer.rpartition(":")
            host = host or "127.0.0.1"
            try:
                port = int(port_raw)
            except ValueError:
                raise SystemExit(
                    f"--peer expects HOST:PORT, got {arguments.peer!r}"
                ) from None
            sock = replnet.connect_peer(host, port)
        report = replnet.replicate_session(
            node,
            sock,
            workload=workload,
            sync_interval=arguments.sync_interval,
            codec=arguments.codec,
            stop=stop,
            pace=arguments.pace,
        )
    finally:
        restore()
    print(
        f"replica {report['node']} <-> peer {report['peer']}: "
        f"steps={report['steps']} items={report['items']} "
        f"frames out={report['frames_out']} in={report['frames_in']}"
    )
    stats = report["replication"]
    print(
        f"  records out={stats['records_out']} in={stats['records_in']} "
        f"applied_upserts={stats['applied_upserts']} "
        f"invalidations={stats['applied_invalidations']} "
        f"lww_rejects={stats['lww_rejects']}"
    )
    agreement = report["agreement"]
    if agreement is None:
        print("  convergence: peer left before the digest exchange")
        return 1
    print(
        f"  convergence: agreement={agreement['agreement']:.3f} "
        f"union={agreement['union_keys']} stale={agreement['stale_keys']}"
    )
    return 0 if agreement["agreement"] == 1.0 else 1


def _command_run_all(quick: bool) -> int:
    for name, (runner, _) in EXPERIMENTS.items():
        overrides = QUICK_OVERRIDES.get(name, {}) if quick else {}
        result = runner(**overrides)
        result.print_table()
    return 0


def _add_persist_arguments(parser) -> None:
    """``--persist`` flags shared by the stress and serve arms."""
    parser.add_argument(
        "--persist",
        default=None,
        metavar="DIR",
        help="durable cache home: warm-start from DIR's snapshot+journal "
        "and journal every mutation back to it (sharded engines use one "
        "shard_NN subdirectory per shard)",
    )
    parser.add_argument(
        "--fsync-every",
        type=int,
        default=8,
        metavar="N",
        help="fsync the journal every N records (default 8; kill -9 loses "
        "at most the last unfsynced batch)",
    )


def _add_proc_arguments(parser) -> None:
    """Flags shared by every arm that can touch the proc tier (plus
    ``--judge-spin``, which all engines honour)."""
    parser.add_argument(
        "--judge-spin",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="burn ~SECONDS of GIL-holding CPU inside every judge call "
        "(makes the judge stage honestly CPU-bound; default 0 = off)",
    )
    parser.add_argument(
        "--codec",
        choices=("pickle", "msgpack"),
        default="pickle",
        help="wire serializer for the proc tier (msgpack requires the "
        "optional dependency; default pickle)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-shard lookup accumulation window before a frame ships "
        "(default 0: every lookup goes out on the next loop tick)",
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=16,
        help="lookups per shard frame before the window flushes early "
        "(default 16)",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable the worker supervisor (a dead shard worker stays "
        "dead; per-shard breakers still degrade its requests)",
    )
    parser.add_argument(
        "--no-fault-domains",
        action="store_true",
        help="disable per-shard fault isolation (a worker death becomes an "
        "engine-level failure, the pre-supervision behaviour)",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("name", help="experiment name (see `list`)")
    run_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a runner keyword argument (repeatable)",
    )
    all_parser = commands.add_parser("run-all", help="run every experiment")
    all_parser.add_argument(
        "--quick", action="store_true", help="reduced-scale sweep"
    )
    stress_parser = commands.add_parser(
        "stress", help="wall-clock stress of the concurrent serving layer"
    )
    stress_parser.add_argument(
        "--engine",
        choices=("sync", "thread", "threads", "async", "proc"),
        default="thread",
        help="sync: sequential baseline; thread (default; 'threads' is an "
        "alias): closed-loop worker pool; async: open-loop asyncio "
        "front-end; proc: open-loop multi-process shard workers "
        "(--workers = process count)",
    )
    stress_parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive a running `python -m repro serve` over a real socket "
        "instead of building an engine (open loop at --rate)",
    )
    stress_parser.add_argument(
        "--shards", type=int, default=4, help="cache shard count (default 4)"
    )
    stress_parser.add_argument(
        "--workers", type=int, default=8, help="serving worker threads (default 8)"
    )
    stress_parser.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="async open-loop arrival rate, requests/s (default 500)",
    )
    stress_parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="async admission-queue depth before overload rejection "
        "(default 256)",
    )
    stress_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="async per-request deadline in wall seconds (default none)",
    )
    stress_parser.add_argument(
        "--queries", type=int, default=2000, help="requests to serve (default 2000)"
    )
    stress_parser.add_argument(
        "--population",
        type=int,
        default=256,
        help="distinct facts in the workload (default 256)",
    )
    stress_parser.add_argument(
        "--zipf-s", type=float, default=1.3, help="Zipf skew exponent (default 1.3)"
    )
    stress_parser.add_argument(
        "--io-scale",
        type=float,
        default=0.02,
        help="real seconds slept per simulated remote-latency second "
        "(default 0.02: a 0.4 s fetch blocks ~8 ms of wall clock)",
    )
    stress_parser.add_argument(
        "--chaos",
        action="store_true",
        help="inject remote faults and enable the resilience layer "
        "(circuit breaker, negative cache, stale serving)",
    )
    stress_parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.3,
        help="total fault probability per fetch under --chaos, split 2/3 "
        "transient errors + 1/3 timeouts (default 0.3)",
    )
    stress_parser.add_argument(
        "--blackout",
        action="append",
        default=[],
        metavar="START:END",
        help="simulated-time window where every fetch fails (repeatable)",
    )
    stress_parser.add_argument(
        "--no-stale",
        action="store_true",
        help="disable stale serving under --chaos (degraded misses fail "
        "instead of answering from the last-known-good store)",
    )
    stress_parser.add_argument(
        "--chaos-workers",
        action="store_true",
        help="proc engine only: SIGKILL a shard worker mid-run and report "
        "how the supervisor and fault domains absorb it",
    )
    stress_parser.add_argument(
        "--kill-shard",
        type=int,
        default=0,
        help="shard whose worker --chaos-workers kills (default 0)",
    )
    stress_parser.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="N",
        help="request index at which --chaos-workers fires the kill "
        "(default: a third of the way through the run)",
    )
    stress_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write per-request stage spans as a Chrome trace_event JSON "
        "file (open in Perfetto or chrome://tracing)",
    )
    stress_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's counters/gauges/histograms as a Prometheus "
        "text exposition file",
    )
    stress_parser.add_argument(
        "--series-out",
        default=None,
        metavar="PATH",
        help="sample the metrics registry on an interval during the run and "
        "write the time-series as JSON",
    )
    stress_parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=0.1,
        help="seconds between --series-out samples (default 0.1)",
    )
    stress_parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --trace-out, record spans for 1-in-N requests instead of "
        "all of them (metrics stay exact; default 1 = trace everything)",
    )
    stress_parser.add_argument(
        "--profile",
        action="store_true",
        help="run the serving loop under cProfile and print the top 25 "
        "functions by cumulative time",
    )
    stress_parser.add_argument("--seed", type=int, default=0)
    _add_persist_arguments(stress_parser)
    _add_proc_arguments(stress_parser)
    serve_parser = commands.add_parser(
        "serve",
        help="run the multi-process serving tier behind a TCP front door",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="shard worker processes (default 4)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick an ephemeral port and print it)",
    )
    serve_parser.add_argument(
        "--io-scale",
        type=float,
        default=0.02,
        help="real seconds slept per simulated remote-latency second "
        "(default 0.02)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="admission-queue depth before overload rejection (default 256)",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in wall seconds (default none)",
    )
    serve_parser.add_argument(
        "--slo",
        action="store_true",
        help="evaluate the stock burn-rate SLOs live (snapshot recorder + "
        "SLO engine); the health op then reports burn rates and firings",
    )
    serve_parser.add_argument(
        "--slo-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sampling interval for the --slo snapshot recorder (default 1)",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    _add_persist_arguments(serve_parser)
    _add_proc_arguments(serve_parser)
    replicate_parser = commands.add_parser(
        "replicate",
        help="cross-region cache replication: local two-node simulation by "
        "default, or one real region with --listen / --peer",
    )
    replicate_parser.add_argument(
        "--listen",
        type=int,
        default=None,
        metavar="PORT",
        help="serve as one region: wait for the peer on PORT (0 = pick an "
        "ephemeral port and print it)",
    )
    replicate_parser.add_argument(
        "--peer",
        default=None,
        metavar="HOST:PORT",
        help="dial a --listen region and replicate against it",
    )
    replicate_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address for --listen"
    )
    replicate_parser.add_argument(
        "--node-id",
        default=None,
        help="region name in diffs and digests (default: A for --listen, "
        "B for --peer)",
    )
    replicate_parser.add_argument(
        "--sync-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between diff syncs (default 0.5)",
    )
    replicate_parser.add_argument(
        "--latency-ab",
        type=float,
        default=0.08,
        metavar="SECONDS",
        help="simulated one-way latency A->B in local-sim mode (default 0.08)",
    )
    replicate_parser.add_argument(
        "--latency-ba",
        type=float,
        default=0.12,
        metavar="SECONDS",
        help="simulated one-way latency B->A in local-sim mode (default 0.12)",
    )
    replicate_parser.add_argument(
        "--pace",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="wall seconds between local queries in socket mode "
        "(default 0.002)",
    )
    replicate_parser.add_argument(
        "--queries", type=int, default=600, help="requests per region (default 600)"
    )
    replicate_parser.add_argument(
        "--population",
        type=int,
        default=64,
        help="distinct facts in each region's workload (default 64; the "
        "overlap is what replication converges on)",
    )
    replicate_parser.add_argument(
        "--zipf-s", type=float, default=1.3, help="Zipf skew exponent (default 1.3)"
    )
    replicate_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (default: 0 for --listen/local node A, 1 for "
        "--peer/local node B, so the two regions draw different streams)",
    )
    replicate_parser.add_argument(
        "--codec",
        choices=("pickle", "msgpack"),
        default="pickle",
        help="diff wire serializer (default pickle)",
    )
    slo_parser = commands.add_parser(
        "slo",
        help="evaluate burn-rate SLOs against a --series-out dump "
        "(exit 1 when firing)",
    )
    slo_parser.add_argument(
        "--series",
        required=True,
        metavar="PATH",
        help="snapshot series JSON written by a stress run's --series-out",
    )
    slo_parser.add_argument(
        "--engine",
        default="proc",
        help="engine label the series was recorded under (default proc)",
    )
    slo_parser.add_argument(
        "--p99-threshold",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="p99 latency SLO threshold (default 0.5 simulated seconds)",
    )
    slo_parser.add_argument(
        "--served-threshold",
        type=float,
        default=0.99,
        help="served-fraction SLO threshold (default 0.99)",
    )
    slo_parser.add_argument(
        "--stale-threshold",
        type=float,
        default=0.2,
        help="stale-fraction SLO threshold (default 0.2)",
    )
    slo_parser.add_argument(
        "--fast-window",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="fast burn-rate window (default 300; clamps to the series)",
    )
    slo_parser.add_argument(
        "--slow-window",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="slow burn-rate window (default 3600; clamps to the series)",
    )
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments.name, _parse_overrides(arguments.set))
    if arguments.command == "stress":
        return _command_stress(arguments)
    if arguments.command == "serve":
        return _command_serve(arguments)
    if arguments.command == "replicate":
        return _command_replicate(arguments)
    if arguments.command == "slo":
        return _command_slo(arguments)
    return _command_run_all(arguments.quick)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
