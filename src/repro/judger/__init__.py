"""The lightweight semantic judger (LSM) substrate.

The paper validates ANN candidates with a ~0.6B-parameter LLM
(Qwen3-Reranker-0.6B) that scores whether a cached result truly answers a new
query. Offline we substitute :class:`SimulatedJudger`: an oracle over the
workload's hidden fact identity, emitting *calibrated, noisy* confidence
scores — equivalent pairs draw from a Beta distribution concentrated near 1,
non-equivalent pairs near 0, and a small flip probability models genuine
judger mistakes. This preserves everything the system design interacts with:
a continuous score, a decision threshold, a precision/recall trade-off, and a
residual error rate that recalibration (Algorithm 1) must manage.

:class:`HeuristicJudger` is a model-free lexical alternative (token-overlap
logistic), useful as a drop-in when no ground truth annotation exists.
"""

from repro.judger.base import JudgeRequest, Judger, JudgeVerdict
from repro.judger.heuristic import HeuristicJudger
from repro.judger.simulated import SimulatedJudger
from repro.judger.spin import SpinningJudger, spin_iterations
from repro.judger.staticity import StaticityScorer

__all__ = [
    "HeuristicJudger",
    "JudgeRequest",
    "JudgeVerdict",
    "Judger",
    "SimulatedJudger",
    "SpinningJudger",
    "spin_iterations",
    "StaticityScorer",
]
