"""Judger interface shared by the simulated and heuristic implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@dataclass(frozen=True, slots=True)
class JudgeRequest:
    """One validation task: does ``cached_result`` answer ``query_text``?

    ``query_truth`` / ``cached_truth`` are the workload's hidden fact
    identifiers. They exist so the *simulated* judger can act as a noisy
    oracle; implementations that work from text alone (and any production
    judger) must ignore them.
    """

    query_text: str
    cached_query: str
    cached_result: str = ""
    query_truth: str | None = None
    cached_truth: str | None = None


@dataclass(frozen=True, slots=True)
class JudgeVerdict:
    """The judger's output for one candidate.

    ``score`` is a confidence in [0, 1] that the pair is semantically
    equivalent; the cache compares it against ``tau_lsm``. ``truth`` records
    whether the pair was *actually* equivalent when ground truth is known
    (None otherwise) — used only by evaluation and recalibration, never by
    the hit decision.
    """

    score: float
    truth: bool | None = None
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"judge score must be in [0, 1], got {self.score}")


@runtime_checkable
class Judger(Protocol):
    """What the cache's validation stage needs from a judger model."""

    def judge(self, request: JudgeRequest) -> JudgeVerdict:
        """Score one (query, cached entry) pair."""
        ...

    def judge_batch(self, requests: list[JudgeRequest]) -> list[JudgeVerdict]:
        """Score several pairs (the co-location scheduler batches these)."""
        ...
