"""Staticity scoring: how time-invariant is a query-result pair?

The paper reuses the judger model to rate staticity on a 1-10 scale (10 =
stable fact such as "where is the Louvre", 1 = ephemeral such as weather).
The simulated scorer reads the workload's annotated true staticity and adds
bounded integer noise; with no annotation it falls back to a keyword
heuristic over the query text.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.tokenizer import SimpleTokenizer
from repro.sim.random import derive_seed

#: Query stems suggesting ephemeral content, mapped to a low prior.
_EPHEMERAL_MARKERS = frozenset(
    "weather today tonight tomorrow now current latest live price stock score".split()
)
#: Query stems suggesting stable facts, mapped to a high prior.
_STABLE_MARKERS = frozenset(
    "history capital painted author born invented founded located formula".split()
)


class StaticityScorer:
    """Scores staticity 1-10 with ±``noise`` uniform integer jitter.

    Parameters
    ----------
    seed:
        Root seed; per-text draws derive from it, so scoring is
        deterministic per text.
    noise:
        Maximum absolute jitter applied to an annotated true staticity
        (default 1).
    default:
        Score used by the keyword fallback when no marker fires (default 6).
    """

    def __init__(self, seed: int = 0, noise: int = 1, default: int = 6) -> None:
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        if not 1 <= default <= 10:
            raise ValueError(f"default must be in [1, 10], got {default}")
        self.seed = seed
        self.noise = noise
        self.default = default
        self._tokenizer = SimpleTokenizer()

    def score(self, text: str, true_staticity: int | None = None) -> int:
        """Staticity of the query ``text`` on the paper's 1-10 scale."""
        if true_staticity is not None:
            if not 1 <= true_staticity <= 10:
                raise ValueError(
                    f"true_staticity must be in [1, 10], got {true_staticity}"
                )
            if self.noise == 0:
                return true_staticity
            rng = np.random.default_rng(derive_seed(self.seed, f"stat:{text}"))
            jitter = int(rng.integers(-self.noise, self.noise + 1))
            return int(np.clip(true_staticity + jitter, 1, 10))
        tokens = set(self._tokenizer.tokenize(text))
        if tokens & _EPHEMERAL_MARKERS:
            return 2
        if tokens & _STABLE_MARKERS:
            return 9
        return self.default

    def __repr__(self) -> str:
        return f"StaticityScorer(seed={self.seed}, noise={self.noise})"
