"""A CPU-burning judger wrapper for scaling benchmarks.

The simulated judger is deterministic and cheap; real LSM validation is the
CPU-heavy stage the multi-process tier exists to parallelize. To benchmark
that honestly without a model, :class:`SpinningJudger` wraps any judger and
burns a calibrated amount of *GIL-holding* CPU per judged candidate — a
fixed-iteration pure-Python loop, so threads in one process serialize on it
(the thread pool plateaus) while worker processes run it in parallel.

The burn is iteration-count based, not wall-clock based: a wall-clock spin
would exit after the target elapsed time regardless of how much CPU it was
actually granted, making GIL-starved threads look as fast as processes.
Calibration happens once per process at construction.
"""

from __future__ import annotations

import time

from repro.judger.base import JudgeRequest, Judger, JudgeVerdict


def _calibrate(sample: int = 200_000) -> float:
    """Measure pure-Python loop iterations per second in this process."""
    t0 = time.perf_counter()
    for _ in range(sample):
        pass
    elapsed = time.perf_counter() - t0
    return sample / elapsed if elapsed > 0 else 1e8


def spin_iterations(spin: float) -> int:
    """Calibrate ``spin`` seconds into a loop-iteration count, here and now.

    Calibrate in a quiet parent and pass the result to every
    :class:`SpinningJudger` (the proc tier ships it across the spawn
    boundary in the :class:`~repro.serving.proc.worker.WorkerSpec`):
    calibrating inside a busy process measures a contended loop rate and
    hands that process *less* work per judge, which on an oversubscribed
    host fakes exactly the parallel speedup the spin exists to measure.
    """
    if spin < 0:
        raise ValueError(f"spin must be >= 0, got {spin}")
    return int(spin * _calibrate()) if spin > 0 else 0


class SpinningJudger:
    """Wrap ``inner`` and burn ~``spin`` seconds of CPU per judged pair.

    Scores, determinism, and the ``calls`` counter are the inner judger's;
    only CPU cost is added, so cache decisions are identical to an unspun
    run and benchmark speedups measure parallelism alone.
    """

    def __init__(
        self, inner: Judger, spin: float, iterations: int | None = None
    ) -> None:
        if spin < 0:
            raise ValueError(f"spin must be >= 0, got {spin}")
        self.inner = inner
        self.spin = spin
        # An explicit pre-calibrated count (see spin_iterations) pins the
        # work per judge regardless of how loaded *this* process is.
        self._iterations = (
            iterations if iterations is not None else spin_iterations(spin)
        )

    @property
    def calls(self) -> int:
        return getattr(self.inner, "calls", 0)

    def _burn(self) -> None:
        for _ in range(self._iterations):
            pass

    def judge(self, request: JudgeRequest) -> JudgeVerdict:
        """Burn the calibrated CPU, then delegate to the inner judger."""
        self._burn()
        return self.inner.judge(request)

    def judge_batch(self, requests: list[JudgeRequest]) -> list[JudgeVerdict]:
        """Burn per request (batching saves no judge CPU), then delegate."""
        for _ in requests:
            self._burn()
        return self.inner.judge_batch(requests)

    def __repr__(self) -> str:
        return f"SpinningJudger(spin={self.spin}, inner={self.inner!r})"
