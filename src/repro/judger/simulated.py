"""A calibrated noisy-oracle judger.

Given the workload's hidden fact identity for both sides of a pair, the
simulated judger knows the true answer but reports it imperfectly:

* equivalent pairs score ``Beta(pos_alpha, pos_beta)`` — concentrated near 1;
* non-equivalent pairs score ``Beta(neg_alpha, neg_beta)`` — near 0;
* with probability ``flip_rate`` the pair draws from the *opposite*
  distribution, modelling genuine model confusions that no threshold fixes.

With the defaults, a threshold of 0.9 accepts ≈97 % of equivalent pairs and
≈2 % of non-equivalent ones — in line with the paper's observation that the
judger keeps accuracy "virtually identical" to the non-cached baseline while
sustaining >85 % hit rates.

Scores are deterministic per (query, cached_query) pair: the Beta draw is
seeded from the pair's content, so repeated validations of the same pair
agree (a real model is likewise deterministic at temperature 0).
"""

from __future__ import annotations

import numpy as np

from repro.judger.base import JudgeRequest, JudgeVerdict
from repro.sim.random import derive_seed


class SimulatedJudger:
    """Noisy-oracle LSM; see module docstring.

    Parameters
    ----------
    seed:
        Root seed; per-pair draws derive from it.
    flip_rate:
        Probability of drawing from the wrong score distribution
        (default 0.02).
    pos_alpha, pos_beta:
        Beta parameters for equivalent pairs (default 30, 0.4).
    neg_alpha, neg_beta:
        Beta parameters for non-equivalent pairs (default 0.8, 20).
    unknown_truth_score:
        Score reported for a pair lacking ground truth when ``fallback`` is
        None; defaults to 0.0 (reject) — the safe choice for a cache.
    fallback:
        Judger consulted for pairs with no ground-truth annotation (queries
        arriving through the data client from raw text). Defaults to a
        lexical :class:`~repro.judger.heuristic.HeuristicJudger` — a real
        LSM reads text, so unannotated pairs should not be blanket-rejected.
        Pass None to restore strict reject-unknown behaviour.
    """

    def __init__(
        self,
        seed: int = 0,
        flip_rate: float = 0.02,
        pos_alpha: float = 30.0,
        pos_beta: float = 0.4,
        neg_alpha: float = 0.8,
        neg_beta: float = 20.0,
        unknown_truth_score: float = 0.0,
        fallback: "object | None" = "heuristic",
    ) -> None:
        if not 0.0 <= flip_rate <= 1.0:
            raise ValueError(f"flip_rate must be in [0, 1], got {flip_rate}")
        for name, value in (
            ("pos_alpha", pos_alpha),
            ("pos_beta", pos_beta),
            ("neg_alpha", neg_alpha),
            ("neg_beta", neg_beta),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        self.seed = seed
        self.flip_rate = flip_rate
        self.pos_alpha = pos_alpha
        self.pos_beta = pos_beta
        self.neg_alpha = neg_alpha
        self.neg_beta = neg_beta
        self.unknown_truth_score = unknown_truth_score
        if fallback == "heuristic":
            from repro.judger.heuristic import HeuristicJudger

            fallback = HeuristicJudger()
        self.fallback = fallback
        self.calls = 0

    def judge(self, request: JudgeRequest) -> JudgeVerdict:
        """Score one pair; deterministic per (query, cached_query) content."""
        self.calls += 1
        if request.query_truth is None or request.cached_truth is None:
            if self.fallback is not None:
                return self.fallback.judge(request)
            return JudgeVerdict(score=self.unknown_truth_score, truth=None)
        equivalent = request.query_truth == request.cached_truth
        rng = np.random.default_rng(
            derive_seed(self.seed, f"{request.query_text}\x1f{request.cached_query}")
        )
        flipped = bool(rng.random() < self.flip_rate)
        draw_positive = equivalent != flipped
        if draw_positive:
            score = float(rng.beta(self.pos_alpha, self.pos_beta))
        else:
            score = float(rng.beta(self.neg_alpha, self.neg_beta))
        return JudgeVerdict(
            score=score, truth=equivalent, detail={"flipped": flipped}
        )

    def judge_batch(self, requests: list[JudgeRequest]) -> list[JudgeVerdict]:
        """Score a batch; order-preserving."""
        return [self.judge(request) for request in requests]

    def __repr__(self) -> str:
        return (
            f"SimulatedJudger(seed={self.seed}, flip_rate={self.flip_rate}, "
            f"calls={self.calls})"
        )
