"""A model-free lexical judger.

Scores a pair by the Jaccard overlap of content stems, squashed through a
logistic so the output lives on the same [0, 1] confidence scale as the
simulated LSM. It needs no ground-truth annotation, making it the judger of
choice when replaying traces that lack fact identity — at the cost of being
fooled by exactly the surface-similarity failure modes the paper describes.
"""

from __future__ import annotations

import math

from repro.embedding.tokenizer import SimpleTokenizer
from repro.judger.base import JudgeRequest, JudgeVerdict


class HeuristicJudger:
    """Token-overlap judger with a logistic calibration.

    Parameters
    ----------
    midpoint:
        Jaccard overlap that maps to a 0.5 score (default 0.55).
    steepness:
        Logistic slope (default 12.0); higher = more binary.
    """

    def __init__(
        self,
        midpoint: float = 0.55,
        steepness: float = 12.0,
        tokenizer: SimpleTokenizer | None = None,
    ) -> None:
        if not 0.0 < midpoint < 1.0:
            raise ValueError(f"midpoint must be in (0, 1), got {midpoint}")
        if steepness <= 0:
            raise ValueError(f"steepness must be > 0, got {steepness}")
        self.midpoint = midpoint
        self.steepness = steepness
        self.tokenizer = tokenizer or SimpleTokenizer()
        self.calls = 0

    def overlap(self, a: str, b: str) -> float:
        """Jaccard overlap of content stems of ``a`` and ``b``."""
        set_a = set(self.tokenizer.content_tokens(a))
        set_b = set(self.tokenizer.content_tokens(b))
        if not set_a and not set_b:
            return 1.0
        if not set_a or not set_b:
            return 0.0
        return len(set_a & set_b) / len(set_a | set_b)

    def judge(self, request: JudgeRequest) -> JudgeVerdict:
        """Score one pair by logistic-squashed content-stem overlap."""
        self.calls += 1
        overlap = self.overlap(request.query_text, request.cached_query)
        score = 1.0 / (1.0 + math.exp(-self.steepness * (overlap - self.midpoint)))
        truth = None
        if request.query_truth is not None and request.cached_truth is not None:
            truth = request.query_truth == request.cached_truth
        return JudgeVerdict(score=score, truth=truth, detail={"overlap": overlap})

    def judge_batch(self, requests: list[JudgeRequest]) -> list[JudgeVerdict]:
        """Score several pairs, order-preserving."""
        return [self.judge(request) for request in requests]

    def __repr__(self) -> str:
        return f"HeuristicJudger(midpoint={self.midpoint}, steepness={self.steepness})"
