"""Asteria: semantic-aware cross-region knowledge caching for LLM agents.

A full reproduction of the NSDI 2026 paper (also circulated as *Cortex:
Achieving Low-Latency, Cost-Efficient Remote Data Access For LLM via
Semantic-Aware Knowledge Caching*): the Semantic Element / Sine two-stage
retrieval abstractions, LCFU eviction, Markov prefetching, threshold
recalibration, and GPU co-location — plus every substrate the evaluation
needs (embeddings, ANN indexes, a semantic judger, a WAN/rate-limit/cost
model, a GPU scheduler, scripted agents, and workload generators), all
implemented natively and runnable offline on a deterministic discrete-event
simulator.

Quickstart
----------
>>> from repro import build_remote, build_asteria_engine, Query
>>> remote = build_remote()
>>> engine = build_asteria_engine(remote, seed=7)
>>> miss = engine.handle(Query("who painted the mona lisa", fact_id="F1"))
>>> hit = engine.handle(Query("tell me about who painted mona lisa", fact_id="F1"))
>>> hit.served_from_cache
True

Subpackages
-----------
``repro.core``
    The paper's contribution: SE, Sine, cache, policies, engines.
``repro.embedding`` / ``repro.ann`` / ``repro.judger``
    The semantic substrates (hashing embedder, Flat/IVF/HNSW, noisy-oracle
    judger).
``repro.network`` / ``repro.serving``
    Cross-region WAN + rate limits + fees; GPU partitions + priority
    co-location.
``repro.agent`` / ``repro.workloads``
    Think-act-observe agents and the paper's workload shapes.
``repro.experiments``
    One runner per table/figure of the evaluation.
"""

from repro.core import (
    AsteriaCache,
    AsteriaConfig,
    AsteriaEngine,
    EngineMetrics,
    EngineResponse,
    ExactCache,
    ExactEngine,
    Query,
    SemanticElement,
    Sine,
    VanillaEngine,
)
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_index,
    build_remote,
    build_semantic_cache,
    build_tiered_engine,
    build_vanilla_engine,
)

__version__ = "1.0.0"

__all__ = [
    "AsteriaCache",
    "AsteriaConfig",
    "AsteriaEngine",
    "EngineMetrics",
    "EngineResponse",
    "ExactCache",
    "ExactEngine",
    "Query",
    "SemanticElement",
    "Sine",
    "VanillaEngine",
    "__version__",
    "build_asteria_engine",
    "build_exact_engine",
    "build_index",
    "build_remote",
    "build_semantic_cache",
    "build_tiered_engine",
    "build_vanilla_engine",
]
