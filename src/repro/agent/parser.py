"""Parsing and emitting the agent's tagged output format (Figure 1b).

Agentic LLMs wrap each step in well-formed tags::

    <think> I need to find out who painted the Mona Lisa. </think>
    <search> who painted the Mona Lisa? </search>
    <info> The Mona Lisa was painted by Leonardo da Vinci. </info>
    <answer> Leonardo da Vinci </answer>

The data client relies on this structure to lift (query, result) pairs into
semantic elements, so the parser is strict about well-formedness: an opening
tag must have a matching close, tags must not nest, and unknown tags are
surfaced rather than silently dropped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Tags the agent runtime understands. ``search``/``tool``/``file`` are the
#: action tags whose content is a tool-call query.
KNOWN_TAGS = ("think", "search", "tool", "file", "info", "answer")
ACTION_TAGS = ("search", "tool", "file")

_TAG_PATTERN = re.compile(r"<(/?)([a-z_]+)>")


class TagFormatError(ValueError):
    """Raised for malformed tagged output (unclosed, nested, unknown tags)."""


@dataclass(frozen=True)
class Block:
    """One tagged block: ``tag`` name and stripped ``content``."""

    tag: str
    content: str


def format_block(tag: str, content: str) -> str:
    """Render one block in the agent's output format."""
    if tag not in KNOWN_TAGS:
        raise TagFormatError(f"unknown tag {tag!r}; known: {KNOWN_TAGS}")
    return f"<{tag}> {content} </{tag}>"


def extract_blocks(text: str, strict: bool = True) -> list[Block]:
    """Parse ``text`` into an ordered list of :class:`Block`.

    In strict mode (default) raises :class:`TagFormatError` on unknown tags,
    nesting, an unmatched close, or an unclosed open. With ``strict=False``
    the parser recovers what it can — live models occasionally truncate or
    garble a tag, and the data client must not crash the request path:
    unknown tags are skipped, a stray close is ignored, a tag opened inside
    another implicitly closes the outer one, and a trailing unclosed block
    is emitted with whatever content followed it.

    Text outside any block is ignored in both modes (models often emit
    whitespace or stray tokens between steps).
    """
    blocks: list[Block] = []
    open_tag: str | None = None
    open_at = 0

    def fail(message: str) -> None:
        if strict:
            raise TagFormatError(message)

    for match in _TAG_PATTERN.finditer(text):
        closing, tag = match.group(1) == "/", match.group(2)
        if tag not in KNOWN_TAGS:
            fail(f"unknown tag <{'/' if closing else ''}{tag}>")
            continue
        if not closing:
            if open_tag is not None:
                fail(f"<{tag}> opened inside unclosed <{open_tag}>")
                # Recovery: close the outer block at this point.
                blocks.append(
                    Block(tag=open_tag, content=text[open_at : match.start()].strip())
                )
            open_tag = tag
            open_at = match.end()
        else:
            if open_tag is None:
                fail(f"</{tag}> without a matching open")
                continue
            if tag != open_tag:
                fail(f"</{tag}> closes <{open_tag}> (tags must not interleave)")
                continue
            blocks.append(Block(tag=tag, content=text[open_at : match.start()].strip()))
            open_tag = None
    if open_tag is not None:
        fail(f"<{open_tag}> never closed")
        blocks.append(Block(tag=open_tag, content=text[open_at:].strip()))
    return blocks


def first_block(text: str, tag: str) -> str | None:
    """Content of the first ``tag`` block, or None."""
    for block in extract_blocks(text):
        if block.tag == tag:
            return block.content
    return None


def tool_calls(text: str) -> list[Block]:
    """All action blocks (``search``/``tool``/``file``) in order."""
    return [block for block in extract_blocks(text) if block.tag in ACTION_TAGS]
