"""The search agent (Search-R1-style, Figure 1b)."""

from __future__ import annotations

from repro.agent.base import ScriptedAgent


class SearchAgent(ScriptedAgent):
    """A Search-R1-like agent: actions are ``<search>`` queries.

    The scripted loop reproduces the paper's example exactly: a ``<think>``
    block articulating the sub-goal, a ``<search>`` tool call, and an
    ``<info>`` observation per hop, closed by an ``<answer>`` block.
    """

    action_tag = "search"
    think_template = "I need to find out: {query}"
