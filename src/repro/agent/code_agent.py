"""The coding agent (SWE-Bench-style issue resolution)."""

from __future__ import annotations

from repro.agent.base import ScriptedAgent


class CodeAgent(ScriptedAgent):
    """A repository-maintenance agent: actions are ``<file>`` retrievals.

    Each task is one GitHub issue; its tool calls request the repository
    files the fix depends on (shared core files across issues are what make
    this workload cacheable — Table 2).
    """

    action_tag = "file"
    think_template = "To resolve this issue I must read: {query}"
