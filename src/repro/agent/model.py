"""Agent tasks, inference-latency model, and task results.

A :class:`AgentTask` scripts what a real agent would do for one user
request: an ordered list of tool-call queries (the workload generator knows
the reasoning chain) and a final answer. :class:`AgentLatencyModel` supplies
per-step LLM inference times — drawn from a distribution in pure-latency
mode, or expressed as full-GPU work when a GPU scheduler is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Query
from repro.sim.distributions import Distribution, TruncatedNormal, distribution_from_spec


@dataclass(frozen=True)
class AgentTask:
    """One scripted user request.

    ``queries`` are the tool calls the agent will issue in order (multi-hop
    questions yield several). ``answer_fact`` is the fact id the final
    answer hinges on (defaults to the last query's fact) — the answer is
    judged correct only if the knowledge served for that fact was correct.
    """

    task_id: str
    question: str
    queries: tuple[Query, ...]
    answer: str = ""
    answer_fact: str | None = None

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError(f"task {self.task_id!r} has no tool calls")

    @property
    def hops(self) -> int:
        """Number of tool calls this task performs."""
        return len(self.queries)


@dataclass
class TaskResult:
    """Outcome of executing one task through an engine."""

    task_id: str
    latency: float
    inference_latency: float
    retrieval_latency: float
    steps: int
    hits: int
    knowledge_correct: bool
    trajectory: str = ""
    finished_at: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.steps if self.steps else 0.0


class AgentLatencyModel:
    """Per-step LLM inference cost.

    Figure 11 puts core agent inference at ~0.6 s per request; per *step* of
    a multi-hop task we default to N(0.6, 0.05) truncated at 0.2. The same
    number doubles as full-GPU work when a scheduler executes it.

    Parameters
    ----------
    per_step:
        Latency distribution (or number / spec dict) for one think+generate
        step.
    rng:
        Seeded generator for draws.
    """

    def __init__(
        self,
        per_step: "Distribution | float | dict | None" = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if per_step is None:
            self.per_step = TruncatedNormal(mu=0.6, sigma=0.05, floor=0.2)
        else:
            self.per_step = distribution_from_spec(per_step)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def sample_step(self) -> float:
        """Inference seconds (== full-GPU work) for one step."""
        return self.per_step.sample(self.rng)

    def __repr__(self) -> str:
        return f"AgentLatencyModel(per_step={self.per_step!r})"


@dataclass
class AgentStats:
    """Aggregate over many task executions."""

    results: list[TaskResult] = field(default_factory=list)

    def add(self, result: TaskResult) -> None:
        self.results.append(result)

    @property
    def tasks(self) -> int:
        return len(self.results)

    @property
    def mean_latency(self) -> float:
        if not self.results:
            return 0.0
        return float(np.mean([r.latency for r in self.results]))

    def percentile_latency(self, p: float) -> float:
        if not self.results:
            return 0.0
        return float(np.percentile([r.latency for r in self.results], p))

    @property
    def accuracy(self) -> float:
        """Fraction of tasks whose knowledge path stayed correct."""
        if not self.results:
            return 1.0
        return sum(r.knowledge_correct for r in self.results) / len(self.results)

    def throughput(self, horizon: float) -> float:
        """Completed tasks per second over ``horizon`` simulated seconds."""
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        return len(self.results) / horizon
