"""The scripted think-act-observe loop shared by all agents.

One task executes as: for each scripted tool call — an LLM inference step
(think + action generation), then the tool call through the knowledge
engine, then observation — and finally one more inference step that emits
the answer. Inference either burns pure latency or occupies GPU compute via
the priority-aware scheduler; tool calls are the engine's business.
"""

from __future__ import annotations

from typing import Generator

from repro.agent.model import AgentLatencyModel, AgentTask, TaskResult
from repro.agent.parser import format_block
from repro.core.engine import KnowledgeEngine
from repro.serving.scheduler import PriorityAwareScheduler


class ScriptedAgent:
    """Drives :class:`AgentTask` scripts through a knowledge engine.

    Parameters
    ----------
    engine:
        Any :class:`~repro.core.engine.KnowledgeEngine`.
    latency_model:
        Per-step inference cost; a default Figure-11-calibrated model is
        created when omitted.
    scheduler:
        Optional :class:`PriorityAwareScheduler`; when given, inference
        steps are submitted as agent work (full-GPU seconds) instead of
        plain timeouts, so co-location contention is real.
    record_trajectory:
        Render the tagged trajectory text (costs memory; off by default for
        large sweeps).
    answer_step:
        Whether the final answer generation costs an inference step (True;
        single-request latency studies turn it off to isolate one
        think-act-observe cycle).
    """

    #: The action tag this agent emits (``search`` / ``tool`` / ``file``).
    action_tag = "tool"
    #: Template for the think block preceding each action.
    think_template = "I need more information: {query}"

    def __init__(
        self,
        engine: KnowledgeEngine,
        latency_model: AgentLatencyModel | None = None,
        scheduler: PriorityAwareScheduler | None = None,
        record_trajectory: bool = False,
        answer_step: bool = True,
        name: str = "agent",
    ) -> None:
        self.engine = engine
        self.latency_model = latency_model or AgentLatencyModel()
        self.scheduler = scheduler
        self.record_trajectory = record_trajectory
        self.answer_step = answer_step
        self.name = name

    # -- analytic execution ------------------------------------------------
    def run_task(self, task: AgentTask, now: float = 0.0) -> TaskResult:
        """Execute ``task`` analytically starting at time ``now``."""
        clock = now
        inference_total = 0.0
        retrieval_total = 0.0
        hits = 0
        knowledge_correct = True
        parts: list[str] = []
        for query in task.queries:
            step = self.latency_model.sample_step()
            clock += step
            inference_total += step
            response = self.engine.handle(query, clock)
            clock += response.latency
            retrieval_total += response.latency
            if response.served_from_cache:
                hits += 1
            if response.lookup.truth_match is False:
                knowledge_correct = False
            if self.record_trajectory:
                parts.append(
                    format_block("think", self.think_template.format(query=query.text))
                )
                parts.append(format_block(self.action_tag, query.text))
                parts.append(format_block("info", response.result))
        if self.answer_step:
            final_step = self.latency_model.sample_step()
            clock += final_step
            inference_total += final_step
        if self.record_trajectory:
            parts.append(format_block("answer", task.answer or task.question))
        return TaskResult(
            task_id=task.task_id,
            latency=clock - now,
            inference_latency=inference_total,
            retrieval_latency=retrieval_total,
            steps=task.hops,
            hits=hits,
            knowledge_correct=knowledge_correct,
            trajectory="\n".join(parts),
            finished_at=clock,
        )

    # -- discrete-event execution ------------------------------------------------
    def run_task_process(self, sim, task: AgentTask) -> Generator:
        """Execute ``task`` as a simulated process; returns a TaskResult."""
        start = sim.now
        inference_total = 0.0
        retrieval_total = 0.0
        hits = 0
        knowledge_correct = True
        parts: list[str] = []
        for query in task.queries:
            inference_total += yield from self._infer(sim)
            before = sim.now
            response = yield from self.engine.process(sim, query)
            retrieval_total += sim.now - before
            if response.served_from_cache:
                hits += 1
            if response.lookup.truth_match is False:
                knowledge_correct = False
            if self.record_trajectory:
                parts.append(
                    format_block("think", self.think_template.format(query=query.text))
                )
                parts.append(format_block(self.action_tag, query.text))
                parts.append(format_block("info", response.result))
        if self.answer_step:
            inference_total += yield from self._infer(sim)
        if self.record_trajectory:
            parts.append(format_block("answer", task.answer or task.question))
        return TaskResult(
            task_id=task.task_id,
            latency=sim.now - start,
            inference_latency=inference_total,
            retrieval_latency=retrieval_total,
            steps=task.hops,
            hits=hits,
            knowledge_correct=knowledge_correct,
            trajectory="\n".join(parts),
            finished_at=sim.now,
        )

    def _infer(self, sim) -> Generator:
        """One inference step: GPU-scheduled when a scheduler is attached."""
        work = self.latency_model.sample_step()
        if self.scheduler is not None:
            started = sim.now
            yield from self.scheduler.submit_agent(work)
            return sim.now - started
        yield sim.timeout(work)
        return work

    def __repr__(self) -> str:
        return f"{type(self).__name__}(engine={self.engine.name!r})"
