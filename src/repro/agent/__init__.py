"""Agent substrate: the think-act-observe loop at the tool boundary.

The cache only ever sees the agent's tool calls, so the agent substitute is
a *scripted* loop: each task carries the sequence of tool queries a real
Search-R1 / coding agent would emit, the loop interleaves simulated LLM
inference with engine-mediated tool calls, and the trajectory is rendered in
the paper's tag format (``<think>``, ``<search>``/``<tool>``, ``<info>``,
``<answer>`` — Figure 1b).

``parser`` round-trips that tag format (the data client parses it to build
semantic elements); ``SearchAgent`` and ``CodeAgent`` drive tasks through any
:class:`~repro.core.engine.KnowledgeEngine` either analytically or on the
discrete-event simulator (optionally occupying GPU compute through the
priority-aware scheduler).
"""

from repro.agent.data_client import DataClient, InterceptResult
from repro.agent.model import AgentLatencyModel, AgentTask, TaskResult
from repro.agent.parser import (
    Block,
    extract_blocks,
    format_block,
    first_block,
    tool_calls,
)
from repro.agent.search_agent import SearchAgent
from repro.agent.code_agent import CodeAgent

__all__ = [
    "AgentLatencyModel",
    "AgentTask",
    "Block",
    "CodeAgent",
    "DataClient",
    "InterceptResult",
    "SearchAgent",
    "TaskResult",
    "extract_blocks",
    "first_block",
    "format_block",
    "tool_calls",
]
