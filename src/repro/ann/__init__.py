"""Approximate nearest-neighbour indexes, implemented from scratch.

The paper uses FAISS for its ANN candidate-selection stage. This package
provides the same capability natively:

``FlatIndex``
    Exact brute-force search — the correctness baseline.
``IVFIndex``
    Inverted-file index over k-means cells (trained online) with an
    ``nprobe`` recall knob.
``HNSWIndex``
    Hierarchical navigable small-world graph with ``ef_search`` recall knob
    and tombstone deletion.
``PQIndex``
    Product-quantization-compressed index (Jégou et al. 2011, the paper's
    [35]) with asymmetric-distance search — m bytes per vector.

All indexes share the :class:`VectorIndex` interface, score by cosine
similarity (vectors are normalised on insertion), support deletion (caches
evict), and are deterministic under a fixed seed.
"""

from repro.ann.base import SearchHit, VectorIndex
from repro.ann.flat import FlatIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFIndex
from repro.ann.kmeans import kmeans
from repro.ann.pq import PQIndex, ProductQuantizer

__all__ = [
    "FlatIndex",
    "HNSWIndex",
    "IVFIndex",
    "PQIndex",
    "ProductQuantizer",
    "SearchHit",
    "VectorIndex",
    "kmeans",
]
