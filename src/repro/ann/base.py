"""The vector-index interface shared by all ANN implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@dataclass(frozen=True, order=True)
class SearchHit:
    """One search result: an item key and its cosine similarity to the query.

    Ordered by ``(score, key)`` so lists of hits sort deterministically.
    """

    score: float
    key: int


def normalize(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` as unit-norm float32; zero vectors pass through."""
    vector = np.asarray(vector, dtype=np.float32)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    norm = float(np.linalg.norm(vector))
    if norm > 0:
        vector = vector / norm
    return vector


@runtime_checkable
class VectorIndex(Protocol):
    """Mutable cosine-similarity index over integer-keyed vectors.

    Implementations must tolerate interleaved ``add``/``remove``/``search``
    (caches insert and evict continuously) and must be deterministic for a
    fixed seed.
    """

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        ...

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` under ``key``; re-adding a live key is an error."""
        ...

    def remove(self, key: int) -> None:
        """Delete ``key``; removing an absent key raises ``KeyError``."""
        ...

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Top-``k`` most similar items, best first."""
        ...

    def __len__(self) -> int:
        """Number of live items."""
        ...

    def __contains__(self, key: int) -> bool:
        """True if ``key`` is live in the index."""
        ...
