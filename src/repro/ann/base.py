"""The vector-index interface shared by all ANN implementations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@dataclass(frozen=True, order=True, slots=True)
class SearchHit:
    """One search result: an item key and its cosine similarity to the query.

    Ordered by ``(score, key)`` so lists of hits sort deterministically.
    Slotted: lookups allocate several of these per query, so the per-instance
    ``__dict__`` is worth eliding.
    """

    score: float
    key: int


def normalize(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` as unit-norm float32; zero vectors pass through."""
    vector = np.asarray(vector, dtype=np.float32)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    norm = float(np.linalg.norm(vector))
    if norm > 0:
        vector = vector / norm
    return vector


def normalize_batch(vectors: np.ndarray) -> np.ndarray:
    """Row-normalise an (n, dim) matrix to float32; zero rows pass through."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise ValueError(f"expected an (n, dim) matrix, got shape {vectors.shape}")
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.where(norms == 0, np.float32(1.0), norms)


def search_batch_fallback(index: "VectorIndex", queries: np.ndarray, k: int) -> list[list[SearchHit]]:
    """Per-query loop implementing ``search_batch`` for sequential indexes."""
    queries = np.asarray(queries, dtype=np.float32)
    if queries.ndim != 2:
        raise ValueError(f"expected (n, dim) queries, got shape {queries.shape}")
    return [index.search(query, k) for query in queries]


@runtime_checkable
class VectorIndex(Protocol):
    """Mutable cosine-similarity index over integer-keyed vectors.

    Implementations must tolerate interleaved ``add``/``remove``/``search``
    (caches insert and evict continuously) and must be deterministic for a
    fixed seed.
    """

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        ...

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` under ``key``; re-adding a live key is an error."""
        ...

    def remove(self, key: int) -> None:
        """Delete ``key``; removing an absent key raises ``KeyError``."""
        ...

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Top-``k`` most similar items, best first."""
        ...

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Top-``k`` per row of ``queries`` (n, dim); one hit list per query.

        Each per-query result must equal the corresponding ``search`` call;
        implementations are free to share work across the batch (matrix-matrix
        scoring, shared traversal state) but not to change results.
        """
        ...

    def __len__(self) -> int:
        """Number of live items."""
        ...

    def __contains__(self, key: int) -> bool:
        """True if ``key`` is live in the index."""
        ...
