"""Hierarchical Navigable Small World (HNSW) graph index, from scratch.

Follows Malkov & Yashunin (2016): nodes are inserted at a geometrically
distributed maximum layer; queries greedily descend the upper layers and run
a best-first beam search (width ``ef_search``) on the bottom layer.

Similarity is cosine (vectors normalised on insert), maximised rather than
minimised. Deletions are tombstoned — the node keeps routing traffic but is
excluded from results — and the graph is rebuilt automatically once tombstones
exceed ``compaction_ratio`` of the population, which keeps long-lived caches
(insert/evict churn) healthy.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.ann.base import SearchHit, normalize, search_batch_fallback
from repro.core.arena import EmbeddingArena


class _Node:
    __slots__ = ("key", "vector", "level", "neighbors", "deleted", "slot", "owned")

    def __init__(
        self,
        key: int,
        vector: np.ndarray,
        level: int,
        slot: "int | None" = None,
        owned: bool = False,
    ) -> None:
        self.key = key
        self.vector = vector
        self.level = level
        #: neighbors[layer] -> list of neighbor keys
        self.neighbors: list[list[int]] = [[] for _ in range(level + 1)]
        self.deleted = False
        #: Arena row handle (``vector`` is then a view); ``owned`` marks
        #: slots the index allocated itself and must release on drop.
        self.slot = slot
        self.owned = owned


class HNSWIndex:
    """HNSW approximate index with tombstone deletion and auto-compaction.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Out-degree target for upper layers; layer 0 allows ``2 * m``
        (default 16).
    ef_construction:
        Beam width while inserting (default 100).
    ef_search:
        Beam width while querying; the effective beam is
        ``max(ef_search, k)`` (default 50).
    seed:
        Seed for the level sampler.
    compaction_ratio:
        Rebuild when tombstones exceed this fraction of stored nodes
        (default 0.5).
    arena:
        Optional shared row storage; node vectors then become arena views.
        Adds stay incremental (one graph insertion, no restacking); graph
        compaction after heavy deletion churn is the only rebuild and is
        counted in :attr:`rebuilds`.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: int = 0,
        compaction_ratio: float = 0.5,
        arena: EmbeddingArena | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        if ef_construction < m:
            raise ValueError("ef_construction must be >= m")
        if not 0 < compaction_ratio <= 1:
            raise ValueError("compaction_ratio must be in (0, 1]")
        self._dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self.compaction_ratio = compaction_ratio
        self._level_multiplier = 1.0 / math.log(m)
        if arena is not None and arena.dim != dim:
            raise ValueError(f"arena dim {arena.dim} != index dim {dim}")
        self._arena = arena
        self._rng = np.random.default_rng(seed)
        self._nodes: dict[int, _Node] = {}
        self._entry_point: int | None = None
        self._live_count = 0
        #: Full graph rebuilds (tombstone compactions). Adds never rebuild.
        self.rebuilds = 0

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, key: int) -> bool:
        node = self._nodes.get(key)
        return node is not None and not node.deleted

    @property
    def tombstones(self) -> int:
        """Number of deleted-but-retained routing nodes."""
        return len(self._nodes) - self._live_count

    # -- similarity ---------------------------------------------------------
    def _sim(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.dot(a, b))

    # -- insertion ------------------------------------------------------------
    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` under ``key`` (resurrects a tombstoned key)."""
        existing = self._nodes.get(key)
        if existing is not None and not existing.deleted:
            raise KeyError(f"key {key} already present")
        if self._arena is None:
            vector = normalize(vector)
            if vector.shape[0] != self._dim:
                raise ValueError(f"expected dim {self._dim}, got {vector.shape[0]}")
            self._insert(key, vector, slot=None, owned=False)
            return
        slot = self._arena.allocate(vector)
        self._insert(key, self._arena.get(slot), slot=slot, owned=True)

    def add_slot(self, key: int, slot: int) -> None:
        """Insert a caller-owned arena row under ``key``."""
        if self._arena is None:
            raise RuntimeError("index has no arena; use add()")
        existing = self._nodes.get(key)
        if existing is not None and not existing.deleted:
            raise KeyError(f"key {key} already present")
        if slot not in self._arena:
            raise KeyError(f"slot {slot} not allocated in the arena")
        self._insert(key, self._arena.get(slot), slot=slot, owned=False)

    def _insert(
        self, key: int, vector: np.ndarray, slot: "int | None", owned: bool
    ) -> None:
        existing = self._nodes.get(key)
        if existing is not None:
            # Re-adding a tombstoned key: resurrect with the new vector by
            # rebuilding that node from scratch.
            self._drop_node(key)

        level = self._sample_level()
        node = _Node(key, vector, level, slot=slot, owned=owned)
        self._nodes[key] = node
        self._live_count += 1

        if self._entry_point is None:
            self._entry_point = key
            return

        entry = self._entry_point
        top_level = self._nodes[entry].level

        # Greedy descent through layers above the node's level.
        current = entry
        for layer in range(top_level, level, -1):
            current = self._greedy_step(vector, current, layer)

        # Beam search + linking on the shared layers.
        for layer in range(min(level, top_level), -1, -1):
            candidates = self._search_layer(
                vector, [current], self.ef_construction, layer
            )
            max_links = self.m0 if layer == 0 else self.m
            chosen = self._select_neighbors(candidates, self.m)
            node.neighbors[layer] = [c.key for c in chosen]
            for hit in chosen:
                neighbor = self._nodes[hit.key]
                neighbor.neighbors[layer].append(key)
                if len(neighbor.neighbors[layer]) > max_links:
                    self._prune(neighbor, layer, max_links)
            if candidates:
                current = candidates[0].key

        if level > top_level:
            self._entry_point = key

    def _sample_level(self) -> int:
        uniform = float(self._rng.random())
        # Guard against log(0).
        uniform = max(uniform, 1e-12)
        return int(-math.log(uniform) * self._level_multiplier)

    def _greedy_step(self, query: np.ndarray, start: int, layer: int) -> int:
        current = start
        current_sim = self._sim(query, self._nodes[current].vector)
        improved = True
        while improved:
            improved = False
            for neighbor_key in self._nodes[current].neighbors[layer]:
                sim = self._sim(query, self._nodes[neighbor_key].vector)
                if sim > current_sim:
                    current, current_sim = neighbor_key, sim
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: list[int], ef: int, layer: int
    ) -> list[SearchHit]:
        """Best-first beam search; returns hits sorted best-first.

        Tombstoned nodes participate in routing but are included in results
        too — callers filter them; keeping them lets the caller distinguish
        routing candidates from servable ones.
        """
        visited = set(entries)
        candidates: list[tuple[float, int]] = []  # max-heap via negation
        results: list[tuple[float, int]] = []  # min-heap of (sim, key)
        for entry in entries:
            sim = self._sim(query, self._nodes[entry].vector)
            heapq.heappush(candidates, (-sim, entry))
            heapq.heappush(results, (sim, entry))
            if len(results) > ef:
                heapq.heappop(results)
        while candidates:
            neg_sim, current = heapq.heappop(candidates)
            if results and -neg_sim < results[0][0] and len(results) >= ef:
                break
            for neighbor_key in self._nodes[current].neighbors[layer]:
                if neighbor_key in visited:
                    continue
                visited.add(neighbor_key)
                sim = self._sim(query, self._nodes[neighbor_key].vector)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, neighbor_key))
                    heapq.heappush(results, (sim, neighbor_key))
                    if len(results) > ef:
                        heapq.heappop(results)
        hits = [SearchHit(score=sim, key=key) for sim, key in results]
        hits.sort(key=lambda hit: (-hit.score, hit.key))
        return hits

    def _select_neighbors(self, candidates: list[SearchHit], m: int) -> list[SearchHit]:
        """Simple top-m selection (candidates arrive sorted best-first)."""
        return candidates[:m]

    def _prune(self, node: _Node, layer: int, max_links: int) -> None:
        scored = [
            SearchHit(
                score=self._sim(node.vector, self._nodes[key].vector), key=key
            )
            for key in node.neighbors[layer]
        ]
        scored.sort(key=lambda hit: (-hit.score, hit.key))
        node.neighbors[layer] = [hit.key for hit in scored[:max_links]]

    # -- deletion ------------------------------------------------------------------
    def remove(self, key: int) -> None:
        """Tombstone ``key``; compaction rebuilds the graph when due."""
        node = self._nodes.get(key)
        if node is None or node.deleted:
            raise KeyError(f"key {key} not in index")
        if node.slot is not None and not node.owned:
            # The caller owns the arena row and will recycle it; snapshot a
            # private copy so the tombstone keeps routing on the old vector.
            node.vector = np.array(node.vector)
            node.slot = None
        node.deleted = True
        self._live_count -= 1
        if self._entry_point == key:
            self._entry_point = self._pick_new_entry()
        if (
            self._nodes
            and self.tombstones / len(self._nodes) > self.compaction_ratio
        ):
            self._compact()

    def _pick_new_entry(self) -> int | None:
        best_key, best_level = None, -1
        for key, node in self._nodes.items():
            if not node.deleted and node.level > best_level:
                best_key, best_level = key, node.level
        return best_key

    def _drop_node(self, key: int) -> None:
        """Physically remove a tombstoned node (used on key resurrection)."""
        node = self._nodes.pop(key)
        if node.slot is not None and node.owned:
            self._arena.release(node.slot)
        for layer in range(node.level + 1):
            for neighbor_key in node.neighbors[layer]:
                neighbor = self._nodes.get(neighbor_key)
                if neighbor is not None and layer < len(neighbor.neighbors):
                    if key in neighbor.neighbors[layer]:
                        neighbor.neighbors[layer].remove(key)
        if self._entry_point == key:
            self._entry_point = self._pick_new_entry()

    def _compact(self) -> None:
        """Rebuild the graph from live nodes only (slot handles survive)."""
        self.rebuilds += 1
        live = []
        for node in self._nodes.values():
            if node.deleted:
                if node.slot is not None and node.owned:
                    self._arena.release(node.slot)
            else:
                live.append((node.key, node.vector, node.slot, node.owned))
        self._nodes = {}
        self._entry_point = None
        self._live_count = 0
        for key, vector, slot, owned in live:
            self._insert(key, vector, slot=slot, owned=owned)

    def remap_slots(self, remap: dict[int, int]) -> None:
        """Apply an arena compaction remap to node handles and row views."""
        if self._arena is None or not remap:
            return
        for node in self._nodes.values():
            if node.slot is None:
                continue
            node.slot = remap.get(node.slot, node.slot)
            if node.slot in self._arena:
                node.vector = self._arena.get(node.slot)

    # -- queries ---------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Approximate top-``k``: greedy descent + bottom-layer beam."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self._entry_point is None or self._live_count == 0:
            return []
        query = normalize(query)
        entry = self._entry_point
        top_level = self._nodes[entry].level
        current = entry
        for layer in range(top_level, 0, -1):
            current = self._greedy_step(query, current, layer)
        ef = max(self.ef_search, k)
        # Widen the beam a little when tombstones would otherwise crowd out
        # live results.
        if self.tombstones:
            ef = min(len(self._nodes), ef + self.tombstones)
        hits = self._search_layer(query, [current], ef, 0)
        live_hits = [hit for hit in hits if not self._nodes[hit.key].deleted]
        return live_hits[:k]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Top-``k`` per query row; each result equals the ``search`` call.

        Graph traversal is data-dependent per query (greedy descent + beam),
        so the batch runs one traversal per query; the win over N caller-side
        calls is amortised validation and a single normalised view of the
        batch upstream (embedding and scoring), not shared graph work.
        """
        return search_batch_fallback(self, queries, k)

    def __repr__(self) -> str:
        return (
            f"HNSWIndex(dim={self._dim}, items={len(self)}, m={self.m}, "
            f"ef_search={self.ef_search}, tombstones={self.tombstones})"
        )
