"""Exact brute-force vector index.

Stores vectors in a dynamically grown matrix and scores queries with a single
matrix product. This is the recall=1.0 baseline the approximate indexes are
measured against, and the default index for the cache (cache populations are
small enough that exact search is also the fastest option).

Scoring is sliced to a *high-water mark* — the highest slot ever occupied —
so a sparsely filled index never pays for its reserved capacity, and
:meth:`FlatIndex.search_batch` scores a whole batch of queries with one
matrix-matrix product.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, normalize_batch


class FlatIndex:
    """Exact cosine-similarity index with slot reuse after deletion."""

    def __init__(self, dim: int, initial_capacity: int = 1024) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1, got {initial_capacity}")
        self._dim = dim
        self._matrix = np.zeros((initial_capacity, dim), dtype=np.float32)
        self._key_to_slot: dict[int, int] = {}
        self._slot_to_key: dict[int, int] = {}
        self._free_slots: list[int] = list(range(initial_capacity - 1, -1, -1))
        #: 1 + highest occupied slot; searches slice the matrix to this.
        self._high_water = 0

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return len(self._key_to_slot)

    def __contains__(self, key: int) -> bool:
        return key in self._key_to_slot

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` (normalised) under ``key``."""
        if key in self._key_to_slot:
            raise KeyError(f"key {key} already present")
        vector = np.asarray(vector, dtype=np.float32)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got shape {vector.shape}")
        vector = normalize_batch(vector[None, :])[0]
        if not self._free_slots:
            self._grow()
        slot = self._free_slots.pop()
        self._matrix[slot] = vector
        self._key_to_slot[key] = slot
        self._slot_to_key[slot] = key
        if slot >= self._high_water:
            self._high_water = slot + 1

    def remove(self, key: int) -> None:
        """Delete ``key``; its slot is recycled."""
        slot = self._key_to_slot.pop(key, None)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        del self._slot_to_key[slot]
        self._matrix[slot] = 0.0
        self._free_slots.append(slot)
        # Let the high-water mark sink past a trailing run of freed slots.
        while self._high_water > 0 and (self._high_water - 1) not in self._slot_to_key:
            self._high_water -= 1

    def vector(self, key: int) -> np.ndarray:
        """The stored (normalised) vector for ``key``."""
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        return self._matrix[slot].copy()

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Exact top-``k`` by cosine similarity, best first."""
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got shape {query.shape}")
        return self.search_batch(query[None, :], k)[0]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Exact top-``k`` per query row, scored with one matrix product."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"expected (n, {self._dim}) queries, got shape {queries.shape}"
            )
        n = queries.shape[0]
        if n == 0 or not self._key_to_slot:
            return [[] for _ in range(n)]
        queries = normalize_batch(queries)
        count = len(self._slot_to_key)
        live_slots = np.fromiter(self._slot_to_key.keys(), dtype=np.int64, count=count)
        live_keys = np.fromiter(self._slot_to_key.values(), dtype=np.int64, count=count)
        scores = queries @ self._matrix[: self._high_water].T
        live_scores = scores[:, live_slots]
        top = min(k, count)
        if top < count:
            chosen = np.argpartition(-live_scores, top - 1, axis=1)[:, :top]
            chosen_scores = np.take_along_axis(live_scores, chosen, axis=1)
            chosen_keys = live_keys[chosen]
        else:
            chosen_scores = live_scores
            chosen_keys = np.broadcast_to(live_keys, (n, count))
        # Rank the chosen slice per row: score descending, key ascending on
        # ties (lexsort's primary key is the last one given).
        order = np.lexsort((chosen_keys, -chosen_scores), axis=1)
        sorted_scores = np.take_along_axis(chosen_scores, order, axis=1)
        sorted_keys = np.take_along_axis(chosen_keys, order, axis=1)
        return [
            [
                SearchHit(score=float(score), key=int(key))
                for score, key in zip(score_row, key_row)
            ]
            for score_row, key_row in zip(sorted_scores, sorted_keys)
        ]

    def _grow(self) -> None:
        old_capacity = self._matrix.shape[0]
        new_capacity = old_capacity * 2
        grown = np.zeros((new_capacity, self._dim), dtype=np.float32)
        grown[:old_capacity] = self._matrix
        self._matrix = grown
        self._free_slots.extend(range(new_capacity - 1, old_capacity - 1, -1))

    def __repr__(self) -> str:
        return f"FlatIndex(dim={self._dim}, items={len(self)})"
