"""Exact brute-force vector index.

Stores vectors in a contiguous :class:`~repro.core.arena.EmbeddingArena` and
scores queries with a single matrix product. This is the recall=1.0 baseline
the approximate indexes are measured against, and the default index for the
cache (cache populations are small enough that exact search is also the
fastest option).

Scoring is sliced to the arena's *high-water mark* — the highest slot ever
occupied — so a sparsely filled index never pays for its reserved capacity,
and :meth:`FlatIndex.search_batch` scores a whole batch of queries with one
matrix-matrix product.

The arena may be private (built here when none is passed — the standalone
shape) or shared with the cache, in which case elements enter via
:meth:`FlatIndex.add_slot` with a slot the cache already allocated and the
index scores the cache's rows in place — no per-element copy, no rebuild.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, normalize_batch
from repro.core.arena import EmbeddingArena


class FlatIndex:
    """Exact cosine-similarity index with slot reuse after deletion.

    ``arena`` swaps in shared row storage (see module docstring); slots added
    via :meth:`add` are owned by the index and released on :meth:`remove`,
    while slots registered via :meth:`add_slot` belong to the caller and are
    only forgotten.
    """

    #: Full index rebuilds performed (always 0: both mutations are O(1) slot
    #: operations). Exists so benchmarks can read one counter off any index.
    rebuilds = 0

    def __init__(
        self,
        dim: int,
        initial_capacity: int = 1024,
        arena: EmbeddingArena | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1, got {initial_capacity}")
        if arena is not None and arena.dim != dim:
            raise ValueError(f"arena dim {arena.dim} != index dim {dim}")
        self._dim = dim
        self._arena = arena if arena is not None else EmbeddingArena(
            dim, initial_capacity
        )
        self._key_to_slot: dict[int, int] = {}
        self._slot_to_key: dict[int, int] = {}
        #: Slots this index allocated itself (released on remove); externally
        #: registered slots stay alive for their owner.
        self._owned: set[int] = set()

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def arena(self) -> EmbeddingArena:
        return self._arena

    def __len__(self) -> int:
        return len(self._key_to_slot)

    def __contains__(self, key: int) -> bool:
        return key in self._key_to_slot

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` (normalised) under ``key``."""
        if key in self._key_to_slot:
            raise KeyError(f"key {key} already present")
        vector = np.asarray(vector, dtype=np.float32)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got shape {vector.shape}")
        slot = self._arena.allocate(vector)
        self._owned.add(slot)
        self._key_to_slot[key] = slot
        self._slot_to_key[slot] = key

    def add_slot(self, key: int, slot: int) -> None:
        """Register an arena row the caller already allocated under ``key``."""
        if key in self._key_to_slot:
            raise KeyError(f"key {key} already present")
        if slot not in self._arena:
            raise KeyError(f"slot {slot} not allocated in the arena")
        self._key_to_slot[key] = slot
        self._slot_to_key[slot] = key

    def remove(self, key: int) -> None:
        """Delete ``key``; an index-owned slot is recycled."""
        slot = self._key_to_slot.pop(key, None)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        del self._slot_to_key[slot]
        if slot in self._owned:
            self._owned.remove(slot)
            self._arena.release(slot)

    def remap_slots(self, remap: dict[int, int]) -> None:
        """Apply an arena compaction remap to the slot handles."""
        if not remap:
            return
        self._key_to_slot = {
            key: remap.get(slot, slot) for key, slot in self._key_to_slot.items()
        }
        self._slot_to_key = {slot: key for key, slot in self._key_to_slot.items()}
        self._owned = {remap.get(slot, slot) for slot in self._owned}

    def vector(self, key: int) -> np.ndarray:
        """The stored (normalised) vector for ``key``."""
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        return np.array(self._arena.get(slot))

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Exact top-``k`` by cosine similarity, best first."""
        query = np.asarray(query, dtype=np.float32)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got shape {query.shape}")
        return self.search_batch(query[None, :], k)[0]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Exact top-``k`` per query row, scored with one matrix product."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(
                f"expected (n, {self._dim}) queries, got shape {queries.shape}"
            )
        n = queries.shape[0]
        if n == 0 or not self._key_to_slot:
            return [[] for _ in range(n)]
        queries = normalize_batch(queries)
        count = len(self._slot_to_key)
        live_slots = np.fromiter(self._slot_to_key.keys(), dtype=np.int64, count=count)
        live_keys = np.fromiter(self._slot_to_key.values(), dtype=np.int64, count=count)
        # One matrix product over the arena's occupied region; rows owned by
        # other arena users (or freed) are dropped by the live-slot gather.
        scores = self._arena.scores(queries)
        live_scores = scores[:, live_slots]
        top = min(k, count)
        if top < count:
            chosen = np.argpartition(-live_scores, top - 1, axis=1)[:, :top]
            chosen_scores = np.take_along_axis(live_scores, chosen, axis=1)
            chosen_keys = live_keys[chosen]
        else:
            chosen_scores = live_scores
            chosen_keys = np.broadcast_to(live_keys, (n, count))
        # Rank the chosen slice per row: score descending, key ascending on
        # ties (lexsort's primary key is the last one given).
        order = np.lexsort((chosen_keys, -chosen_scores), axis=1)
        sorted_scores = np.take_along_axis(chosen_scores, order, axis=1)
        sorted_keys = np.take_along_axis(chosen_keys, order, axis=1)
        return [
            [
                SearchHit(score=float(score), key=int(key))
                for score, key in zip(score_row, key_row)
            ]
            for score_row, key_row in zip(sorted_scores, sorted_keys)
        ]

    def __repr__(self) -> str:
        return f"FlatIndex(dim={self._dim}, items={len(self)})"
