"""Exact brute-force vector index.

Stores vectors in a dynamically grown matrix and scores queries with a single
matrix-vector product. This is the recall=1.0 baseline the approximate
indexes are measured against, and the default index for the cache (cache
populations are small enough that exact search is also the fastest option).
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, normalize


class FlatIndex:
    """Exact cosine-similarity index with slot reuse after deletion."""

    def __init__(self, dim: int, initial_capacity: int = 1024) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1, got {initial_capacity}")
        self._dim = dim
        self._matrix = np.zeros((initial_capacity, dim), dtype=np.float32)
        self._key_to_slot: dict[int, int] = {}
        self._slot_to_key: dict[int, int] = {}
        self._free_slots: list[int] = list(range(initial_capacity - 1, -1, -1))

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return len(self._key_to_slot)

    def __contains__(self, key: int) -> bool:
        return key in self._key_to_slot

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector`` (normalised) under ``key``."""
        if key in self._key_to_slot:
            raise KeyError(f"key {key} already present")
        vector = normalize(vector)
        if vector.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got {vector.shape[0]}")
        if not self._free_slots:
            self._grow()
        slot = self._free_slots.pop()
        self._matrix[slot] = vector
        self._key_to_slot[key] = slot
        self._slot_to_key[slot] = key

    def remove(self, key: int) -> None:
        """Delete ``key``; its slot is recycled."""
        slot = self._key_to_slot.pop(key, None)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        del self._slot_to_key[slot]
        self._matrix[slot] = 0.0
        self._free_slots.append(slot)

    def vector(self, key: int) -> np.ndarray:
        """The stored (normalised) vector for ``key``."""
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise KeyError(f"key {key} not in index")
        return self._matrix[slot].copy()

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Exact top-``k`` by cosine similarity, best first."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self._key_to_slot:
            return []
        query = normalize(query)
        occupied = len(self._key_to_slot) + len(self._free_slots)
        scores = self._matrix[:occupied] @ query
        live_slots = np.fromiter(self._slot_to_key, dtype=np.int64)
        live_scores = scores[live_slots]
        top = min(k, live_scores.shape[0])
        order = np.argpartition(-live_scores, top - 1)[:top]
        hits = [
            SearchHit(score=float(live_scores[i]), key=self._slot_to_key[int(live_slots[i])])
            for i in order
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.key))
        return hits

    def _grow(self) -> None:
        old_capacity = self._matrix.shape[0]
        new_capacity = old_capacity * 2
        grown = np.zeros((new_capacity, self._dim), dtype=np.float32)
        grown[:old_capacity] = self._matrix
        self._matrix = grown
        self._free_slots.extend(range(new_capacity - 1, old_capacity - 1, -1))

    def __repr__(self) -> str:
        return f"FlatIndex(dim={self._dim}, items={len(self)})"
