"""Product quantization (Jégou et al., 2011 — the paper's reference [35]).

PQ compresses vectors by splitting each into ``m`` subvectors and encoding
every subvector as the index of its nearest centroid in a per-subspace
codebook (``k`` centroids each). A d-dimensional float32 vector becomes
``m`` bytes; queries are scored with the *asymmetric distance computation*
(ADC): the query stays uncompressed, per-subspace dot-product tables are
built once, and every encoded vector's score is a table-lookup sum.

:class:`PQIndex` wraps the quantizer in the cache's
:class:`~repro.ann.base.VectorIndex` interface with the same online-training
behaviour as IVF: exact search from a buffer until enough vectors arrive to
train the codebooks.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, normalize, search_batch_fallback
from repro.ann.kmeans import kmeans
from repro.core.arena import EmbeddingArena


class ProductQuantizer:
    """The codec: train per-subspace codebooks, encode, and build ADC tables.

    Parameters
    ----------
    dim:
        Vector dimensionality; must be divisible by ``m``.
    m:
        Number of subspaces (bytes per code), default 8.
    k:
        Centroids per subspace (default 256 — one byte per subquantizer).
    seed:
        k-means seed.
    """

    def __init__(self, dim: int, m: int = 8, k: int = 256, seed: int = 0) -> None:
        if dim < 1 or m < 1:
            raise ValueError("dim and m must be >= 1")
        if dim % m != 0:
            raise ValueError(f"dim {dim} not divisible by m {m}")
        if not 2 <= k <= 65536:
            raise ValueError(f"k must be in [2, 65536], got {k}")
        self.dim = dim
        self.m = m
        self.k = k
        self.seed = seed
        self.subdim = dim // m
        self._codebooks: np.ndarray | None = None  # (m, k, subdim)

    @property
    def is_trained(self) -> bool:
        return self._codebooks is not None

    def train(self, data: np.ndarray) -> None:
        """Fit the ``m`` codebooks on ``data`` (n, dim)."""
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) training data")
        k = min(self.k, data.shape[0])
        if k < 2:
            raise ValueError("need at least 2 training vectors")
        codebooks = np.empty((self.m, k, self.subdim), dtype=np.float32)
        for subspace in range(self.m):
            block = data[:, subspace * self.subdim : (subspace + 1) * self.subdim]
            centroids, _ = kmeans(block, k, seed=self.seed + subspace)
            codebooks[subspace] = centroids
        self._codebooks = codebooks

    def encode(self, vector: np.ndarray) -> np.ndarray:
        """Compress one vector into ``m`` centroid indices (uint16)."""
        if not self.is_trained:
            raise RuntimeError("quantizer is untrained")
        vector = np.asarray(vector, dtype=np.float32)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},)")
        assert self._codebooks is not None
        code = np.empty(self.m, dtype=np.uint16)
        for subspace in range(self.m):
            block = vector[subspace * self.subdim : (subspace + 1) * self.subdim]
            distances = np.sum(
                (self._codebooks[subspace] - block) ** 2, axis=1
            )
            code[subspace] = np.argmin(distances)
        return code

    def decode(self, code: np.ndarray) -> np.ndarray:
        """Reconstruct the approximate vector of ``code``."""
        if not self.is_trained:
            raise RuntimeError("quantizer is untrained")
        assert self._codebooks is not None
        parts = [
            self._codebooks[subspace][int(code[subspace])]
            for subspace in range(self.m)
        ]
        return np.concatenate(parts)

    def adc_tables(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace dot-product lookup tables for ``query`` — (m, k)."""
        if not self.is_trained:
            raise RuntimeError("quantizer is untrained")
        assert self._codebooks is not None
        query = np.asarray(query, dtype=np.float32)
        tables = np.empty((self.m, self._codebooks.shape[1]), dtype=np.float32)
        for subspace in range(self.m):
            block = query[subspace * self.subdim : (subspace + 1) * self.subdim]
            tables[subspace] = self._codebooks[subspace] @ block
        return tables

    def __repr__(self) -> str:
        return (
            f"ProductQuantizer(dim={self.dim}, m={self.m}, k={self.k}, "
            f"trained={self.is_trained})"
        )


class PQIndex:
    """A PQ-compressed index behind the ``VectorIndex`` interface.

    Until ``train_threshold`` vectors arrive, searches are exact over the
    raw buffer; training then encodes the population and drops the floats
    (memory ``m`` bytes/vector instead of ``4 * dim``). Scores are
    approximate inner products via ADC.
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        k: int = 64,
        train_threshold: int = 256,
        seed: int = 0,
        arena: EmbeddingArena | None = None,
    ) -> None:
        if train_threshold < k:
            raise ValueError("train_threshold must be >= k")
        if arena is not None and arena.dim != dim:
            raise ValueError(f"arena dim {arena.dim} != index dim {dim}")
        self.quantizer = ProductQuantizer(dim, m=m, k=k, seed=seed)
        self.train_threshold = train_threshold
        self._arena = arena
        self._raw: dict[int, np.ndarray] = {}
        self._codes: dict[int, np.ndarray] = {}
        #: Pre-training buffer slots: key -> arena slot; owned slots are
        #: released once the vector is encoded (codes replace the floats).
        self._slot_of: dict[int, int] = {}
        self._owned: set[int] = set()
        #: Codebooks are fitted once when the buffer fills; adds after that
        #: encode incrementally and removes drop one code — never a rebuild.
        self.rebuilds = 0

    @property
    def dim(self) -> int:
        return self.quantizer.dim

    @property
    def is_trained(self) -> bool:
        return self.quantizer.is_trained

    def __len__(self) -> int:
        return len(self._raw) + len(self._codes)

    def __contains__(self, key: int) -> bool:
        return key in self._raw or key in self._codes

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector``; encoded to ``m`` bytes once trained."""
        if key in self:
            raise KeyError(f"key {key} already present")
        if self._arena is None:
            vector = normalize(vector)
            if vector.shape[0] != self.dim:
                raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
            if self.is_trained:
                self._codes[key] = self.quantizer.encode(vector)
            else:
                self._register(key, vector)
            return
        if self.is_trained:
            # Codes replace the floats immediately — no arena row retained.
            self._codes[key] = self.quantizer.encode(normalize(vector))
            return
        slot = self._arena.allocate(vector)
        self._owned.add(slot)
        self._slot_of[key] = slot
        self._register(key, self._arena.get(slot))

    def add_slot(self, key: int, slot: int) -> None:
        """Insert a caller-owned arena row under ``key``."""
        if self._arena is None:
            raise RuntimeError("index has no arena; use add()")
        if key in self:
            raise KeyError(f"key {key} already present")
        if slot not in self._arena:
            raise KeyError(f"slot {slot} not allocated in the arena")
        if self.is_trained:
            self._codes[key] = self.quantizer.encode(self._arena.get(slot))
            return
        self._slot_of[key] = slot
        self._register(key, self._arena.get(slot))

    def _register(self, key: int, vector: np.ndarray) -> None:
        self._raw[key] = vector
        if len(self._raw) >= self.train_threshold:
            self._train()

    def _train(self) -> None:
        data = np.stack(list(self._raw.values()))
        self.quantizer.train(data)
        for key, vector in self._raw.items():
            self._codes[key] = self.quantizer.encode(vector)
        self._raw.clear()
        # The buffer is encoded; recycle rows this index allocated itself.
        for key, slot in self._slot_of.items():
            if slot in self._owned:
                self._owned.remove(slot)
                self._arena.release(slot)
        self._slot_of.clear()

    def remove(self, key: int) -> None:
        """Delete ``key`` from the raw buffer or the code store."""
        if key in self._raw:
            del self._raw[key]
            slot = self._slot_of.pop(key, None)
            if slot is not None and slot in self._owned:
                self._owned.remove(slot)
                self._arena.release(slot)
        elif key in self._codes:
            del self._codes[key]
        else:
            raise KeyError(f"key {key} not in index")

    def remap_slots(self, remap: dict[int, int]) -> None:
        """Apply an arena compaction remap to buffered slot handles/views."""
        if self._arena is None or not remap:
            return
        for key, slot in list(self._slot_of.items()):
            slot = remap.get(slot, slot)
            self._slot_of[key] = slot
            self._raw[key] = self._arena.get(slot)
        self._owned = {remap.get(slot, slot) for slot in self._owned}

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Top-``k`` via ADC table lookups (exact for buffered vectors)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(self) == 0:
            return []
        query = normalize(query)
        hits: list[SearchHit] = []
        for key, vector in self._raw.items():
            hits.append(SearchHit(score=float(np.dot(vector, query)), key=key))
        if self._codes:
            tables = self.quantizer.adc_tables(query)
            for key, code in self._codes.items():
                score = float(
                    sum(
                        tables[subspace, int(code[subspace])]
                        for subspace in range(self.quantizer.m)
                    )
                )
                hits.append(SearchHit(score=score, key=key))
        hits.sort(key=lambda hit: (-hit.score, hit.key))
        return hits[:k]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Top-``k`` per query row; ADC tables are per-query by construction."""
        return search_batch_fallback(self, queries, k)

    def __repr__(self) -> str:
        return (
            f"PQIndex(dim={self.dim}, items={len(self)}, "
            f"trained={self.is_trained})"
        )
