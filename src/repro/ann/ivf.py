"""Inverted-file (IVF) approximate index over k-means cells.

Vectors are bucketed by their nearest centroid; a query probes only the
``nprobe`` nearest cells. Until enough vectors have arrived to train the
coarse quantiser, the index answers exactly from a buffer, so recall degrades
gracefully for small populations (the common case early in a cache's life).
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit, normalize, search_batch_fallback
from repro.ann.kmeans import kmeans
from repro.core.arena import EmbeddingArena


class IVFIndex:
    """IVF index with online training and deletion support.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    nlist:
        Number of k-means cells (default 16).
    nprobe:
        Cells probed per query (default 4). Higher = better recall, slower.
    train_threshold:
        Minimum items before the quantiser is trained; exact search is used
        below this (default ``8 * nlist``).
    seed:
        Seed for k-means initialisation.
    arena:
        Optional shared row storage; vectors then live as arena views
        (allocated here on :meth:`add`, or registered caller-owned rows via
        :meth:`add_slot`). Adds and removes stay incremental either way —
        a vector joins or leaves its cell with no restacking; only an
        explicit :meth:`retrain` refits the quantiser (counted in
        :attr:`rebuilds`).
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 16,
        nprobe: int = 4,
        train_threshold: int | None = None,
        seed: int = 0,
        arena: EmbeddingArena | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if nlist < 1:
            raise ValueError(f"nlist must be >= 1, got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self._dim = dim
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.train_threshold = (
            train_threshold if train_threshold is not None else 8 * nlist
        )
        self.seed = seed
        if arena is not None and arena.dim != dim:
            raise ValueError(f"arena dim {arena.dim} != index dim {dim}")
        self._arena = arena
        self._vectors: dict[int, np.ndarray] = {}
        self._centroids: np.ndarray | None = None
        self._cells: list[set[int]] = []
        self._cell_of: dict[int, int] = {}
        self._slot_of: dict[int, int] = {}
        self._owned: set[int] = set()
        #: Full quantiser refits on an already-trained index (explicit
        #: :meth:`retrain` calls); the one-time initial training is not a
        #: rebuild. Adds and removes never increment this.
        self.rebuilds = 0

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def is_trained(self) -> bool:
        """True once the coarse quantiser has been fitted."""
        return self._centroids is not None

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, key: int) -> bool:
        return key in self._vectors

    def add(self, key: int, vector: np.ndarray) -> None:
        """Insert ``vector``; assigned to its nearest cell once trained."""
        if key in self._vectors:
            raise KeyError(f"key {key} already present")
        if self._arena is None:
            vector = normalize(vector)
            if vector.shape[0] != self._dim:
                raise ValueError(f"expected dim {self._dim}, got {vector.shape[0]}")
            self._register(key, vector)
            return
        slot = self._arena.allocate(vector)
        self._owned.add(slot)
        self._slot_of[key] = slot
        self._register(key, self._arena.get(slot))

    def add_slot(self, key: int, slot: int) -> None:
        """Register a caller-owned arena row under ``key``."""
        if self._arena is None:
            raise RuntimeError("index has no arena; use add()")
        if key in self._vectors:
            raise KeyError(f"key {key} already present")
        if slot not in self._arena:
            raise KeyError(f"slot {slot} not allocated in the arena")
        self._slot_of[key] = slot
        self._register(key, self._arena.get(slot))

    def _register(self, key: int, vector: np.ndarray) -> None:
        self._vectors[key] = vector
        if self.is_trained:
            self._assign(key, vector)
        elif len(self._vectors) >= max(self.train_threshold, self.nlist):
            self._train()

    def remove(self, key: int) -> None:
        """Delete ``key`` from its cell (and the raw store)."""
        if key not in self._vectors:
            raise KeyError(f"key {key} not in index")
        del self._vectors[key]
        cell = self._cell_of.pop(key, None)
        if cell is not None:
            self._cells[cell].discard(key)
        slot = self._slot_of.pop(key, None)
        if slot is not None and slot in self._owned:
            self._owned.remove(slot)
            self._arena.release(slot)

    def remap_slots(self, remap: dict[int, int]) -> None:
        """Apply an arena compaction remap to slot handles and row views."""
        if self._arena is None or not remap:
            return
        for key, slot in list(self._slot_of.items()):
            slot = remap.get(slot, slot)
            self._slot_of[key] = slot
            self._vectors[key] = self._arena.get(slot)
        self._owned = {remap.get(slot, slot) for slot in self._owned}

    def retrain(self) -> None:
        """Refit the quantiser on the current population (e.g. after churn)."""
        if len(self._vectors) >= self.nlist:
            self._train()

    def search(self, query: np.ndarray, k: int) -> list[SearchHit]:
        """Top-``k`` over the ``nprobe`` nearest cells (exact pre-training)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not self._vectors:
            return []
        query = normalize(query)
        if not self.is_trained:
            candidates = self._vectors.keys()
        else:
            assert self._centroids is not None
            centroid_scores = self._centroids @ query
            probe_order = np.argsort(-centroid_scores)[: self.nprobe]
            candidates = set()
            for cell in probe_order:
                candidates |= self._cells[int(cell)]
            if not candidates:
                candidates = self._vectors.keys()
        hits = [
            SearchHit(score=float(np.dot(self._vectors[key], query)), key=key)
            for key in candidates
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.key))
        return hits[:k]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[SearchHit]]:
        """Top-``k`` per query row; per-query probing (cells are data-dependent)."""
        return search_batch_fallback(self, queries, k)

    def _train(self) -> None:
        if self.is_trained:
            self.rebuilds += 1
        keys = sorted(self._vectors)
        data = np.stack([self._vectors[key] for key in keys])
        k = min(self.nlist, data.shape[0])
        centroids, assignments = kmeans(data, k, seed=self.seed)
        # Normalise centroids so probing can use dot products.
        norms = np.linalg.norm(centroids, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._centroids = (centroids / norms).astype(np.float32)
        self._cells = [set() for _ in range(k)]
        self._cell_of = {}
        for key, cell in zip(keys, assignments):
            self._cells[int(cell)].add(key)
            self._cell_of[key] = int(cell)

    def _assign(self, key: int, vector: np.ndarray) -> None:
        assert self._centroids is not None
        cell = int(np.argmax(self._centroids @ vector))
        self._cells[cell].add(key)
        self._cell_of[key] = cell

    def __repr__(self) -> str:
        return (
            f"IVFIndex(dim={self._dim}, items={len(self)}, nlist={self.nlist}, "
            f"nprobe={self.nprobe}, trained={self.is_trained})"
        )
