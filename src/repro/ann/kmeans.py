"""Lloyd's k-means, written here so the IVF index has no external trainer.

Works on unit-norm vectors with Euclidean assignment (equivalent to cosine
assignment for normalised data). Deterministic under a fixed seed via
k-means++ initialisation on a seeded generator.
"""

from __future__ import annotations

import numpy as np


def _kmeans_plus_plus(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=data.dtype)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest_sq = np.sum((data - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0:
            # All remaining points coincide with a centroid; pick uniformly.
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centroids[i] = data[choice]
        dist_sq = np.sum((data - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 25,
    seed: int = 0,
    tolerance: float = 1e-4,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``data`` (n, d) into ``k`` centroids.

    Returns ``(centroids, assignments)`` where ``assignments[i]`` is the
    cluster of row ``i``. Empty clusters are re-seeded from the point
    farthest from its centroid, so exactly ``k`` non-empty clusters are
    returned whenever ``n >= k``.
    """
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {data.shape}")
    n = data.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValueError(f"cannot form {k} clusters from {n} points")

    rng = np.random.default_rng(seed)
    centroids = _kmeans_plus_plus(data, k, rng)
    assignments = np.zeros(n, dtype=np.int64)

    for _ in range(max_iterations):
        # Assignment step (squared Euclidean via the expansion trick).
        distances = (
            np.sum(data**2, axis=1, keepdims=True)
            - 2.0 * data @ centroids.T
            + np.sum(centroids**2, axis=1)
        )
        new_assignments = np.argmin(distances, axis=1)

        # Update step.
        new_centroids = np.zeros_like(centroids)
        counts = np.bincount(new_assignments, minlength=k)
        np.add.at(new_centroids, new_assignments, data)
        for cluster in range(k):
            if counts[cluster] == 0:
                # Re-seed an empty cluster from the worst-fitted point.
                worst = int(np.argmax(distances[np.arange(n), new_assignments]))
                new_centroids[cluster] = data[worst]
                new_assignments[worst] = cluster
                counts[cluster] = 1
            else:
                new_centroids[cluster] /= counts[cluster]

        shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
        centroids = new_centroids
        assignments = new_assignments
        if shift < tolerance:
            break

    return centroids, assignments
